"""Adaptive protocol selection with self-tuning (paper Section 6 outlook):
online parameter estimation, the min-``acc`` classifier, and an
epoch-driven switching runtime."""

from .classifier import Decision, ProtocolClassifier
from .estimator import OnlineEstimator, WindowEstimate
from .runtime import AdaptiveReport, AdaptiveRuntime, EpochReport

__all__ = [
    "Decision",
    "ProtocolClassifier",
    "OnlineEstimator",
    "WindowEstimate",
    "AdaptiveReport",
    "AdaptiveRuntime",
    "EpochReport",
]
