"""The min-``acc`` protocol classifier (paper Section 6).

Given (estimated) workload parameters, pick the coherence protocol the
analytic model predicts to be cheapest.  A switching margin keeps the
classifier from thrashing between near-tied protocols, and the candidate
set can be restricted (e.g. to protocols an installation actually ships).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..core.acc import analytical_acc
from ..core.comparison import ALL_PROTOCOLS, rank_protocols
from ..core.parameters import Deviation, WorkloadParams

__all__ = ["Decision", "ProtocolClassifier"]


@dataclass
class Decision:
    """One classification outcome."""

    protocol: str
    predicted_acc: float
    #: full ranking that produced the decision
    ranking: Tuple[Tuple[str, float], ...]
    #: True when the classifier kept the incumbent despite a cheaper rival
    held_by_margin: bool = False


class ProtocolClassifier:
    """Chooses the cheapest protocol for given workload parameters.

    Args:
        candidates: protocols to consider (default: all eight).
        switch_margin: relative improvement a challenger must offer to
            displace the incumbent (hysteresis; 0 disables it).
    """

    def __init__(self, candidates: Iterable[str] = ALL_PROTOCOLS,
                 switch_margin: float = 0.05):
        self.candidates = tuple(candidates)
        if not self.candidates:
            raise ValueError("need at least one candidate protocol")
        if switch_margin < 0:
            raise ValueError("switch_margin must be non-negative")
        self.switch_margin = switch_margin

    def classify(
        self,
        params: WorkloadParams,
        deviation: Deviation,
        incumbent: Optional[str] = None,
    ) -> Decision:
        """Pick a protocol for the estimated workload.

        With an ``incumbent`` and a positive margin, the incumbent is kept
        unless the best challenger is at least ``switch_margin`` cheaper in
        relative terms (protecting against estimator noise and switching
        costs).
        """
        ranking = tuple(rank_protocols(params, deviation, self.candidates))
        best, best_acc = ranking[0]
        if incumbent is None or incumbent == best:
            return Decision(best, best_acc, ranking)
        if incumbent not in self.candidates:
            return Decision(best, best_acc, ranking)
        inc_acc = analytical_acc(incumbent, params, deviation)
        threshold = inc_acc * (1.0 - self.switch_margin)
        if best_acc < threshold:
            return Decision(best, best_acc, ranking)
        return Decision(incumbent, inc_acc, ranking, held_by_margin=True)
