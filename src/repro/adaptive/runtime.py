"""Self-tuning adaptive runtime: estimate -> classify -> switch (Section 6).

Runs a (possibly phase-changing) computation in epochs.  During each epoch
the system executes one fixed protocol in the simulator while the
estimator watches the operation stream; between epochs the classifier may
switch protocols.  A protocol switch re-seeds every replica from the
serialization point, which we charge as ``N * (S + 1)`` communication
units per object (one whole-copy transfer to each client) — a conservative
model of the re-initialization traffic.

The benchmark compares the adaptive runtime's total cost per operation
against every fixed protocol across workload phase changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import WorkloadParams
from ..sim.config import RunConfig
from ..sim.system import DSMSystem
from ..workloads.base import Workload
from .classifier import Decision, ProtocolClassifier
from .estimator import OnlineEstimator

__all__ = ["EpochReport", "AdaptiveReport", "AdaptiveRuntime"]


@dataclass
class EpochReport:
    """Measurements for one adaptive epoch."""

    epoch: int
    protocol: str
    ops: int
    measured_acc: float
    switched: bool
    switch_cost: float
    estimate: Optional[WorkloadParams]


@dataclass
class AdaptiveReport:
    """Outcome of an adaptive run."""

    epochs: List[EpochReport] = field(default_factory=list)

    @property
    def total_ops(self) -> int:
        """Operations across all epochs."""
        return sum(e.ops for e in self.epochs)

    @property
    def total_cost(self) -> float:
        """Message cost across epochs including switching cost."""
        return sum(e.measured_acc * e.ops + e.switch_cost for e in self.epochs)

    @property
    def overall_acc(self) -> float:
        """Cost per operation including switching overhead."""
        return self.total_cost / max(self.total_ops, 1)

    @property
    def switches(self) -> int:
        """Number of protocol switches performed."""
        return sum(1 for e in self.epochs if e.switched)

    def protocol_sequence(self) -> List[str]:
        """The protocol used in each epoch."""
        return [e.protocol for e in self.epochs]


class AdaptiveRuntime:
    """Epoch-driven self-tuning protocol selection.

    Args:
        N: number of clients.
        M: number of shared objects.
        S, P: cost parameters.
        classifier: protocol chooser (defaults to all eight with a 5%
            hysteresis margin).
        initial_protocol: protocol of the first epoch.
        estimator_window: sliding window of the online estimator.
    """

    def __init__(
        self,
        N: int,
        M: int = 1,
        S: float = 100.0,
        P: float = 30.0,
        classifier: Optional[ProtocolClassifier] = None,
        initial_protocol: str = "write_through",
        estimator_window: int = 500,
    ):
        self.N = N
        self.M = M
        self.S = S
        self.P = P
        self.classifier = classifier or ProtocolClassifier()
        self.initial_protocol = initial_protocol
        self.estimator_window = estimator_window

    def switch_cost(self) -> float:
        """Re-initialization traffic charged per protocol switch."""
        return self.N * (self.S + 1.0) * self.M

    def run_phases(
        self,
        phases: Sequence[Tuple[Workload, int]],
        epochs_per_phase: int = 4,
        seed: int = 0,
        warmup_frac: float = 0.1,
        mean_gap: float = 25.0,
    ) -> AdaptiveReport:
        """Run phased workloads with between-epoch re-classification.

        Args:
            phases: list of ``(workload, ops_in_phase)``.
            epochs_per_phase: how many classify/switch opportunities each
                phase offers.
            seed: RNG seed.
            warmup_frac: fraction of each epoch's operations excluded from
                the epoch's measured ``acc`` (per-epoch transient).
            mean_gap: simulator arrival gap.
        """
        report = AdaptiveReport()
        estimator = OnlineEstimator(self.N, self.estimator_window,
                                    self.S, self.P)
        current = self.initial_protocol
        rng = np.random.default_rng(seed)
        epoch_idx = 0
        for workload, phase_ops in phases:
            per_epoch = max(phase_ops // epochs_per_phase, 50)
            for _ in range(epochs_per_phase):
                switched = False
                switch_cost = 0.0
                est = estimator.estimate()
                decision: Optional[Decision] = None
                if est is not None:
                    decision = self.classifier.classify(
                        est.params, est.deviation, incumbent=current
                    )
                    if decision.protocol != current:
                        current = decision.protocol
                        switched = True
                        switch_cost = self.switch_cost()
                system = DSMSystem(current, N=self.N, M=self.M,
                                   S=self.S, P=self.P)
                warm = max(1, int(per_epoch * warmup_frac))
                result = system.run_workload(
                    workload,
                    RunConfig(ops=per_epoch, warmup=warm,
                              seed=int(rng.integers(0, 2**31 - 1)),
                              mean_gap=mean_gap),
                )
                # feed the estimator with the epoch's operation mix.
                for rec in result.metrics.records():
                    estimator.observe(rec.node, rec.kind)
                report.epochs.append(
                    EpochReport(
                        epoch=epoch_idx,
                        protocol=current,
                        ops=per_epoch,
                        measured_acc=result.acc,
                        switched=switched,
                        switch_cost=switch_cost,
                        estimate=None if est is None else est.params,
                    )
                )
                epoch_idx += 1
        return report

    def run_fixed(
        self,
        protocol: str,
        phases: Sequence[Tuple[Workload, int]],
        epochs_per_phase: int = 4,
        seed: int = 0,
        warmup_frac: float = 0.1,
        mean_gap: float = 25.0,
    ) -> AdaptiveReport:
        """Baseline: the same phased run with one fixed protocol."""
        report = AdaptiveReport()
        rng = np.random.default_rng(seed)
        epoch_idx = 0
        for workload, phase_ops in phases:
            per_epoch = max(phase_ops // epochs_per_phase, 50)
            for _ in range(epochs_per_phase):
                system = DSMSystem(protocol, N=self.N, M=self.M,
                                   S=self.S, P=self.P)
                warm = max(1, int(per_epoch * warmup_frac))
                result = system.run_workload(
                    workload,
                    RunConfig(ops=per_epoch, warmup=warm,
                              seed=int(rng.integers(0, 2**31 - 1)),
                              mean_gap=mean_gap),
                )
                report.epochs.append(
                    EpochReport(epoch_idx, protocol, per_epoch, result.acc,
                                False, 0.0, None)
                )
                epoch_idx += 1
        return report
