"""Online estimation of the workload parameters from run-time information.

The paper closes with: "We feel that the model can be applied to implement
a classifier for the development of adaptive data replication coherence
protocols with self-tuning capability based on run-time information."
This module provides the run-time half: a sliding-window estimator that
watches the operation stream of one shared object and produces the paper's
five parameters plus a deviation diagnosis.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..core.parameters import Deviation, WorkloadParams
from ..protocols.base import READ, WRITE

__all__ = ["WindowEstimate", "OnlineEstimator"]


@dataclass
class WindowEstimate:
    """Estimated parameters plus the diagnosed deviation for one object."""

    params: WorkloadParams
    deviation: Deviation
    #: node diagnosed as activity center (highest access share)
    activity_center: int
    #: operations the estimate is based on
    window_size: int


class OnlineEstimator:
    """Sliding-window relative-frequency estimator (Section 4.2's "real
    distributed computation" route).

    Feed it every operation on one object with :meth:`observe`; query
    :meth:`estimate` at any time.  The window bounds memory and lets the
    estimator track phase changes in the computation.
    """

    def __init__(self, N: int, window: int = 500,
                 S: float = 100.0, P: float = 30.0):
        if window < 10:
            raise ValueError("window too small for meaningful estimates")
        self.N = N
        self.window = window
        self.S = S
        self.P = P
        self._ops: Deque[Tuple[int, str]] = deque()
        self._reads: Counter = Counter()
        self._writes: Counter = Counter()

    def observe(self, node: int, kind: str) -> None:
        """Record one operation on the watched object."""
        if kind not in (READ, WRITE):
            raise ValueError(f"bad kind {kind!r}")
        self._ops.append((node, kind))
        (self._reads if kind == READ else self._writes)[node] += 1
        if len(self._ops) > self.window:
            old_node, old_kind = self._ops.popleft()
            ctr = self._reads if old_kind == READ else self._writes
            ctr[old_node] -= 1
            if ctr[old_node] == 0:
                del ctr[old_node]

    @property
    def observed(self) -> int:
        """Operations currently in the window."""
        return len(self._ops)

    def estimate(self) -> Optional[WindowEstimate]:
        """Estimate the workload parameters from the current window.

        Returns ``None`` until at least a tenth of the window is filled.
        The node with the highest access share is the activity center;
        other nodes' read/write shares become ``sigma``/``xi``; the
        deviation is diagnosed from which disturbance dominates (multiple
        activity centers when several nodes both read and write
        substantially).
        """
        total = len(self._ops)
        if total < max(10, self.window // 10):
            return None
        share: Dict[int, int] = Counter()
        for node, cnt in self._reads.items():
            share[node] += cnt
        for node, cnt in self._writes.items():
            share[node] += cnt
        # The activity center is the dominant *writer* (the paper's AC both
        # reads and writes; disturbers only read or only write).  Fall back
        # to the access share for read-only windows.
        if self._writes:
            ac = max(self._writes, key=lambda n: (self._writes[n], share[n]))
        else:
            ac = max(share, key=lambda n: share[n])
        p = self._writes.get(ac, 0) / total
        others = [n for n in share if n != ac]
        a = len(others)
        sigma = xi = 0.0
        if a:
            sigma = sum(self._reads.get(n, 0) for n in others) / total / a
            xi = sum(self._writes.get(n, 0) for n in others) / total / a
        # Deviation diagnosis: several *comparable* writers look like
        # multiple activity centers; a dominant writer with minor writing
        # disturbers is the write-disturbance deviation.
        writer_shares = [
            cnt / total for cnt in self._writes.values() if cnt / total > 0.02
        ]
        homogeneous = (
            len(writer_shares) > 1
            and max(writer_shares) <= 3.0 * min(writer_shares)
        )
        if homogeneous:
            beta = len(writer_shares)
            total_p = sum(self._writes.values()) / total
            deviation = Deviation.MULTIPLE_ACTIVITY_CENTERS
            params = WorkloadParams(
                N=self.N, p=min(total_p, 1.0), a=a, sigma=0.0, xi=0.0,
                beta=min(beta, self.N), S=self.S, P=self.P,
            )
            return WindowEstimate(params, deviation, ac, total)
        deviation = Deviation.WRITE if xi > sigma else Deviation.READ
        # clamp simplex overshoot from windowed sampling noise.
        if a and p + a * sigma > 1.0:
            sigma = max(0.0, (1.0 - p) / a)
        if a and p + a * xi > 1.0:
            xi = max(0.0, (1.0 - p) / a)
        params = WorkloadParams(
            N=self.N, p=p, a=a, sigma=sigma, xi=xi, S=self.S, P=self.P
        )
        return WindowEstimate(params, deviation, ac, total)
