"""The scenario document model.

A *scenario* is the declarative form of one experiment: a protocol set, a
base workload, a run configuration and a sweep axis, validated strictly
(unknown keys are rejected with did-you-mean suggestions) and expanded
into the same :class:`~repro.exp.spec.SweepCell` objects a hand-written
benchmark would build — so scenario runs flow through the parallel sweep
engine and its content-addressed result cache *unchanged*, and a catalog
entry that mirrors a legacy benchmark produces byte-identical JSONL rows
and shares its cache entries.

Document shape (JSON or TOML)::

    {
      "name": "table7",                  # defaults to the file stem
      "title": "...", "description": "...", "tags": ["paper"],
      "extends": "parent",               # resolved by the loader
      "protocols": ["write_once", ...],  # or "all" (the paper's eight)
      "deviation": "read",               # read | write | mac
      "workload": {"N": 3, "a": 2, "S": 100.0, "P": 30.0},
      "run":      {"ops": 4000, "warmup": 1000},   # RunConfig fields
      "kind": "compare", "M": 20, "method": "auto",
      "sweep": { ... }                   # cartesian or explicit, below
    }

Sweep axes come in two modes.  ``cartesian`` expands
``protocols x p_values x disturb_values`` with the same feasibility
filtering as the paper's tables (``p + a*disturb <= 1``), under one of
three seed rules:

* ``derived`` (default) — per-cell seeds from
  :func:`~repro.exp.spec.derive_cell_seed` (order-independent, the sweep
  engine's native rule);
* ``indexed`` — ``base + stride*i + j`` over the grid indices, the
  historical rule of the Table 7 harness;
* ``fixed`` — every cell runs with the scenario's own ``run.seed``.

``explicit`` lists cells by hand; each cell may override the workload
point (``p``/``sigma``/``xi``), the seed, ``M`` and any part of the run
configuration (deep-merged over the scenario's ``run`` section) — which
is how fault grids, partition studies and quorum campaigns become plain
data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.parameters import Deviation, WorkloadParams
from ..exp.spec import CELL_KINDS, SweepCell, SweepSpec
from ..protocols.registry import get_protocol, protocol_names
from ..sim.config import RunConfig
from ..util import reject_unknown_keys

__all__ = [
    "CellOverride",
    "Scenario",
    "ScenarioError",
    "SweepAxes",
    "deep_merge",
]

#: analytic evaluation methods a scenario may request
METHODS = ("auto", "closed_form", "markov")
#: seed rules understood by cartesian sweeps
SEED_RULES = ("derived", "indexed", "fixed")
#: sweep modes
SWEEP_MODES = ("cartesian", "explicit")

#: short deviation aliases (the CLI's vocabulary) plus the enum values
DEVIATIONS = {
    "read": Deviation.READ,
    "write": Deviation.WRITE,
    "mac": Deviation.MULTIPLE_ACTIVITY_CENTERS,
    **{d.value: d for d in Deviation},
}

_TOP_KEYS = ("name", "title", "description", "tags", "extends", "protocols",
             "deviation", "workload", "run", "kind", "M", "method", "sweep")
_SEED_KEYS = ("rule", "base", "stride")
_CARTESIAN_KEYS = ("mode", "p_values", "disturb_values", "seeds")
_EXPLICIT_KEYS = ("mode", "cells")
_CELL_KEYS = ("p", "sigma", "xi", "seed", "M", "label", "run")


class ScenarioError(ValueError):
    """A scenario file that does not validate (or fails to resolve)."""


def deep_merge(base: Dict[str, Any], override: Dict[str, Any]) -> dict:
    """Merge ``override`` into ``base``: dicts merge key-wise, recursively;
    everything else (scalars, lists, explicit ``null``) replaces."""
    out = dict(base)
    for key, value in override.items():
        if isinstance(value, dict) and isinstance(out.get(key), dict):
            out[key] = deep_merge(out[key], value)
        else:
            out[key] = value
    return out


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


@dataclass(frozen=True)
class CellOverride:
    """One explicit-mode cell: overrides over the scenario's base point.

    Only the fields a cell sets are serialized; everything left ``None``
    inherits from the scenario (``p``/``sigma``/``xi`` from ``workload``,
    ``seed`` and the rest of the run configuration from ``run``, ``M``
    from the scenario's ``M``).
    """

    p: Optional[float] = None
    sigma: Optional[float] = None
    xi: Optional[float] = None
    seed: Optional[int] = None
    M: Optional[int] = None
    label: Optional[str] = None
    #: partial :class:`RunConfig` dict, deep-merged over the scenario run
    run: Optional[Dict[str, Any]] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any], where: str) -> "CellOverride":
        _require(isinstance(data, dict), f"{where} must be a table/object")
        reject_unknown_keys(data, _CELL_KEYS, where)
        run = data.get("run")
        if run is not None:
            _require(isinstance(run, dict),
                     f"{where}: 'run' must be a table/object")
        return cls(
            p=None if data.get("p") is None else float(data["p"]),
            sigma=(None if data.get("sigma") is None
                   else float(data["sigma"])),
            xi=None if data.get("xi") is None else float(data["xi"]),
            seed=None if data.get("seed") is None else int(data["seed"]),
            M=None if data.get("M") is None else int(data["M"]),
            label=data.get("label"),
            run=run,
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key in ("p", "sigma", "xi", "seed", "M", "label", "run"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass(frozen=True)
class SweepAxes:
    """A scenario's sweep axis — cartesian grid or explicit cell list."""

    mode: str
    p_values: Tuple[float, ...] = ()
    disturb_values: Tuple[float, ...] = (0.0,)
    seed_rule: str = "derived"
    seed_base: int = 0
    seed_stride: int = 1000
    cells: Tuple[CellOverride, ...] = ()

    @classmethod
    def single_cell(cls) -> "SweepAxes":
        """The default axis: one cell at the scenario's own point."""
        return cls(mode="explicit", cells=(CellOverride(),))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SweepAxes":
        _require(isinstance(data, dict), "'sweep' must be a table/object")
        mode = data.get("mode")
        _require(mode in SWEEP_MODES,
                 f"sweep 'mode' must be one of {SWEEP_MODES}, "
                 f"got {mode!r}")
        if mode == "explicit":
            reject_unknown_keys(data, _EXPLICIT_KEYS, "explicit sweep")
            raw_cells = data.get("cells")
            _require(isinstance(raw_cells, list) and raw_cells,
                     "explicit sweep needs a non-empty 'cells' list")
            return cls(mode=mode, cells=tuple(
                CellOverride.from_dict(entry, f"sweep cell #{i}")
                for i, entry in enumerate(raw_cells)
            ))
        reject_unknown_keys(data, _CARTESIAN_KEYS, "cartesian sweep")
        p_values = data.get("p_values")
        _require(isinstance(p_values, list) and p_values,
                 "cartesian sweep needs a non-empty 'p_values' list")
        disturb = data.get("disturb_values", [0.0])
        _require(isinstance(disturb, list) and disturb,
                 "'disturb_values' must be a non-empty list")
        seeds = data.get("seeds", {})
        _require(isinstance(seeds, dict),
                 "'seeds' must be a table/object")
        reject_unknown_keys(seeds, _SEED_KEYS, "sweep 'seeds'")
        rule = seeds.get("rule", "derived")
        _require(rule in SEED_RULES,
                 f"seed 'rule' must be one of {SEED_RULES}, got {rule!r}")
        return cls(
            mode=mode,
            p_values=tuple(float(p) for p in p_values),
            disturb_values=tuple(float(d) for d in disturb),
            seed_rule=rule,
            seed_base=int(seeds.get("base", 0)),
            seed_stride=int(seeds.get("stride", 1000)),
        )

    def to_dict(self) -> Dict[str, Any]:
        if self.mode == "explicit":
            return {
                "mode": "explicit",
                "cells": [cell.to_dict() for cell in self.cells],
            }
        return {
            "mode": "cartesian",
            "p_values": list(self.p_values),
            "disturb_values": list(self.disturb_values),
            "seeds": {
                "rule": self.seed_rule,
                "base": self.seed_base,
                "stride": self.seed_stride,
            },
        }


@dataclass(frozen=True)
class Scenario:
    """One fully resolved, validated scenario (``extends`` already merged).

    Value object: round-trips through :meth:`to_dict` /
    :meth:`from_dict` identically, and :meth:`to_spec` deterministically
    expands it into the :class:`~repro.exp.spec.SweepSpec` the sweep
    engine evaluates.
    """

    name: str
    protocols: Tuple[str, ...]
    workload: WorkloadParams
    run: RunConfig
    sweep: SweepAxes
    deviation: Deviation = Deviation.READ
    kind: str = "compare"
    M: int = 20
    method: str = "auto"
    title: str = ""
    description: str = ""
    tags: Tuple[str, ...] = ()

    # ------------------------------------------------------------------
    # parsing / serialization
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(
        cls, data: Dict[str, Any], *, default_name: Optional[str] = None
    ) -> "Scenario":
        """Validate a resolved scenario document into a :class:`Scenario`.

        Strict: unknown keys anywhere in the document raise
        :class:`ScenarioError` with a did-you-mean suggestion.  An
        unresolved ``extends`` is also an error — inheritance is the
        loader's job (:func:`repro.scenarios.load_scenario`).
        """
        _require(isinstance(data, dict),
                 "a scenario document must be a table/object")
        try:
            reject_unknown_keys(data, _TOP_KEYS, "scenario document")
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        _require(data.get("extends") is None,
                 "'extends' must be resolved before validation — load the "
                 "scenario through a catalog (repro.scenarios"
                 ".load_scenario), not Scenario.from_dict")
        name = data.get("name", default_name)
        _require(isinstance(name, str) and bool(name.strip()),
                 "a scenario needs a non-empty 'name'")

        protocols = data.get("protocols")
        if protocols == "all":
            protocols = protocol_names()
        _require(isinstance(protocols, list) and protocols,
                 "'protocols' must be a non-empty list of protocol names "
                 "(or the string \"all\" for the paper's eight)")
        resolved = tuple(get_protocol(p).name for p in protocols)
        _require(len(set(resolved)) == len(resolved),
                 f"'protocols' lists a protocol twice: {list(resolved)}")

        raw_dev = data.get("deviation", "read")
        _require(raw_dev in DEVIATIONS,
                 f"'deviation' must be one of "
                 f"{sorted(set(DEVIATIONS))}, got {raw_dev!r}")
        deviation = DEVIATIONS[raw_dev]

        workload_data = data.get("workload")
        _require(isinstance(workload_data, dict),
                 "a scenario needs a 'workload' table (at least 'N')")
        workload_data = dict(workload_data)
        workload_data.setdefault("p", 0.0)
        _require("N" in workload_data, "'workload' needs 'N'")
        try:
            workload = WorkloadParams.from_dict(workload_data)
        except ValueError as exc:
            raise ScenarioError(f"invalid 'workload': {exc}") from None

        run_data = data.get("run", {})
        _require(isinstance(run_data, dict),
                 "'run' must be a table/object")
        try:
            run = RunConfig.from_dict(run_data)
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"invalid 'run': {exc}") from None
        # canonicalize (resolve the warmup shorthand) so round-trips
        # through to_dict compare equal field-by-field
        run = RunConfig.from_dict(run.to_dict())

        kind = data.get("kind", "compare")
        _require(kind in CELL_KINDS,
                 f"'kind' must be one of {CELL_KINDS}, got {kind!r}")
        method = data.get("method", "auto")
        _require(method in METHODS,
                 f"'method' must be one of {METHODS}, got {method!r}")
        M = int(data.get("M", 20))
        _require(M >= 1, f"'M' must be >= 1, got {M}")

        tags = data.get("tags", [])
        _require(isinstance(tags, list)
                 and all(isinstance(t, str) for t in tags),
                 "'tags' must be a list of strings")

        sweep_data = data.get("sweep")
        if sweep_data is None:
            sweep = SweepAxes.single_cell()
        else:
            try:
                sweep = SweepAxes.from_dict(sweep_data)
            except ScenarioError:
                raise
            except (TypeError, ValueError) as exc:
                raise ScenarioError(str(exc)) from None
        try:
            return cls(
                name=name.strip(),
                protocols=resolved,
                workload=workload,
                run=run,
                sweep=sweep,
                deviation=deviation,
                kind=kind,
                M=M,
                method=method,
                title=str(data.get("title", "")),
                description=str(data.get("description", "")),
                tags=tuple(tags),
            )
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None

    def to_dict(self) -> Dict[str, Any]:
        """The canonical resolved document (reparses to an equal scenario)."""
        out: Dict[str, Any] = {"name": self.name}
        if self.title:
            out["title"] = self.title
        if self.description:
            out["description"] = self.description
        if self.tags:
            out["tags"] = list(self.tags)
        out.update(
            protocols=list(self.protocols),
            deviation=self.deviation.value,
            workload=self.workload.to_dict(),
            run=self.run.to_dict(),
            kind=self.kind,
            M=self.M,
            method=self.method,
            sweep=self.sweep.to_dict(),
        )
        return out

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------

    def to_spec(self) -> SweepSpec:
        """Expand into the :class:`SweepSpec` the sweep engine evaluates.

        Deterministic: the same scenario always expands to the same cells
        in the same order (protocol-major, grid/cell order within), so a
        scenario run is byte-identical to the hand-written benchmark it
        mirrors and shares its result-cache entries.
        """
        if self.sweep.mode == "explicit":
            return SweepSpec.explicit(self._explicit_cells())
        if self.sweep.seed_rule == "derived":
            return SweepSpec.cartesian(
                protocols=self.protocols,
                base=self.workload,
                p_values=self.sweep.p_values,
                disturb_values=self.sweep.disturb_values,
                deviation=self.deviation,
                kind=self.kind,
                M=self.M,
                method=self.method,
                config=self.run,
                seed=self.sweep.seed_base,
            )
        return SweepSpec.explicit(self._indexed_cells())

    def _grid_params(self, p: float, d: float) -> WorkloadParams:
        """The workload point at grid coordinate ``(p, d)``."""
        if self.deviation is Deviation.WRITE:
            return self.workload.with_(p=float(p), xi=float(d), sigma=0.0)
        return self.workload.with_(p=float(p), sigma=float(d), xi=0.0)

    def _indexed_cells(self) -> List[SweepCell]:
        """Cartesian cells under the ``indexed`` or ``fixed`` seed rule.

        Mirrors :func:`~repro.core.parameters.parameter_grid` exactly
        (same feasibility tolerance, MAC ignores the disturb axis) but
        keeps the grid *indices* so the ``indexed`` rule can derive the
        historical ``base + stride*i + j`` seeds of the Table 7 harness.
        """
        mac = self.deviation is Deviation.MULTIPLE_ACTIVITY_CENTERS
        disturb = (0.0,) if mac else self.sweep.disturb_values
        cells = []
        for protocol in self.protocols:
            for i, p in enumerate(self.sweep.p_values):
                for j, d in enumerate(disturb):
                    if not mac and p + self.workload.a * d > 1.0 + 1e-12:
                        continue
                    if self.sweep.seed_rule == "indexed":
                        config = self.run.with_(
                            seed=self.sweep.seed_base
                            + self.sweep.seed_stride * i + j
                        )
                    else:  # "fixed": every cell runs the scenario's seed
                        config = self.run
                    params = (
                        self.workload.with_(p=float(p), sigma=0.0, xi=0.0)
                        if mac else self._grid_params(p, d)
                    )
                    cells.append(SweepCell(
                        protocol=protocol,
                        params=params,
                        deviation=self.deviation,
                        kind=self.kind,
                        M=self.M,
                        method=self.method,
                        config=config,
                    ))
        return cells

    def _explicit_cells(self) -> List[SweepCell]:
        run_base = self.run.to_dict()
        cells = []
        for protocol in self.protocols:
            for index, cell in enumerate(self.sweep.cells):
                point = {}
                for axis in ("p", "sigma", "xi"):
                    value = getattr(cell, axis)
                    if value is not None:
                        point[axis] = float(value)
                params = (self.workload.with_(**point) if point
                          else self.workload)
                if cell.run is not None:
                    try:
                        config = RunConfig.from_dict(
                            deep_merge(run_base, cell.run)
                        )
                    except (TypeError, ValueError) as exc:
                        raise ScenarioError(
                            f"scenario {self.name!r} sweep cell #{index}: "
                            f"invalid 'run' override: {exc}"
                        ) from None
                else:
                    config = self.run
                if cell.seed is not None:
                    config = config.with_(seed=cell.seed)
                cells.append(SweepCell(
                    protocol=protocol,
                    params=params,
                    deviation=self.deviation,
                    kind=self.kind,
                    M=self.M if cell.M is None else cell.M,
                    method=self.method,
                    config=config,
                ))
        return cells

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------

    def describe(self, max_cells: int = 6) -> str:
        """A multi-line human-readable summary (``repro scenarios show``)."""
        spec = self.to_spec()
        lines = [f"scenario:   {self.name}"]
        if self.title:
            lines.append(f"title:      {self.title}")
        if self.description:
            lines.append(f"description: {self.description}")
        if self.tags:
            lines.append(f"tags:       {', '.join(self.tags)}")
        lines += [
            f"protocols:  {', '.join(self.protocols)}",
            f"deviation:  {self.deviation.value}",
            f"kind:       {self.kind} (M={self.M}, method={self.method})",
            f"workload:   N={self.workload.N} a={self.workload.a} "
            f"beta={self.workload.beta} S={self.workload.S:g} "
            f"P={self.workload.P:g}",
            f"run:        ops={self.run.ops} "
            f"warmup={self.run.resolved_warmup} seed={self.run.seed} "
            f"mean_gap={self.run.mean_gap:g}",
        ]
        for line in self.run.describe_robustness().splitlines():
            lines.append(f"  {line}")
        lines.append(
            f"sweep:      {self.sweep.mode}, {len(spec)} cells"
            + (f" (seed rule: {self.sweep.seed_rule})"
               if self.sweep.mode == "cartesian" else "")
        )
        for cell in list(spec)[:max_cells]:
            lines.append(
                f"  [{cell.cell_id()}] {cell.protocol} p={cell.params.p:g} "
                f"disturb={cell.disturb:g} seed={cell.config.seed}"
            )
        if len(spec) > max_cells:
            lines.append(f"  ... {len(spec) - max_cells} more")
        return "\n".join(lines)
