"""Declarative scenario catalog (``repro.scenarios``).

Every headline study of this reproduction — the Table 6 cost model, the
Table 7 analytic-vs-simulation validation, the Figure 5 surfaces, the
fault/partition robustness grids and the quorum campaign — is *data*: a
protocol set, a workload point, a run configuration and a sweep axis.
This package makes that literal.  A scenario is a JSON (or, on
Python >= 3.11, TOML) document validated by a strict parser (unknown
keys rejected with did-you-mean suggestions), composed via ``extends:``
inheritance, and expanded into the exact :class:`~repro.exp.SweepCell`
objects a hand-written benchmark would build — so scenario runs flow
through the parallel sweep engine and its content-addressed result cache
unchanged, byte-identical to the legacy harnesses they replace.

The repository ships a committed catalog under ``scenarios/`` and a CLI
(``repro scenarios list|show|run|compare|report``) over it; programmatic access
goes through :func:`load_scenario` / :func:`run_scenario` (also
re-exported on :mod:`repro.api`).
"""

from .loader import (
    ScenarioCatalog,
    default_catalog_dir,
    load_scenario,
    load_scenario_dict,
)
from .report import collect_families, render_report
from .runner import BaselineDiff, compare_to_baseline, run_scenario
from .schema import CellOverride, Scenario, ScenarioError, SweepAxes, deep_merge

__all__ = [
    "BaselineDiff",
    "CellOverride",
    "Scenario",
    "ScenarioCatalog",
    "ScenarioError",
    "SweepAxes",
    "collect_families",
    "compare_to_baseline",
    "render_report",
    "deep_merge",
    "default_catalog_dir",
    "load_scenario",
    "load_scenario_dict",
    "run_scenario",
]
