"""Loading scenario files and catalogs.

A *catalog* is a directory of scenario documents — ``*.json`` always,
``*.toml`` when the interpreter ships :mod:`tomllib` (Python >= 3.11; on
older interpreters TOML files are reported with an actionable error
rather than silently skipped).  The loader resolves ``extends:``
inheritance (child fields deep-merge over the parent, ``name`` is never
inherited, cycles are detected) before handing the merged document to
:meth:`~repro.scenarios.schema.Scenario.from_dict` for strict validation.

Catalog discovery order for the default catalog:

1. the ``REPRO_SCENARIOS`` environment variable,
2. ``./scenarios`` under the current working directory,
3. the repository's committed ``scenarios/`` directory (when running
   from a source checkout).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from .schema import Scenario, ScenarioError, deep_merge

try:  # Python >= 3.11
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - depends on interpreter
    tomllib = None

__all__ = [
    "ScenarioCatalog",
    "default_catalog_dir",
    "load_scenario",
    "load_scenario_dict",
]

_SUFFIXES = (".json", ".toml")


def default_catalog_dir() -> Optional[Path]:
    """The default scenario catalog directory, or ``None`` if none exists.

    Checks ``$REPRO_SCENARIOS``, then ``./scenarios``, then the
    repository's committed ``scenarios/`` directory (source checkouts).
    """
    env = os.environ.get("REPRO_SCENARIOS")
    if env:
        return Path(env)
    cwd_catalog = Path.cwd() / "scenarios"
    if cwd_catalog.is_dir():
        return cwd_catalog
    repo_catalog = Path(__file__).resolve().parents[3] / "scenarios"
    if repo_catalog.is_dir():
        return repo_catalog
    return None


def load_scenario_dict(path: Union[str, Path]) -> dict:
    """Parse one scenario file (JSON or TOML) into a raw document dict.

    No validation beyond well-formedness — ``extends`` is still
    unresolved.  TOML requires :mod:`tomllib` (Python >= 3.11); on older
    interpreters loading a ``.toml`` file raises :class:`ScenarioError`
    suggesting the JSON form.
    """
    path = Path(path)
    if path.suffix == ".toml":
        if tomllib is None:
            raise ScenarioError(
                f"cannot load {path}: TOML scenario files need Python >= "
                f"3.11 (tomllib); convert the scenario to JSON or upgrade"
            )
        try:
            with path.open("rb") as fh:
                data = tomllib.load(fh)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"invalid TOML in {path}: {exc}") from None
    elif path.suffix == ".json":
        try:
            with path.open("r", encoding="utf-8") as fh:
                data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid JSON in {path}: {exc}") from None
    else:
        raise ScenarioError(
            f"unsupported scenario file {path}: expected one of "
            f"{', '.join(_SUFFIXES)}"
        )
    if not isinstance(data, dict):
        raise ScenarioError(
            f"{path}: a scenario document must be a table/object, "
            f"got {type(data).__name__}"
        )
    return data


class ScenarioCatalog:
    """A directory of scenario documents with ``extends:`` resolution.

    Documents are discovered eagerly (file stem = default scenario name)
    but validated lazily — a broken scenario only errors when loaded, so
    one bad file does not take down ``repro scenarios list``.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        if not self.root.is_dir():
            raise ScenarioError(f"scenario catalog {self.root} is not a directory")
        self._raw: Dict[str, dict] = {}
        self._paths: Dict[str, Path] = {}
        self._resolved: Dict[str, Scenario] = {}
        for path in sorted(self.root.iterdir()):
            if path.suffix not in _SUFFIXES or not path.is_file():
                continue
            if path.suffix == ".toml" and tomllib is None:
                # surfaced on load, not discovery — keep `list` working
                self._paths[path.stem] = path
                continue
            doc = load_scenario_dict(path)
            name = doc.get("name", path.stem)
            if name in self._raw:
                raise ScenarioError(
                    f"duplicate scenario name {name!r}: "
                    f"{self._paths[name]} and {path}"
                )
            doc.setdefault("name", name)
            self._raw[name] = doc
            self._paths[name] = path

    def __contains__(self, name: str) -> bool:
        return name in self._paths

    def names(self) -> List[str]:
        """All scenario names in the catalog, sorted."""
        return sorted(self._paths)

    def path(self, name: str) -> Path:
        """The file a scenario was discovered in."""
        self._check_known(name)
        return self._paths[name]

    def raw(self, name: str) -> dict:
        """The unresolved document (``extends`` intact) for ``name``."""
        self._check_known(name)
        if name not in self._raw:  # .toml discovered without tomllib
            self._raw[name] = load_scenario_dict(self._paths[name])
        return self._raw[name]

    def resolve(self, name: str) -> dict:
        """The fully merged document for ``name`` (``extends`` applied)."""
        return self._resolve(name, chain=())

    def load(self, name: str) -> Scenario:
        """Resolve and validate one scenario."""
        if name not in self._resolved:
            doc = self.resolve(name)
            try:
                self._resolved[name] = Scenario.from_dict(doc)
            except ScenarioError as exc:
                raise ScenarioError(f"{self._paths[name]}: {exc}") from None
        return self._resolved[name]

    def load_all(self) -> List[Scenario]:
        """Every scenario in the catalog, validated, sorted by name."""
        return [self.load(name) for name in self.names()]

    def _check_known(self, name: str) -> None:
        if name not in self._paths:
            from ..util import did_you_mean

            raise ScenarioError(
                f"no scenario named {name!r} in {self.root}"
                f"{did_you_mean(name, self._paths)}; "
                f"available: {', '.join(self.names()) or '(none)'}"
            )

    def _resolve(self, name: str, chain: tuple) -> dict:
        self._check_known(name)
        if name in chain:
            cycle = " -> ".join((*chain, name))
            raise ScenarioError(f"'extends' cycle: {cycle}")
        doc = dict(self.raw(name))
        parent_name = doc.pop("extends", None)
        if parent_name is None:
            return doc
        if not isinstance(parent_name, str):
            raise ScenarioError(
                f"{self._paths[name]}: 'extends' must be a scenario name"
            )
        parent = dict(self._resolve(parent_name, (*chain, name)))
        # identity and provenance are never inherited
        for key in ("name", "title", "description", "tags"):
            parent.pop(key, None)
        # a child that switches sweep mode replaces the sweep wholesale —
        # deep-merging across modes would leave stale axis keys behind
        child_sweep = doc.get("sweep")
        if (isinstance(child_sweep, dict)
                and isinstance(parent.get("sweep"), dict)
                and child_sweep.get("mode") is not None
                and child_sweep.get("mode") != parent["sweep"].get("mode")):
            parent.pop("sweep")
        return deep_merge(parent, doc)


def load_scenario(
    name_or_path: Union[str, Path],
    *,
    catalog: Union[None, str, Path, ScenarioCatalog] = None,
) -> Scenario:
    """Load one scenario by catalog name or by file path.

    A path (existing file, or anything ending in ``.json``/``.toml``)
    loads that file, resolving ``extends`` against the file's own
    directory.  Anything else is looked up by name in ``catalog``
    (defaulting to :func:`default_catalog_dir`).
    """
    if isinstance(catalog, (str, Path)):
        catalog = ScenarioCatalog(catalog)
    path = Path(name_or_path)
    if path.suffix in _SUFFIXES or path.is_file():
        file_catalog = ScenarioCatalog(path.parent if str(path.parent) else ".")
        return file_catalog.load(
            load_scenario_dict(path).get("name", path.stem)
        )
    if catalog is None:
        root = default_catalog_dir()
        if root is None:
            raise ScenarioError(
                f"no scenario catalog found for {str(name_or_path)!r}: set "
                f"REPRO_SCENARIOS, create ./scenarios, or pass catalog="
            )
        catalog = ScenarioCatalog(root)
    return catalog.load(str(name_or_path))
