"""Markdown reports over scenario result rows.

Turns the JSONL rows a scenario run (or committed baseline) produces
into a human-readable Markdown document: one table per scenario
*family*, where a family is one JSONL file (its stem names the
section).  Columns are adaptive — a family only gets the columns its
rows actually carry, in a fixed canonical order — so a plain analytic
sweep renders a compact table while a bounded-cache robustness run
grows hit/miss/write-back and ``cache`` cost-share columns without any
per-scenario configuration.

Exposed on the CLI as ``repro scenarios report``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Sequence, Union

__all__ = ["collect_families", "render_family", "render_report"]

#: canonical column order; a family shows the subset its rows carry.
_COLUMN_ORDER = (
    "protocol",
    "kind",
    "p",
    "disturb",
    "seed",
    "M",
    "acc_analytic",
    "acc_sim",
    "discrepancy_pct",
    "acc_reliability_share",
    "acc_quorum_share",
    "acc_hedge_share",
    "acc_cache_share",
    "cache_hits",
    "cache_misses",
    "capacity_misses",
    "cache_evictions",
    "cache_writebacks",
    "violations",
    "coherent",
    "status",
)

#: columns only shown when they vary across the family's rows.
_ELIDE_WHEN_CONSTANT = ("kind", "seed", "M", "status")


def collect_families(
    paths: Sequence[Union[str, Path]]
) -> Dict[str, List[dict]]:
    """Load JSONL row files into ``{family: rows}`` (insertion-ordered).

    The family name is the file stem; a missing or empty file is an
    error — a report that silently skips a family reads as coverage.
    """
    families: Dict[str, List[dict]] = {}
    for raw in paths:
        path = Path(raw)
        if not path.is_file():
            raise FileNotFoundError(f"no such rows file: {path}")
        rows = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        if not rows:
            raise ValueError(f"rows file is empty: {path}")
        families[path.stem] = rows
    return families


def _columns(rows: Sequence[dict]) -> List[str]:
    present = [
        col for col in _COLUMN_ORDER if any(col in row for row in rows)
    ]
    return [
        col for col in present
        if col not in _ELIDE_WHEN_CONSTANT
        or len({json.dumps(row.get(col)) for row in rows}) > 1
    ]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return f"{value:g}"
    return str(value)


def render_family(name: str, rows: Sequence[dict]) -> str:
    """Render one family: a ``##`` heading plus a Markdown table."""
    columns = _columns(rows)
    lines = [
        f"## {name} ({len(rows)} row{'s' if len(rows) != 1 else ''})",
        "",
        "| " + " | ".join(columns) + " |",
        "| " + " | ".join("---" for _ in columns) + " |",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_fmt(row.get(col)) for col in columns) + " |"
        )
    return "\n".join(lines)


def render_report(families: Dict[str, List[dict]]) -> str:
    """Render the full report: one section per family."""
    if not families:
        raise ValueError("no families to report on")
    sections = [
        render_family(name, rows) for name, rows in families.items()
    ]
    return "# Scenario report\n\n" + "\n\n".join(sections) + "\n"
