"""Running scenarios and comparing their rows against committed baselines.

Thin glue: a scenario expands to a :class:`~repro.exp.spec.SweepSpec`
(:meth:`Scenario.to_spec`) and runs through the existing parallel sweep
engine and content-addressed result cache *unchanged* — so a scenario
that mirrors a legacy benchmark reproduces its JSONL rows byte-for-byte
and shares its cache entries.  :func:`compare_to_baseline` turns that
byte-identity into a regression check against a committed baseline file.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from ..exp.cache import ResultCache
from ..exp.runner import SweepResult, row_line, run_sweep
from ..obs.registry import MetricsRegistry
from .schema import Scenario, ScenarioError

__all__ = ["BaselineDiff", "compare_to_baseline", "run_scenario"]


def run_scenario(
    scenario: Scenario,
    *,
    cells: Optional[int] = None,
    workers: int = 1,
    cache: Union[ResultCache, str, Path, None] = None,
    out_path: Union[str, Path, None] = None,
    progress=None,
    registry: Optional[MetricsRegistry] = None,
) -> SweepResult:
    """Expand ``scenario`` and evaluate it with the sweep engine.

    Args:
        cells: evaluate only the first ``cells`` cells (smoke runs);
            ``None`` runs everything.
        workers, cache, out_path, progress, registry: passed through to
            :func:`repro.exp.run_sweep` verbatim.
    """
    spec = scenario.to_spec()
    if cells is not None:
        if cells < 1:
            raise ScenarioError(f"cells must be >= 1, got {cells}")
        spec = type(spec)(cells=spec.cells[:cells])
    return run_sweep(
        spec, workers=workers, cache=cache, out_path=out_path,
        progress=progress, registry=registry,
    )


@dataclass(frozen=True)
class BaselineDiff:
    """The outcome of one scenario-vs-baseline comparison."""

    #: lines the run produced but the baseline lacks
    missing_in_baseline: List[str]
    #: lines the baseline has but the run did not produce
    missing_in_run: List[str]
    #: run lines compared (after any ``cells`` truncation)
    compared: int

    @property
    def identical(self) -> bool:
        return not self.missing_in_baseline and not self.missing_in_run

    def summary(self) -> str:
        if self.identical:
            return f"identical: {self.compared} rows match the baseline"
        return (
            f"DIFFERS: {len(self.missing_in_baseline)} row(s) not in "
            f"baseline, {len(self.missing_in_run)} baseline row(s) not "
            f"reproduced (of {self.compared} run rows)"
        )


def compare_to_baseline(
    result: SweepResult, baseline_path: Union[str, Path]
) -> BaselineDiff:
    """Compare a scenario run's rows byte-for-byte against a baseline JSONL.

    Rows are matched as canonical JSONL lines (:func:`row_line` — sorted
    keys, no whitespace), order-insensitively: the run and the baseline
    must contain exactly the same line multiset.  When the run was
    truncated (``--cells``), pass the truncated result — the comparison
    only requires the run's lines to appear in the baseline, plus reports
    baseline lines beyond the run's coverage as missing.
    """
    baseline_path = Path(baseline_path)
    if not baseline_path.is_file():
        raise ScenarioError(f"baseline file not found: {baseline_path}")
    baseline_lines = [
        line.strip()
        for line in baseline_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    run_lines = [row_line(row) for row in result.rows]
    remaining = list(baseline_lines)
    missing_in_baseline = []
    for line in run_lines:
        try:
            remaining.remove(line)
        except ValueError:
            missing_in_baseline.append(line)
    return BaselineDiff(
        missing_in_baseline=missing_in_baseline,
        missing_in_run=remaining,
        compared=len(run_lines),
    )
