"""Trace export: Chrome trace-event JSON (Perfetto) and JSONL streams.

The Chrome trace-event format is documented in the Trace Event Format
spec; Perfetto and ``chrome://tracing`` both load it.  We map one unit
of simulated time to one microsecond (``ts``/``dur`` are microseconds
in the format), put each node on its own process row (``pid = node id +
1``; ``pid 0`` is reserved for system events: crashes, epoch resets,
detector probes, unattributable costs) and each object on its own
thread row within the node.

All serialisation is canonical -- ``sort_keys=True`` and compact
separators -- so a deterministic tracer yields a byte-identical file:
the property chaos repro replays rely on.

:data:`CHROME_TRACE_SCHEMA` is the golden schema the exported payload
must satisfy; :func:`validate_chrome_trace` checks a payload against it
and returns a list of problems (empty = valid).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .trace import Tracer

__all__ = [
    "CHROME_TRACE_SCHEMA",
    "SYSTEM_PID",
    "chrome_trace",
    "trace_json",
    "write_chrome_trace",
    "events_jsonl",
    "write_events_jsonl",
    "validate_chrome_trace",
]

#: pid used for events not attributable to a single node's operation.
SYSTEM_PID = 0

#: Golden schema for exported Chrome traces.  ``phases`` maps each event
#: phase we emit to the fields it must carry (field name -> allowed
#: types); ``top_level`` lists required top-level keys.
CHROME_TRACE_SCHEMA: Dict[str, Any] = {
    "top_level": {
        "traceEvents": list,
        "displayTimeUnit": str,
        "otherData": dict,
    },
    "display_time_units": ("ms", "ns"),
    "phases": {
        "M": {  # metadata: process/thread naming
            "name": (str,),
            "pid": (int,),
            "tid": (int,),
            "args": (dict,),
        },
        "X": {  # complete event: a span with a duration
            "name": (str,),
            "cat": (str,),
            "ts": (int, float),
            "dur": (int, float),
            "pid": (int,),
            "tid": (int,),
            "args": (dict,),
        },
        "i": {  # instant event: a child event inside a span
            "name": (str,),
            "cat": (str,),
            "ts": (int, float),
            "pid": (int,),
            "tid": (int,),
            "s": (str,),
            "args": (dict,),
        },
    },
    "metadata_names": ("process_name", "thread_name"),
    "instant_scopes": ("g", "p", "t"),
}


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"


def _event_args(ev) -> Dict[str, Any]:
    args: Dict[str, Any] = {"cost": ev.cost}
    if ev.op_id is not None:
        args["op_id"] = ev.op_id
    if ev.src is not None:
        args["src"] = ev.src
    if ev.dst is not None:
        args["dst"] = ev.dst
    if ev.detail is not None:
        args["detail"] = ev.detail
    return args


def chrome_trace(tracer: Tracer, label: Optional[str] = None) -> Dict[str, Any]:
    """Build a Chrome trace-event payload from a tracer's contents."""
    events: List[Dict[str, Any]] = []
    pids = {SYSTEM_PID}

    events.append(
        {
            "ph": "M",
            "name": "process_name",
            "pid": SYSTEM_PID,
            "tid": 0,
            "args": {"name": "system"},
        }
    )

    spans = tracer.spans
    for span in spans:
        pid = span.node + 1
        if pid not in pids:
            pids.add(pid)
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": "node %d" % span.node},
                }
            )

    for span in spans:
        pid = span.node + 1
        tid = span.obj
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "ph": "X",
                "name": "%s obj%d" % (span.kind, span.obj),
                "cat": "op",
                "ts": span.start,
                "dur": end - span.start,
                "pid": pid,
                "tid": tid,
                "args": {
                    "op_id": span.op_id,
                    "cost": span.cost,
                    "complete": span.end is not None,
                },
            }
        )
        for ev in span.events:
            events.append(
                {
                    "ph": "i",
                    "name": ev.kind,
                    "cat": "event",
                    "ts": ev.time,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": _event_args(ev),
                }
            )

    for ev in tracer.system_events:
        events.append(
            {
                "ph": "i",
                "name": ev.kind,
                "cat": "system",
                "ts": ev.time,
                "pid": SYSTEM_PID,
                "tid": 0,
                "s": "p",
                "args": _event_args(ev),
            }
        )

    other: Dict[str, Any] = {
        "generator": "repro.obs",
        "clock": "simulated-time (1 unit = 1us)",
        "sample_every": tracer.config.sample_every,
        "ops_seen": tracer.ops_seen,
        "spans": len(spans),
        "dropped_events": tracer.dropped_events,
        "total_cost": tracer.total_cost(),
    }
    if label is not None:
        other["label"] = label
    return {
        "displayTimeUnit": "ms",
        "otherData": other,
        "traceEvents": events,
    }


def trace_json(tracer: Tracer, label: Optional[str] = None) -> str:
    """Canonical (byte-deterministic) Chrome trace JSON for a tracer."""
    return _canonical(chrome_trace(tracer, label=label))


def write_chrome_trace(tracer: Tracer, path, label: Optional[str] = None) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(trace_json(tracer, label=label))


def events_jsonl(tracer: Tracer) -> str:
    """A line-delimited event stream: header, then spans with their
    events in registration order, then system events.

    Span order follows operation registration (issue order), so the
    stream is sorted by span start time; events within a span are in
    simulated-time order.
    """
    lines: List[str] = []
    summary = dict(tracer.summary())
    summary["type"] = "header"
    lines.append(json.dumps(summary, sort_keys=True, separators=(",", ":")))
    for span in tracer.spans:
        rec = span.to_dict()
        del rec["events"]
        rec["type"] = "span"
        rec["events"] = len(span.events)
        lines.append(json.dumps(rec, sort_keys=True, separators=(",", ":")))
        for ev in span.events:
            erec = ev.to_dict()
            erec["type"] = "event"
            lines.append(json.dumps(erec, sort_keys=True, separators=(",", ":")))
    for ev in tracer.system_events:
        erec = ev.to_dict()
        erec["type"] = "system"
        lines.append(json.dumps(erec, sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + "\n"


def write_events_jsonl(tracer: Tracer, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(events_jsonl(tracer))


def validate_chrome_trace(payload: Any) -> List[str]:
    """Check a payload against :data:`CHROME_TRACE_SCHEMA`.

    Returns a list of human-readable problems; an empty list means the
    payload is a valid, Perfetto-loadable trace per the golden schema.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level must be an object, got %s" % type(payload).__name__]
    for key, typ in CHROME_TRACE_SCHEMA["top_level"].items():
        if key not in payload:
            problems.append("missing top-level key %r" % key)
        elif not isinstance(payload[key], typ):
            problems.append(
                "top-level key %r must be %s, got %s"
                % (key, typ.__name__, type(payload[key]).__name__)
            )
    if problems:
        return problems
    if payload["displayTimeUnit"] not in CHROME_TRACE_SCHEMA["display_time_units"]:
        problems.append("displayTimeUnit %r not allowed" % payload["displayTimeUnit"])
    phases = CHROME_TRACE_SCHEMA["phases"]
    for i, event in enumerate(payload["traceEvents"]):
        where = "traceEvents[%d]" % i
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        ph = event.get("ph")
        if ph not in phases:
            problems.append("%s: unknown or missing phase %r" % (where, ph))
            continue
        for field, types in phases[ph].items():
            if field not in event:
                problems.append("%s: ph=%r missing field %r" % (where, ph, field))
            elif not isinstance(event[field], types) or isinstance(event[field], bool):
                problems.append(
                    "%s: field %r must be %s, got %s"
                    % (where, field, "/".join(t.__name__ for t in types),
                       type(event[field]).__name__)
                )
        if problems and problems[-1].startswith(where):
            continue
        if ph == "M" and event["name"] not in CHROME_TRACE_SCHEMA["metadata_names"]:
            problems.append("%s: metadata name %r not allowed" % (where, event["name"]))
        if ph == "M" and not isinstance(event["args"].get("name"), str):
            problems.append("%s: metadata args.name must be a string" % where)
        if ph == "i" and event["s"] not in CHROME_TRACE_SCHEMA["instant_scopes"]:
            problems.append("%s: instant scope %r not allowed" % (where, event["s"]))
        if ph == "X" and event["dur"] < 0:
            problems.append("%s: negative duration" % where)
        if ph in ("X", "i") and event["ts"] < 0:
            problems.append("%s: negative timestamp" % where)
    return problems
