"""repro.obs -- observability for the DSM simulator.

Three layers:

* :mod:`repro.obs.trace` -- structured, seed-deterministic per-operation
  spans and events in simulated time (:class:`Tracer`,
  :class:`TraceConfig`).
* :mod:`repro.obs.registry` -- counters/gauges/histograms that the
  simulator, sweep runner and chaos runner publish into
  (:class:`MetricsRegistry`).
* :mod:`repro.obs.profile` / :mod:`repro.obs.export` -- wall-clock
  profiling of simulator hot paths (:class:`Profiler`) and trace export
  as Chrome trace-event JSON or a JSONL event stream.

See ``docs/observability.md`` for the span model and overhead numbers.
"""

from .trace import Span, TraceConfig, TraceEvent, Tracer
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .profile import Profiler
from .export import (
    CHROME_TRACE_SCHEMA,
    SYSTEM_PID,
    chrome_trace,
    events_jsonl,
    trace_json,
    validate_chrome_trace,
    write_chrome_trace,
    write_events_jsonl,
)

__all__ = [
    "Span",
    "TraceConfig",
    "TraceEvent",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "CHROME_TRACE_SCHEMA",
    "SYSTEM_PID",
    "chrome_trace",
    "events_jsonl",
    "trace_json",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_events_jsonl",
]
