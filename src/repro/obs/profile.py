"""Wall-clock profiling of simulator hot paths.

Unlike the tracer (which records *simulated* time and is byte
deterministic), the profiler measures *real* time with
``time.perf_counter`` and is inherently machine dependent.  The two are
therefore kept strictly separate: profiler output never enters a trace
file, a sweep row or a cache entry.

Hot paths pay one attribute load and one ``is not None`` check when
profiling is off.  When on, scopes are accumulated into per-name
(call count, total seconds) buckets -- cheap enough to wrap the event
loop dispatch itself.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, List, Optional

__all__ = ["Profiler"]


class Profiler:
    """Named scoped timers with per-scope call/total accumulation."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        # name -> [calls, total_seconds]
        self._stats: Dict[str, List[float]] = {}

    def add(self, name: str, elapsed: float) -> None:
        """Record one timed interval (seconds) against ``name``."""
        bucket = self._stats.get(name)
        if bucket is None:
            self._stats[name] = [1, elapsed]
        else:
            bucket[0] += 1
            bucket[1] += elapsed

    @contextmanager
    def time(self, name: str):
        """Context manager form for coarse scopes (not for hot loops)."""
        t0 = perf_counter()
        try:
            yield self
        finally:
            self.add(name, perf_counter() - t0)

    def merge(self, other: "Profiler") -> None:
        for name, (calls, total) in other._stats.items():
            bucket = self._stats.get(name)
            if bucket is None:
                self._stats[name] = [calls, total]
            else:
                bucket[0] += calls
                bucket[1] += total

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Per-scope statistics, sorted by total time descending."""
        out: Dict[str, Dict[str, float]] = {}
        for name, (calls, total) in sorted(
            self._stats.items(), key=lambda kv: (-kv[1][1], kv[0])
        ):
            out[name] = {
                "calls": int(calls),
                "total_s": total,
                "mean_us": (total / calls) * 1e6 if calls else 0.0,
            }
        return out

    def total_seconds(self) -> float:
        return sum(total for _, total in self._stats.values())

    def __bool__(self) -> bool:
        return bool(self._stats)

    def format_table(self, top: Optional[int] = None) -> str:
        """Human-readable table of the hottest scopes."""
        stats = self.stats()
        rows = list(stats.items())
        if top is not None:
            rows = rows[:top]
        if not rows:
            return "(no profile samples)"
        name_w = max(len("scope"), max(len(name) for name, _ in rows))
        lines = [
            "%-*s %12s %12s %12s" % (name_w, "scope", "calls", "total (s)", "mean (us)")
        ]
        for name, st in rows:
            lines.append(
                "%-*s %12d %12.6f %12.3f"
                % (name_w, name, st["calls"], st["total_s"], st["mean_us"])
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {"scopes": self.stats(), "total_s": self.total_seconds()}
