"""A small metrics registry: counters, gauges and histograms.

The registry is the publication surface shared by the simulator
(:meth:`repro.sim.system.DSMSystem.publish_metrics`), the sweep runner
(``SweepRunner(registry=...)``) and the chaos runner
(``run_chaos(registry=...)``).  It deliberately mirrors the shape of
Prometheus-style client libraries without any of the wire format:
``collect()`` returns a plain, JSON-serialisable snapshot with sorted
keys so exported snapshots are deterministic.

Histograms keep raw observations (optionally over a sliding window of
the last ``window`` observations) and compute quantiles on demand with
the same linear-interpolation rule as ``Metrics.latency_stats``, so
p50/p95/p99 published here agree with the simulator's own reporting.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically non-decreasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters can only increase (got %r)" % (amount,))
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """A value that can go up and down (queue depth, in-flight frames)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}


def _quantile(ordered: List[float], q: float) -> float:
    """Linear-interpolation quantile over a pre-sorted list."""
    if not ordered:
        raise ValueError("quantile of empty histogram")
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    if len(ordered) == 1:
        return ordered[0]
    pos = q * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Histogram:
    """Raw-observation histogram with on-demand quantiles.

    ``window=None`` keeps every observation; ``window=k`` keeps only the
    last k (a sliding window), while lifetime ``count``/``total`` keep
    accumulating -- this is what per-share attribution over sliding
    windows uses.
    """

    __slots__ = ("name", "help", "window", "_values", "_count", "_total")

    def __init__(self, name: str, help: str = "", window: Optional[int] = None) -> None:
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 or None")
        self.name = name
        self.help = help
        self.window = window
        self._values: Union[List[float], Deque[float]]
        if window is None:
            self._values = []
        else:
            self._values = deque(maxlen=window)
        self._count = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        self._values.append(float(value))
        self._count += 1
        self._total += value

    @property
    def count(self) -> int:
        """Lifetime observation count (includes evicted window values)."""
        return self._count

    @property
    def total(self) -> float:
        """Lifetime sum (includes evicted window values)."""
        return self._total

    @property
    def values(self) -> List[float]:
        """Current (windowed) observations, oldest first."""
        return list(self._values)

    def quantile(self, q: float) -> float:
        return _quantile(sorted(self._values), q)

    def summary(self, quantiles: tuple = (0.5, 0.95, 0.99)) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "count": self._count,
            "total": self._total,
            "window": self.window,
            "window_count": len(self._values),
        }
        if self._values:
            ordered = sorted(self._values)
            out["min"] = ordered[0]
            out["max"] = ordered[-1]
            out["mean"] = sum(ordered) / len(ordered)
            for q in quantiles:
                out["p%g" % (q * 100)] = _quantile(ordered, q)
        return out

    def to_dict(self) -> Dict[str, Any]:
        out = self.summary()
        out["type"] = "histogram"
        return out


_Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Names -> instruments, with idempotent get-or-create accessors."""

    def __init__(self) -> None:
        self._instruments: Dict[str, _Instrument] = {}

    def _get_or_create(self, name: str, factory, kind) -> _Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = factory()
            self._instruments[name] = inst
            return inst
        if not isinstance(inst, kind):
            raise TypeError(
                "metric %r already registered as %s, not %s"
                % (name, type(inst).__name__, kind.__name__)
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge)

    def histogram(
        self, name: str, help: str = "", window: Optional[int] = None
    ) -> Histogram:
        hist = self._get_or_create(name, lambda: Histogram(name, help, window), Histogram)
        return hist  # type: ignore[return-value]

    def get(self, name: str) -> Optional[_Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def collect(self) -> Dict[str, Dict[str, Any]]:
        """Deterministic snapshot of every instrument, sorted by name."""
        return {name: self._instruments[name].to_dict() for name in sorted(self._instruments)}
