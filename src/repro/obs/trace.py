"""Structured event tracing for the DSM simulator.

The tracer records one :class:`Span` per shared-memory operation
(initiation -> sequencer ordering -> replica updates -> completion) and
attaches child :class:`TraceEvent` records for every message send,
delivery, retry, ack, quarantine and epoch reset that happens on the
operation's behalf.  Every event carries the cost share it contributed,
so a span's event costs sum exactly to the operation's trace cost as
charged by :class:`repro.sim.metrics.Metrics` -- the tracer is hooked
into the same call sites that charge costs, which makes the invariant
hold by construction rather than by reconciliation.

Design constraints:

* **Zero overhead when disabled.**  Every hook point in the simulator
  guards on ``tracer is not None``; a run without tracing executes the
  exact same instruction stream as before this module existed.
* **Seed determinism.**  Timestamps come from the simulation clock, not
  wall clock, and no iteration order depends on hashing of non-string
  keys.  The same :class:`repro.sim.config.RunConfig` and seed produce a
  byte-identical exported trace.
* **Bounded overhead when enabled.**  ``TraceConfig.sample_every=k``
  keeps a span for every k-th operation only; events for unsampled
  operations are dropped at the hook point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..util import reject_unknown_keys

__all__ = ["TraceConfig", "TraceEvent", "Span", "Tracer"]


@dataclass(frozen=True)
class TraceConfig:
    """Configuration for structured tracing.

    Attributes:
        sample_every: keep a full span for every k-th operation (1 =
            trace everything).  System-level events (crashes, epoch
            resets, detector probes) are always recorded.
    """

    sample_every: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.sample_every, int) or isinstance(self.sample_every, bool):
            raise TypeError("sample_every must be an int")
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")

    def to_dict(self) -> Dict[str, Any]:
        return {"sample_every": self.sample_every}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceConfig":
        reject_unknown_keys(data, ("sample_every",), "TraceConfig")
        return cls(sample_every=int(data.get("sample_every", 1)))


@dataclass
class TraceEvent:
    """A single instant inside a span (or a system-level event).

    ``cost`` is the acc share this event contributed to its operation's
    trace cost (0.0 for purely informational events such as queue
    enqueues or duplicate suppressions).
    """

    __slots__ = ("kind", "time", "op_id", "src", "dst", "cost", "detail")

    kind: str
    time: float
    op_id: Optional[int]
    src: Optional[int]
    dst: Optional[int]
    cost: float
    detail: Optional[str]

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "time": self.time, "cost": self.cost}
        if self.op_id is not None:
            out["op_id"] = self.op_id
        if self.src is not None:
            out["src"] = self.src
        if self.dst is not None:
            out["dst"] = self.dst
        if self.detail is not None:
            out["detail"] = self.detail
        return out


@dataclass
class Span:
    """The full lifetime of one shared-memory operation."""

    op_id: int
    node: int
    kind: str
    obj: int
    start: float
    end: Optional[float] = None
    cost: float = 0.0
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.end is not None

    @property
    def latency(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op_id": self.op_id,
            "node": self.node,
            "kind": self.kind,
            "obj": self.obj,
            "start": self.start,
            "end": self.end,
            "cost": self.cost,
            "events": [ev.to_dict() for ev in self.events],
        }


class Tracer:
    """Collects spans and events from the simulator's hook points.

    The tracer is attached to :class:`repro.sim.metrics.Metrics` (for
    cost-charging hooks) and to the network/recovery layers (for
    informational hooks).  ``clock`` is any object exposing ``now`` in
    simulated time -- in practice the :class:`EventScheduler`.
    """

    __slots__ = ("config", "clock", "_spans", "_system", "_op_seq", "_dropped_events")

    def __init__(self, config: Optional[TraceConfig] = None, clock: Any = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self.clock = clock
        self._spans: Dict[int, Span] = {}
        self._system: List[TraceEvent] = []
        self._op_seq = 0
        self._dropped_events = 0

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def begin_op(self, op_id: int, node: int, kind: str, obj: int, time: float) -> None:
        """Open a span for an operation (called at registration time)."""
        seq = self._op_seq
        self._op_seq = seq + 1
        if seq % self.config.sample_every:
            return
        self._spans[op_id] = Span(op_id=op_id, node=node, kind=kind, obj=obj, start=time)

    def end_op(self, op_id: int, time: float) -> None:
        span = self._spans.get(op_id)
        if span is not None:
            span.end = time

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------
    def _now(self) -> float:
        clock = self.clock
        return float(clock.now) if clock is not None else 0.0

    def op_event(
        self,
        kind: str,
        op_id: Optional[int],
        cost: float = 0.0,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Record an event on behalf of an operation.

        Events for unsampled operations are dropped (counted in
        ``dropped_events``); events with ``op_id=None`` are recorded as
        system events so unattributable costs stay visible in the trace.
        """
        if op_id is None:
            self._system.append(
                TraceEvent(kind, self._now(), None, src, dst, cost, detail)
            )
            return
        span = self._spans.get(op_id)
        if span is None:
            self._dropped_events += 1
            return
        span.events.append(TraceEvent(kind, self._now(), op_id, src, dst, cost, detail))
        span.cost += cost

    def system_event(
        self,
        kind: str,
        cost: float = 0.0,
        src: Optional[int] = None,
        dst: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Record an event not attributable to a single operation."""
        self._system.append(TraceEvent(kind, self._now(), None, src, dst, cost, detail))

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Spans in operation-registration order (deterministic)."""
        return list(self._spans.values())

    @property
    def system_events(self) -> List[TraceEvent]:
        return list(self._system)

    @property
    def dropped_events(self) -> int:
        """Events discarded because their operation was not sampled."""
        return self._dropped_events

    @property
    def ops_seen(self) -> int:
        """Total operations observed (sampled or not)."""
        return self._op_seq

    def span(self, op_id: int) -> Optional[Span]:
        return self._spans.get(op_id)

    def total_cost(self) -> float:
        """Sum of all recorded costs (span events + system events)."""
        total = sum(s.cost for s in self._spans.values())
        total += sum(ev.cost for ev in self._system)
        return total

    def event_count(self) -> int:
        return sum(len(s.events) for s in self._spans.values()) + len(self._system)

    def summary(self) -> Dict[str, Any]:
        spans = self._spans.values()
        return {
            "ops_seen": self._op_seq,
            "spans": len(self._spans),
            "complete_spans": sum(1 for s in spans if s.end is not None),
            "span_events": sum(len(s.events) for s in spans),
            "system_events": len(self._system),
            "dropped_events": self._dropped_events,
            "total_cost": self.total_cost(),
            "sample_every": self.config.sample_every,
        }
