"""Operational protocol layer shared by all eight coherence protocols.

The formal Mealy layer (:mod:`repro.machines`) specifies protocols as
transition tables; this module provides the *operational* counterpart the
discrete-event simulator executes: per-node, per-object protocol processes
with explicit message handlers.

Design (paper Section 2):

* There are ``N + 1`` nodes; node indices are ``1 .. N`` for the clients and
  ``N + 1`` for the sequencer (the paper's convention).
* An application process issues read/write :class:`Operation` requests to the
  protocol process of the addressed object.
* Protocol processes exchange :class:`~repro.machines.message.Message`
  objects over fault-free FIFO channels.  Clients of fixed-home protocols
  talk only to the sequencer; the migrating-owner protocols (Berkeley,
  Dragon) address the *believed owner*, learning ownership changes from the
  invalidation/update broadcasts that every ownership transfer already emits
  (no additional messages; see DESIGN.md).
* When a distributed operation requires a response, the client's local queue
  is disabled until the response arrives (the paper's disable/enable
  mechanism).

Every concrete protocol provides a :class:`ProtocolSpec` with factories for
the client-side and sequencer-side processes plus the protocol's metadata
(state sets, trace set, cost table used by the analytic kernels).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from ..machines.message import Message, MsgType, ParamPresence

__all__ = [
    "READ",
    "WRITE",
    "EJECT",
    "ACQUIRE",
    "RELEASE",
    "Operation",
    "ProcessContext",
    "ProtocolProcess",
    "ProtocolSpec",
    "HoldingMixin",
]

#: Operation kind constants.
READ = "read"
WRITE = "write"
#: Section 6 extension: a node voluntarily drops its replica (memory
#: pressure); never issued by the paper's workloads.
EJECT = "eject"
#: Section 6 extension: synchronization operations (lock acquire/release),
#: handled by :mod:`repro.sim.locks`, not by the coherence protocols.
ACQUIRE = "acquire"
RELEASE = "release"


@dataclass(slots=True)
class Operation:
    """One shared-memory operation issued by an application process.

    Attributes:
        op_id: globally unique identifier; every message a protocol sends on
            behalf of this operation carries it, which is how the simulator
            attributes trace communication costs.
        node: issuing node index (``1 .. N+1``).
        kind: ``"read"`` or ``"write"``.
        obj: shared-object index (``1 .. M``).
        issue_time: simulation time the application issued the request.
        params: write parameters (the simulator uses the ``op_id`` itself as
            the written value).
    """

    op_id: int
    node: int
    kind: str
    obj: int
    issue_time: float = 0.0
    params: Any = None

    #: simulation time the operation completed (set by the node).
    complete_time: Optional[float] = None
    #: value returned to the application (reads only).
    result: Any = None
    #: optional completion callback (drives closed-loop applications,
    #: e.g. lock-protected critical sections in the examples).
    callback: Optional[Any] = None


class ProcessContext(abc.ABC):
    """Facilities a protocol process uses to act on the world.

    The simulator implements this against real channels and queues; the
    protocol unit tests implement it against an in-memory recording fabric.
    All sends are attributed to an operation for cost accounting.
    """

    #: this node's index
    node_id: int
    #: the sequencer node's index (``N + 1``)
    sequencer_id: int
    #: all node indices, ``1 .. N+1``
    all_nodes: Tuple[int, ...]
    #: the shared-object index this process controls
    obj: int

    @property
    def client_nodes(self) -> Tuple[int, ...]:
        """All client indices (every node except the sequencer)."""
        return tuple(n for n in self.all_nodes if n != self.sequencer_id)

    @abc.abstractmethod
    def send(
        self,
        dst: int,
        msg_type: MsgType,
        presence: ParamPresence,
        op_id: Optional[int],
        payload: Any = None,
        initiator: Optional[int] = None,
    ) -> None:
        """Send one message to ``dst``.

        Its communication cost is charged to the operation ``op_id`` — every
        message of a trace carries the id of the operation that initiated
        the trace, including messages relayed by the sequencer (grants,
        invalidations, recalls), so per-operation trace costs are exact.
        """

    def broadcast_except(
        self,
        excluded: Iterable[int],
        msg_type: MsgType,
        presence: ParamPresence,
        op_id: Optional[int],
        payload: Any = None,
        initiator: Optional[int] = None,
    ) -> int:
        """Send to every node except ``excluded``; returns the fan-out width."""
        excluded_set = set(excluded) | {self.node_id}
        targets = [n for n in self.all_nodes if n not in excluded_set]
        for dst in targets:
            self.send(dst, msg_type, presence, op_id, payload, initiator)
        return len(targets)

    def send_unordered(
        self,
        dst: int,
        msg_type: MsgType,
        presence: ParamPresence,
        op_id: Optional[int],
        payload: Any = None,
        initiator: Optional[int] = None,
        quorum: bool = False,
        hedge: bool = False,
    ) -> None:
        """Send one message outside the FIFO channel ordering.

        Quorum protocols use this for phase messages whose loss is
        handled by quorum re-selection rather than by the reliable
        layer's in-order delivery guarantee: an abandoned datagram never
        wedges the channel behind it.  ``quorum=True`` marks a
        re-selection re-broadcast, charged to the ``quorum`` cost share
        instead of the protocol share; ``hedge=True`` marks a hedge leg
        (:mod:`repro.sim.hedge`), charged to the ``hedge`` share.  The
        default falls back to the ordered :meth:`send` (exact on a
        fault-free fabric, where no message is ever retried or
        abandoned).
        """
        del quorum, hedge  # only meaningful on a reliable fabric
        self.send(dst, msg_type, presence, op_id, payload, initiator)

    def cancel_unordered(self, op_id: int) -> int:
        """Hook: void pending unordered retries for ``op_id`` (hedging).

        The default is a no-op returning 0; the simulator's port
        forwards it to the reliable transport's datagram cancellation.
        """
        del op_id
        return 0

    def record_hedge_launch(self, legs: int) -> None:
        """Hook: a quorum phase launched ``legs`` hedge legs.

        The default is a no-op; the simulator's port overrides it to
        count hedge launches for the robustness banner.
        """
        del legs

    def schedule(self, delay: float, callback: Any) -> Any:
        """Schedule ``callback`` after ``delay`` sim time; returns a handle.

        Only quorum protocols need process-level timers (phase
        re-selection); fabrics that cannot host them refuse loudly.
        """
        raise NotImplementedError(
            "this fabric does not support protocol timers"
        )

    def record_quorum_reselection(self) -> None:
        """Hook: a quorum phase timed out and re-selected its quorum.

        The default is a no-op; the simulator's port overrides it to
        count re-selection attempts for the robustness banner and the
        metrics registry.
        """

    @abc.abstractmethod
    def complete(self, op: Operation, value: Any = None) -> None:
        """Report ``op`` finished to the application process."""

    def value_installed(self, process: "ProtocolProcess", value: Any) -> None:
        """Hook: ``process`` installed ``value`` into its copy.

        Fired on every assignment to :attr:`ProtocolProcess.value`.  The
        default is a no-op; the simulator's port overrides it to feed the
        recovery subsystem's ordered write log and the consistency
        monitor's version vectors (:mod:`repro.sim.recovery`,
        :mod:`repro.sim.monitor`).
        """

    @abc.abstractmethod
    def disable_local_queue(self) -> None:
        """Suspend the local queue while awaiting a response (Section 2)."""

    @abc.abstractmethod
    def enable_local_queue(self) -> None:
        """Resume the local queue."""


class ProtocolProcess(abc.ABC):
    """A per-node, per-object protocol process.

    Concrete subclasses keep the copy state in :attr:`state` (using the
    paper's state names) and the simulated user information in
    :attr:`value` (the ``op_id`` of the last write applied to this copy).
    """

    #: Crash-recovery hook: when set on a *client* process class, a
    #: recovering node may install its fetched snapshot in this state at
    #: rejoin (warm rejoin).  Sound only for protocols whose writes reach
    #: every node unconditionally (no directory/holder set the rejoined
    #: copy would need to re-register with); ``None`` rejoins cold.
    WARM_REJOIN_STATE: Optional[str] = None

    def __init__(self, ctx: ProcessContext, initial_state: str, initial_value: Any = 0):
        self.ctx = ctx
        #: current copy state (paper state name, e.g. ``"VALID"``)
        self.state = initial_state
        #: simulated user-information content of this copy
        self.value = initial_value

    @property
    def value(self) -> Any:
        """Simulated user-information content of this copy."""
        return self._value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._value = new_value
        self.ctx.value_installed(self, new_value)

    @abc.abstractmethod
    def on_request(self, op: Operation) -> None:
        """Handle a read/write request from the local application process."""

    @abc.abstractmethod
    def on_message(self, msg: Message) -> None:
        """Handle a message arriving on the distributed queue."""


class HoldingMixin:
    """Buffering for serialization points that must wait for a response.

    A sequencer/owner that has issued a recall (or granted a two-phase
    write) holds every other incoming request until the response arrives.
    Holding is pure buffering — it costs no messages — and preserves the
    global serialization the paper's sequencer provides.  Subclasses call
    :meth:`_hold` to buffer work and :meth:`_release_held` after the
    response; held items are replayed through ``on_request``/``on_message``.
    """

    def _init_holding(self) -> None:
        self._busy: bool = False
        self._held: List[Any] = []

    def _hold(self, item: Any) -> None:
        self._held.append(item)

    def _release_held(self) -> None:
        """Replay buffered work; items that hit a new busy period re-buffer."""
        held, self._held = self._held, []
        for item in held:
            if self._busy:
                self._held.append(item)
            elif isinstance(item, Operation):
                self.on_request(item)  # type: ignore[attr-defined]
            else:
                self.on_message(item)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class ProtocolSpec:
    """Metadata plus factories for one coherence protocol.

    Attributes:
        name: registry key (e.g. ``"berkeley"``).
        display_name: paper name (e.g. ``"Berkeley"``).
        client_states: the client copy's state set (paper appendix).
        sequencer_states: the sequencer copy's state set.
        invalidation_based: ``True`` for invalidate protocols, ``False`` for
            the update protocols (Dragon, Firefly).
        migrating_owner: whether the sequencer role migrates (Berkeley,
            Dragon).
        client_factory: ``(ctx) -> ProtocolProcess`` for client nodes.
        sequencer_factory: ``(ctx) -> ProtocolProcess`` for node ``N + 1``.
        notes: reconstruction notes (cost choreography, cf. DESIGN.md).
        quorum_based: ``True`` for the sequencer-less majority-quorum
            family (SC-ABD): every node is a symmetric replica, liveness
            needs only a majority, and the recovery/failover subsystems
            (which assume a sequencer) do not apply.
    """

    name: str
    display_name: str
    client_states: Tuple[str, ...]
    sequencer_states: Tuple[str, ...]
    invalidation_based: bool
    migrating_owner: bool
    client_factory: Any
    sequencer_factory: Any
    notes: str = ""
    quorum_based: bool = False

    def make_process(self, ctx: ProcessContext) -> ProtocolProcess:
        """Instantiate the right process for ``ctx.node_id``'s role."""
        if ctx.node_id == ctx.sequencer_id:
            return self.sequencer_factory(ctx)
        return self.client_factory(ctx)
