"""Distributed Write-Through-V protocol (paper appendix, Figure 9).

The second distributed version of Write-Through: "the client's write
operation updates the copy at the sequencer **and its own copy**"; the
sequencer's copy has the single state ``VALID`` and the client copies are
``VALID``/``INVALID``.

Reconstruction (DESIGN.md): keeping the writer's copy coherent requires the
writer to learn the serialization point of its write, so the write is a
blocking **two-phase** operation:

1. ``W-PER`` token to the sequencer (cost 1); the local queue is disabled;
2. the sequencer serializes the write and answers ``W-GNT`` (cost 1, or
   ``S + 1`` carrying the user information when its directory shows the
   writer's copy is stale);
3. the writer installs the grant, applies its own parameters, replies with
   the write parameters (``UPD``, cost ``P + 1``) and re-enables its queue;
4. the sequencer applies the parameters and invalidates the other ``N - 1``
   clients.

Write cost from a VALID copy: ``P + N + 2`` — exactly two tokens more than
Write-Through, which reproduces the paper's Write-Through-V vs Write-Through
crossover line ``p = S/(S+2) - a*sigma*S/(S+2)`` identically (Section 5.1).
Write cost from an INVALID copy: ``P + S + N + 2``.  Read-miss cost:
``S + 2`` as in Write-Through.

The sequencer holds (buffers, at zero message cost) every other request
between a ``W-GNT`` and the arrival of the corresponding parameters so that
writes stay globally serialized.
"""

from __future__ import annotations

from typing import List, Optional

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["WriteThroughVClient", "WriteThroughVSequencer", "SPEC"]

INVALID = "INVALID"
VALID = "VALID"


class WriteThroughVClient(ProtocolProcess):
    """Client-side Write-Through-V process."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=INVALID)
        self._pending: Optional[Operation] = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # the sequencer's validity directory drives the W-GNT user-
            # information decision, so a valid copy must announce its
            # departure (one token); ejecting an invalid copy is free.
            if self.state == VALID:
                self.state = INVALID
                self.ctx.send(self.ctx.sequencer_id, MsgType.EJ,
                              ParamPresence.NONE, op.op_id)
            self.ctx.complete(op)
            return
        if op.kind == READ:
            if self.state == VALID:
                self.ctx.complete(op, self.value)
            else:
                self._pending = op
                self.ctx.disable_local_queue()
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.R_PER, ParamPresence.NONE, op.op_id
                )
        else:
            # two-phase write: ask for the serialization point first.
            self._pending = op
            self.ctx.disable_local_queue()
            self.ctx.send(
                self.ctx.sequencer_id, MsgType.W_PER, ParamPresence.NONE, op.op_id
            )

    def on_message(self, msg: Message) -> None:
        if msg.token.type is MsgType.R_GNT:
            self.value = msg.payload["value"]
            self.state = VALID
            op, self._pending = self._pending, None
            self.ctx.enable_local_queue()
            self.ctx.complete(op, self.value)
        elif msg.token.type is MsgType.W_GNT:
            op, self._pending = self._pending, None
            if msg.payload and "value" in msg.payload:
                # the grant carried the user information: refresh first.
                self.value = msg.payload["value"]
            # apply our own parameters and push them to the sequencer.
            self.value = op.params
            self.state = VALID
            self.ctx.send(
                self.ctx.sequencer_id,
                MsgType.UPD,
                ParamPresence.WRITE,
                op.op_id,
                payload={"value": op.params},
            )
            self.ctx.enable_local_queue()
            self.ctx.complete(op)
        elif msg.token.type is MsgType.W_INV:
            self.state = INVALID
        else:  # pragma: no cover - specification error
            raise ValueError(f"write_through_v client: unexpected {msg.token.type}")


class WriteThroughVSequencer(ProtocolProcess):
    """Sequencer-side Write-Through-V process with a validity directory."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=VALID)
        #: clients whose copies the sequencer knows to be valid
        self.valid_set = set()
        #: writer currently between W-GNT and its UPD, if any
        self._granted_writer: Optional[int] = None
        self._held: List[Message] = []
        self.serialized_writes = 0

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            self.ctx.complete(op)  # the home copy is pinned
            return
        if op.kind == READ:
            self.ctx.complete(op, self.value)
        else:
            if self._granted_writer is not None:
                # an in-flight two-phase client write owns the serialization
                # point; queue our own write behind it at zero message cost.
                self._held.append(op)
                return
            self.value = op.params
            self.serialized_writes += 1
            self.valid_set.clear()
            self.ctx.broadcast_except([], MsgType.W_INV, ParamPresence.NONE, op.op_id)
            self.ctx.complete(op)

    def on_message(self, msg: Message) -> None:
        if self._granted_writer is not None and msg.src != self._granted_writer:
            # hold every other request until the granted write's parameters
            # arrive, keeping writes globally serialized (no message cost).
            self._held.append(msg)
            return
        mtype = msg.token.type
        if mtype is MsgType.R_PER:
            self.valid_set.add(msg.src)
            self.ctx.send(
                msg.src,
                MsgType.R_GNT,
                ParamPresence.USER_INFO,
                msg.op_id,
                payload={"value": self.value},
                initiator=msg.token.operation_initiator,
            )
        elif mtype is MsgType.W_PER:
            needs_ui = msg.src not in self.valid_set
            self._granted_writer = msg.src
            self.ctx.send(
                msg.src,
                MsgType.W_GNT,
                ParamPresence.USER_INFO if needs_ui else ParamPresence.NONE,
                msg.op_id,
                payload={"value": self.value} if needs_ui else {},
                initiator=msg.token.operation_initiator,
            )
        elif mtype is MsgType.EJ:
            self.valid_set.discard(msg.src)
        elif mtype is MsgType.UPD:
            writer = msg.src
            self.value = msg.payload["value"]
            self.serialized_writes += 1
            self.valid_set = {writer}
            self._granted_writer = None
            self.ctx.broadcast_except(
                [writer], MsgType.W_INV, ParamPresence.NONE, msg.op_id,
                initiator=msg.token.operation_initiator,
            )
            self._release_held()
        else:  # pragma: no cover - specification error
            raise ValueError(f"write_through_v sequencer: unexpected {mtype}")

    def _release_held(self) -> None:
        """Re-process requests buffered behind a two-phase write."""
        held, self._held = self._held, []
        for item in held:
            if self._granted_writer is not None:
                self._held.append(item)
                continue
            if isinstance(item, Operation):
                self.on_request(item)
            else:
                self.on_message(item)


SPEC = ProtocolSpec(
    name="write_through_v",
    display_name="Write-Through-V",
    client_states=(INVALID, VALID),
    sequencer_states=(VALID,),
    invalidation_based=True,
    migrating_owner=False,
    client_factory=WriteThroughVClient,
    sequencer_factory=WriteThroughVSequencer,
    notes=(
        "Reconstructed: blocking two-phase write keeps the writer's copy "
        "valid; write cost P+N+2 from VALID (matches the paper's WTV-vs-WT "
        "crossover line exactly), P+S+N+2 from INVALID."
    ),
)
