"""Distributed Write-Through protocol (paper Sections 2-4, Tables 1-3).

Client copy states: ``INVALID`` (start), ``VALID``.  Sequencer copy state:
``VALID`` only.  Traces and costs (Section 4.1):

====== ===================================================== ==========
trace  trigger                                               cost
====== ===================================================== ==========
tr1    client read, copy VALID                               0
tr2    client read, copy INVALID: ``R-PER`` then
       ``R-GNT + ui``                                        ``S + 2``
tr3    client write, copy VALID: ``W-PER + w`` then
       ``W-INV`` to the other ``N - 1`` clients              ``P + N``
tr4    client write, copy INVALID (same messages)            ``P + N``
tr5    sequencer read                                        0
tr6    sequencer write: ``W-INV`` to all ``N`` clients       ``N``
====== ===================================================== ==========

The defining quirk of the distributed Write-Through client (mandated by the
paper's steady-state derivation, where trace ``tr2`` has the probability that
a read follows a write): the client does **not** keep a valid copy after its
own write — the write parameters are forwarded to the sequencer and the local
copy becomes ``INVALID``.  Writes are fire-and-forget (no response from the
sequencer), so the local queue is only disabled during read misses.
"""

from __future__ import annotations

from typing import Optional

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["WriteThroughClient", "WriteThroughSequencer", "SPEC"]

INVALID = "INVALID"
VALID = "VALID"


class WriteThroughClient(ProtocolProcess):
    """Client-side Write-Through protocol process (Table 1)."""

    #: warm rejoin is sound: every serialized write invalidates all other
    #: clients unconditionally (no directory to re-register with), so a
    #: snapshot installed VALID can never go stale silently.
    WARM_REJOIN_STATE = VALID

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=INVALID)
        self._pending_read: Optional[Operation] = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # Section 6 extension: drop the replica.  Write-Through keeps
            # no validity directory, so the eject is silent and free.
            self.state = INVALID
            self.ctx.complete(op)
            return
        if op.kind == READ:
            if self.state == VALID:
                # trace tr1: local read hit.
                self.ctx.complete(op, self.value)
            else:
                # trace tr2: ask the sequencer; block the local queue.
                self._pending_read = op
                self.ctx.disable_local_queue()
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.R_PER, ParamPresence.NONE, op.op_id
                )
        else:
            # traces tr3/tr4: forward the write parameters, drop the copy.
            self.state = INVALID
            self.ctx.send(
                self.ctx.sequencer_id,
                MsgType.W_PER,
                ParamPresence.WRITE,
                op.op_id,
                payload={"value": op.params},
            )
            self.ctx.complete(op)

    def on_message(self, msg: Message) -> None:
        if msg.token.type is MsgType.R_GNT:
            # trace tr2 completion: install the granted user information.
            self.value = msg.payload["value"]
            self.state = VALID
            op, self._pending_read = self._pending_read, None
            self.ctx.enable_local_queue()
            self.ctx.complete(op, self.value)
        elif msg.token.type is MsgType.W_INV:
            self.state = INVALID
        else:  # pragma: no cover - specification error
            raise ValueError(f"write_through client: unexpected {msg.token.type}")


class WriteThroughSequencer(ProtocolProcess):
    """Sequencer-side Write-Through protocol process (Table 3)."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=VALID)
        #: count of serialized writes (test instrumentation)
        self.serialized_writes = 0

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # the sequencer's copy is the memory of record: pinned.
            self.ctx.complete(op)
            return
        if op.kind == READ:
            # trace tr5: the sequencer's copy is always VALID.
            self.ctx.complete(op, self.value)
        else:
            # trace tr6: apply locally and invalidate all N clients.
            self.value = op.params
            self.serialized_writes += 1
            self.ctx.broadcast_except([], MsgType.W_INV, ParamPresence.NONE, op.op_id)
            self.ctx.complete(op)

    def on_message(self, msg: Message) -> None:
        if msg.token.type is MsgType.R_PER:
            # routine 103: grant with user information.
            self.ctx.send(
                msg.src,
                MsgType.R_GNT,
                ParamPresence.USER_INFO,
                msg.op_id,
                payload={"value": self.value},
                initiator=msg.token.operation_initiator,
            )
        elif msg.token.type is MsgType.W_PER:
            # routine 104: apply and invalidate everyone but the writer.
            self.value = msg.payload["value"]
            self.serialized_writes += 1
            self.ctx.broadcast_except(
                [msg.src], MsgType.W_INV, ParamPresence.NONE, msg.op_id,
                initiator=msg.token.operation_initiator,
            )
        else:  # pragma: no cover - specification error
            raise ValueError(f"write_through sequencer: unexpected {msg.token.type}")


SPEC = ProtocolSpec(
    name="write_through",
    display_name="Write-Through",
    client_states=(INVALID, VALID),
    sequencer_states=(VALID,),
    invalidation_based=True,
    migrating_owner=False,
    client_factory=WriteThroughClient,
    sequencer_factory=WriteThroughSequencer,
    notes=(
        "Paper-exact (Tables 1-3). Client writes are fire-and-forget and "
        "self-invalidate; read misses block the local queue until R-GNT."
    ),
)
