"""Distributed Firefly protocol (paper appendix).

"The copy at the sequencer has only one state: VALID.  The copy at the
client has also only one state: SHARED.  The client always passes the write
operation parameters to the sequencer.  The sequencer broadcasts the write
operation parameters to all clients."

Firefly is the fixed-sequencer update protocol: all copies are permanently
valid and reads are free; every write funnels through node ``N + 1``:

* client write: ``UPD + w`` to the sequencer (``P + 1``); the sequencer
  applies it, broadcasts ``UPD + w`` to the other ``N - 1`` clients and
  acknowledges the writer with an ``ACK`` token (1), which is the writer's
  serialization point for applying its own parameters — total
  ``N * (P + 1) + 1``, reproducing the paper's ideal-workload formula
  ``acc = p * (N * (P + 1) + 1)``;
* sequencer write: broadcast to all ``N`` clients — ``N * (P + 1)``.

The client's local queue is disabled between the update and its ``ACK`` so
writes from one node are applied in serialization order everywhere.

Section 6 extension (bounded replica caches): an ejecting client sends a
one-token ``EJ`` departure notice, and the sequencer — the natural
directory for a fixed-sequencer update protocol — drops departed clients
from its update fan-out until they re-fetch (``R-PER``) or write (their
``ACK`` re-installs the copy).  Updates to a departed client were ignored
anyway, so the multicast is semantically identical to the blind broadcast;
it just stops paying ``P + 1`` per evicted copy per write.  This is where
partial replication can undercut full replication: bounding the replica
set trades refetch cost (``S + 2`` per capacity miss) against update
fan-out (``P + 1`` per resident copy per write).  With no cache configured
nothing ever departs and the protocol is byte-identical to the paper's.
"""

from __future__ import annotations

from typing import Optional, Set

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["FireflyClient", "FireflySequencer", "SPEC"]

SHARED = "SHARED"
VALID = "VALID"
#: Section 6 extension: an ejected client replica
INVALID = "INVALID"


class FireflyClient(ProtocolProcess):
    """Client-side Firefly process: the single copy state SHARED."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=SHARED, initial_value=0)
        self._pending: Optional[Operation] = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # announce the departure so the sequencer stops sending this
            # copy updates (one token); ejecting an ejected copy is free.
            if self.state == SHARED:
                self.ctx.send(self.ctx.sequencer_id, MsgType.EJ,
                              ParamPresence.NONE, op.op_id)
            self.state = INVALID
            self.ctx.complete(op)
            return
        if op.kind == READ:
            if self.state == SHARED:
                self.ctx.complete(op, self.value)
            else:
                # re-fetch the copy from the sequencer (S + 2).
                self._pending = op
                self.ctx.disable_local_queue()
                self.ctx.send(self.ctx.sequencer_id, MsgType.R_PER,
                              ParamPresence.NONE, op.op_id)
            return
        self._pending = op
        self.ctx.disable_local_queue()
        self.ctx.send(
            self.ctx.sequencer_id,
            MsgType.UPD,
            ParamPresence.WRITE,
            op.op_id,
            # an ejected writer needs the whole copy back with the ACK
            payload={"value": op.params,
                     "needs_ui": self.state == INVALID},
        )

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if mtype is MsgType.UPD:
            if self.state == SHARED:
                self.value = msg.payload["value"]
            # ejected copies ignore partial updates.
        elif mtype is MsgType.ACK:
            op, self._pending = self._pending, None
            if msg.payload and "value" in msg.payload:
                self.value = msg.payload["value"]
            self.value = op.params
            self.state = SHARED
            self.ctx.enable_local_queue()
            self.ctx.complete(op)
        elif mtype is MsgType.R_GNT:
            self.value = msg.payload["value"]
            self.state = SHARED
            op, self._pending = self._pending, None
            self.ctx.enable_local_queue()
            self.ctx.complete(op, self.value)
        else:  # pragma: no cover - specification error
            raise ValueError(f"firefly client: unexpected {mtype}")


class FireflySequencer(ProtocolProcess):
    """Sequencer-side Firefly process: the single copy state VALID."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=VALID, initial_value=0)
        self.serialized_writes = 0
        #: clients that announced an eject (``EJ``) and did not re-fetch
        #: or write since; they are skipped by the update fan-out.
        self.departed: Set[int] = set()

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            self.ctx.complete(op)  # the sequencer's copy is pinned
            return
        if op.kind == READ:
            self.ctx.complete(op, self.value)
            return
        self.value = op.params
        self.serialized_writes += 1
        self.ctx.broadcast_except(
            sorted(self.departed), MsgType.UPD, ParamPresence.WRITE,
            op.op_id, payload={"value": op.params},
        )
        self.ctx.complete(op)

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if mtype is MsgType.EJ:
            self.departed.add(msg.src)
            return
        if mtype is MsgType.R_PER:
            # an ejected client re-fetches its copy (and rejoins the
            # update fan-out: the grant re-installs a SHARED copy).
            self.departed.discard(msg.src)
            self.ctx.send(
                msg.src, MsgType.R_GNT, ParamPresence.USER_INFO, msg.op_id,
                payload={"value": self.value},
                initiator=msg.token.operation_initiator,
            )
            return
        if mtype is not MsgType.UPD:  # pragma: no cover
            raise ValueError(f"firefly sequencer: unexpected {mtype}")
        needs_ui = bool(msg.payload.get("needs_ui"))
        self.value = msg.payload["value"]
        self.serialized_writes += 1
        # the writer's ACK re-installs its copy whatever its state was.
        self.departed.discard(msg.src)
        self.ctx.broadcast_except(
            sorted(self.departed | {msg.src}), MsgType.UPD,
            ParamPresence.WRITE, msg.op_id,
            payload={"value": msg.payload["value"]},
            initiator=msg.token.operation_initiator,
        )
        # the ACK carries the whole copy back when the writer had ejected
        # (cost S + 1 instead of 1).
        self.ctx.send(
            msg.src, MsgType.ACK,
            ParamPresence.USER_INFO if needs_ui else ParamPresence.NONE,
            msg.op_id,
            payload={"value": self.value} if needs_ui else None,
            initiator=msg.token.operation_initiator,
        )


SPEC = ProtocolSpec(
    name="firefly",
    display_name="Firefly",
    client_states=(SHARED,),
    sequencer_states=(VALID,),
    invalidation_based=False,
    migrating_owner=False,
    client_factory=FireflyClient,
    sequencer_factory=FireflySequencer,
    notes=(
        "Reconstructed update protocol with a fixed sequencer: client "
        "writes cost N*(P+1)+1 (parameters in, N-1 update broadcasts, ACK); "
        "sequencer writes cost N*(P+1); reads are always local. Ejected "
        "copies leave the update fan-out (EJ departure notice) until they "
        "re-fetch or write."
    ),
)
