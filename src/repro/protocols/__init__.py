"""The eight data-replication coherence protocols (paper Section 5, appendix).

Each protocol module provides client/sequencer protocol-process classes and
a :class:`~repro.protocols.base.ProtocolSpec`; :data:`PROTOCOLS` maps
registry names to specs.
"""

from .base import (
    ACQUIRE,
    EJECT,
    READ,
    RELEASE,
    WRITE,
    HoldingMixin,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)
from .registry import (
    EXTENSION_PROTOCOLS,
    PROTOCOLS,
    UnknownProtocolError,
    all_protocol_names,
    get_protocol,
    protocol_names,
)

__all__ = [
    "ACQUIRE",
    "EJECT",
    "READ",
    "RELEASE",
    "WRITE",
    "HoldingMixin",
    "Operation",
    "ProcessContext",
    "ProtocolProcess",
    "ProtocolSpec",
    "EXTENSION_PROTOCOLS",
    "PROTOCOLS",
    "UnknownProtocolError",
    "all_protocol_names",
    "get_protocol",
    "protocol_names",
]
