"""Registry of the eight coherence protocols analyzed by the paper."""

from __future__ import annotations

from typing import Dict, List

from .base import ProtocolSpec
from . import (
    berkeley,
    dragon,
    firefly,
    illinois,
    sc_abd,
    synapse,
    write_once,
    write_through,
    write_through_dir,
    write_through_v,
)

__all__ = ["PROTOCOLS", "EXTENSION_PROTOCOLS", "get_protocol",
           "protocol_names"]

#: The paper's eight protocols keyed by registry name, in the paper's order.
PROTOCOLS: Dict[str, ProtocolSpec] = {
    spec.name: spec
    for spec in (
        write_through.SPEC,
        write_through_v.SPEC,
        write_once.SPEC,
        synapse.SPEC,
        illinois.SPEC,
        berkeley.SPEC,
        dragon.SPEC,
        firefly.SPEC,
    )
}

#: Protocols added by this reproduction beyond the paper's eight.
EXTENSION_PROTOCOLS: Dict[str, ProtocolSpec] = {
    write_through_dir.SPEC.name: write_through_dir.SPEC,
    sc_abd.SPEC.name: sc_abd.SPEC,
}


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a protocol by registry name or display name (case-insensitive).

    Searches the paper's eight protocols first, then the extensions.

    Raises:
        KeyError: with the list of known protocols when the name is unknown.
    """
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    for table in (PROTOCOLS, EXTENSION_PROTOCOLS):
        if key in table:
            return table[key]
    for table in (PROTOCOLS, EXTENSION_PROTOCOLS):
        for spec in table.values():
            if spec.display_name.lower() == name.strip().lower():
                return spec
    known = list(PROTOCOLS) + list(EXTENSION_PROTOCOLS)
    raise KeyError(f"unknown protocol {name!r}; known: {', '.join(known)}")


def protocol_names() -> List[str]:
    """Registry names in the paper's order."""
    return list(PROTOCOLS)
