"""Registry of the eight coherence protocols analyzed by the paper.

:func:`get_protocol` is the one lookup API: it resolves base and
extension protocols alike (registry name or display name, case- and
separator-insensitive) and raises :class:`UnknownProtocolError` — listing
every valid name, with a did-you-mean suggestion — for anything else.
Direct ``PROTOCOLS[...]`` / ``EXTENSION_PROTOCOLS[...]`` indexing is
deprecated in docs and examples: it only sees half the registry and fails
with a bare ``KeyError``.
"""

from __future__ import annotations

from typing import Dict, List

from ..util import did_you_mean
from .base import ProtocolSpec
from . import (
    berkeley,
    dragon,
    firefly,
    illinois,
    sc_abd,
    synapse,
    write_once,
    write_through,
    write_through_dir,
    write_through_v,
)

__all__ = ["PROTOCOLS", "EXTENSION_PROTOCOLS", "UnknownProtocolError",
           "all_protocol_names", "get_protocol", "protocol_names"]

#: The paper's eight protocols keyed by registry name, in the paper's order.
PROTOCOLS: Dict[str, ProtocolSpec] = {
    spec.name: spec
    for spec in (
        write_through.SPEC,
        write_through_v.SPEC,
        write_once.SPEC,
        synapse.SPEC,
        illinois.SPEC,
        berkeley.SPEC,
        dragon.SPEC,
        firefly.SPEC,
    )
}

#: Protocols added by this reproduction beyond the paper's eight.
EXTENSION_PROTOCOLS: Dict[str, ProtocolSpec] = {
    write_through_dir.SPEC.name: write_through_dir.SPEC,
    sc_abd.SPEC.name: sc_abd.SPEC,
}


class UnknownProtocolError(KeyError):
    """A protocol name that resolves to nothing in either registry table.

    Subclasses ``KeyError`` so historical ``except KeyError`` handlers
    (the CLI's, among others) keep working, but renders as a clean
    message (no ``KeyError`` quote-wrapping) that lists every valid name
    and suggests the closest one.
    """

    def __init__(self, name: str) -> None:
        known = all_protocol_names()
        super().__init__(
            f"unknown protocol {name!r}{did_you_mean(name, known)}; "
            f"known: {', '.join(known)}"
        )
        self.name = name

    def __str__(self) -> str:
        return self.args[0]


def get_protocol(name: str) -> ProtocolSpec:
    """Look up a protocol by registry name or display name (case-insensitive).

    The single lookup API for base and extension protocols alike:
    searches the paper's eight protocols first, then the extensions, then
    display names (``"Write-Once"`` works as well as ``"write_once"``).

    Raises:
        UnknownProtocolError: (a ``KeyError``) listing every valid name,
            with a did-you-mean suggestion, when the name is unknown.
    """
    key = name.strip().lower().replace("-", "_").replace(" ", "_")
    for table in (PROTOCOLS, EXTENSION_PROTOCOLS):
        if key in table:
            return table[key]
    for table in (PROTOCOLS, EXTENSION_PROTOCOLS):
        for spec in table.values():
            if spec.display_name.lower() == name.strip().lower():
                return spec
    raise UnknownProtocolError(name)


def protocol_names() -> List[str]:
    """Registry names in the paper's order."""
    return list(PROTOCOLS)


def all_protocol_names() -> List[str]:
    """Every registry name — the paper's eight, then the extensions."""
    return list(PROTOCOLS) + list(EXTENSION_PROTOCOLS)
