"""SC-ABD: sequencer-less majority-quorum protocol (extension family).

Every protocol in the paper serializes writes through the sequencer, so a
minority partition containing the sequencer stalls the whole system.
SC-ABD removes the star: every node (including node ``N + 1``) is a
symmetric replica holding ``(timestamp, value)`` where a timestamp is the
logical pair ``(number, node_id)``, ordered lexicographically.  Reads and
writes are the classic two-phase majority-quorum protocol of Attiya, Bar-
Noy and Dolev (ABD), which gives per-object linearizability — strictly
stronger than the sequential consistency the paper's protocols provide —
with liveness that needs only *any* majority of live, reachable replicas:

* **write** — phase 1 queries a quorum for timestamps (``Q-TS``/``Q-TR``,
  bare tokens), the writer picks ``(max_number + 1, node_id)``; phase 2
  installs ``(ts, value)`` at a quorum (``Q-UPD`` carrying the write
  parameters) and completes on a quorum of ``Q-ACK``\\ s.
* **read** — phase 1 queries a quorum for ``(ts, value)`` (``Q-RD`` bare,
  ``Q-RR`` carrying user information).  If the quorum unanimously reports
  the maximum timestamp the read completes immediately; otherwise the
  reader first **write-backs** the maximum ``(ts, value)`` to the stale
  quorum members (``Q-WB``) and completes only after their acks — the
  read-repair that makes reads linearizable.

Quorum selection and cost model: with ``n = N + 1`` nodes the majority is
``m = n // 2 + 1`` and the *core* quorum is nodes ``1 .. m``.  Fault-free,
every phase addresses the core (self-sends travel as free intra-node
loops), so per-operation costs are deterministic closed forms: a read
costs ``q * (S + 2)`` and a write ``q * (P + 4)``, where ``q = m - 1``
for a node inside the core and ``q = m`` outside it
(:func:`repro.core.closed_forms.acc_sc_abd`).  When a phase times out the
initiator **re-selects**: it re-broadcasts the phase message to every
node that has not answered (any ``m`` distinct responders then complete
the phase), with exponential backoff.  Re-selection traffic is charged to
the ``quorum`` share of ``acc`` — zero fault-free — and rides the
unordered datagram transport
(:meth:`repro.sim.reliable.ReliableNetwork.send_unordered`), whose
retry-budget exhaustion degrades into silence rather than delivery
violations: liveness is owned here, by re-selection, not by the channel.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set, Tuple

from ..machines.message import Message, MsgType, ParamPresence
from ..util import backoff_delay
from .base import (
    EJECT,
    READ,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["SCABDProcess", "SPEC", "majority", "core_quorum",
           "quorum_fanout"]

REPLICA = "REPLICA"

#: base re-selection timeout: comfortably above the transport's base ack
#: timeout (8) plus a round trip, so fault-free phases never time out
QUORUM_TIMEOUT = 24.0
#: exponential backoff multiplier per re-selection attempt
QUORUM_BACKOFF = 2.0
#: cap on the inter-attempt delay (keeps healing partitions responsive)
QUORUM_DELAY_CAP = 400.0
#: re-selection attempts before an operation parks (an unhealed minority
#: partition); a parked operation is reported as stalled, never lost
QUORUM_MAX_ATTEMPTS = 60

Timestamp = Tuple[int, int]


def majority(num_nodes: int) -> int:
    """Majority quorum size ``m`` for an ``n``-node system."""
    return num_nodes // 2 + 1


def core_quorum(all_nodes: Tuple[int, ...]) -> Tuple[int, ...]:
    """The fault-free quorum: the ``m`` lowest-numbered nodes."""
    return all_nodes[: majority(len(all_nodes))]


def quorum_fanout(node: int, num_nodes: int) -> int:
    """Inter-node messages per phase leg, fault-free (``q`` in the docs).

    ``m - 1`` for a core member (its own leg is a free loop), ``m`` for a
    node outside the core.
    """
    m = majority(num_nodes)
    return m - 1 if node <= m else m


class SCABDProcess(ProtocolProcess):
    """The symmetric SC-ABD replica-plus-initiator process (every node)."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=REPLICA)
        #: logical timestamp of the local copy, ``(number, node_id)``
        self.ts: Timestamp = (0, 0)
        # ---- initiator-side phase machine (one op at a time per port:
        # the local queue is disabled for the whole operation) ----
        self._op: Optional[Operation] = None
        self._phase: Optional[str] = None
        self._gen = 0  # bumped on every phase change; stale traffic filtered
        self._attempts = 0
        self._timer: Optional[Any] = None
        self._replies: Dict[int, Any] = {}
        self._acks: Set[int] = set()
        self._repair_pending: Set[int] = set()
        self._new_ts: Optional[Timestamp] = None
        self._read_ts: Optional[Timestamp] = None
        self._read_value: Any = None
        # ---- hedged requests (repro.sim.hedge); all dormant unless the
        # context carries a HedgeConfig ----
        self._contacted: Set[int] = set()
        self._hedge_timer: Optional[Any] = None
        self._hedge_rng: Optional[random.Random] = None
        #: operations parked after exhausting re-selection attempts
        #: (an unhealed minority partition); surfaced as stalled
        self.parked_ops = 0

    # ------------------------------------------------------------------
    # quorum geometry
    # ------------------------------------------------------------------

    @property
    def _m(self) -> int:
        return majority(len(self.ctx.all_nodes))

    def _view(self):
        """The shared :class:`~repro.sim.reconfig.MembershipView`, if any.

        ``None`` on static unweighted memberships (every context grows
        the attribute only when reconfiguration or vote weights are
        configured), which keeps the classic fixed-majority fast path
        bit-identical.
        """
        return getattr(self.ctx, "membership", None)

    def _core(self) -> Tuple[int, ...]:
        view = self._view()
        if view is not None:
            return view.core()
        demoted = getattr(self.ctx, "demoted_nodes", None)
        if not demoted:
            return core_quorum(self.ctx.all_nodes)
        # latency-aware primary selection (static count-majority mode
        # only): demoted stragglers sort behind every healthy node, so
        # the cheapest *responsive* majority is contacted first.  Any
        # majority is a legal ABD quorum, so this is purely a latency
        # policy — correctness is untouched.  With a membership view the
        # joint-quorum geometry takes precedence (see above).
        nodes = sorted(self.ctx.all_nodes, key=lambda n: (n in demoted, n))
        return tuple(nodes[: self._m])

    def _broadcast(self) -> Tuple[int, ...]:
        """Every node a re-selection re-broadcast may target."""
        view = self._view()
        if view is None:
            return self.ctx.all_nodes
        return view.broadcast()

    def _quorum_reached(self, responders) -> bool:
        """Whether ``responders`` satisfy the current quorum predicate.

        Fixed membership: any ``m`` distinct responders.  With a
        membership view: a weight majority of the committed set and,
        during a joint-mode transition, of the old set too — replies
        from non-members can never complete a phase.
        """
        view = self._view()
        if view is None:
            return len(responders) >= self._m
        return view.satisfied(responders)

    # ------------------------------------------------------------------
    # application requests
    # ------------------------------------------------------------------

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # a quorum replica is load-bearing: ejects are refused (free).
            self.ctx.complete(op)
            return
        # every operation is distributed and two-phase: block the local
        # queue until it completes (one in-flight op per port).
        self._op = op
        self._attempts = 0
        self.ctx.disable_local_queue()
        if op.kind == READ:
            self._enter_phase("read", self._core(), retry=False)
        else:
            self._enter_phase("write_ts", self._core(), retry=False)

    # ------------------------------------------------------------------
    # phase machine
    # ------------------------------------------------------------------

    def _enter_phase(self, phase: str, targets, retry: bool) -> None:
        self._phase = phase
        self._gen += 1
        self._replies = {}
        self._acks = set()
        self._contacted = set(targets)
        self._send_phase(targets, retry)
        self._arm_timer()
        self._arm_hedge_timer()

    def _send_phase(self, targets, retry: bool, hedge: bool = False) -> None:
        op = self._op
        if self._phase == "read":
            for dst in targets:
                self.ctx.send_unordered(
                    dst, MsgType.Q_RD, ParamPresence.NONE, op.op_id,
                    payload={"gen": self._gen, "retry": retry,
                             "hedge": hedge},
                    quorum=retry, hedge=hedge,
                )
        elif self._phase == "write_ts":
            for dst in targets:
                self.ctx.send_unordered(
                    dst, MsgType.Q_TS, ParamPresence.NONE, op.op_id,
                    payload={"gen": self._gen, "retry": retry,
                             "hedge": hedge},
                    quorum=retry, hedge=hedge,
                )
        elif self._phase == "write_upd":
            for dst in targets:
                self.ctx.send_unordered(
                    dst, MsgType.Q_UPD, ParamPresence.WRITE, op.op_id,
                    payload={"gen": self._gen, "ts": self._new_ts,
                             "value": op.params, "retry": retry,
                             "hedge": hedge},
                    quorum=retry, hedge=hedge,
                )
        elif self._phase == "repair":
            for dst in targets:
                self.ctx.send_unordered(
                    dst, MsgType.Q_WB, ParamPresence.WRITE, op.op_id,
                    payload={"gen": self._gen, "ts": self._read_ts,
                             "value": self._read_value, "retry": retry,
                             "hedge": hedge},
                    quorum=retry, hedge=hedge,
                )

    def _arm_timer(self) -> None:
        delay = backoff_delay(QUORUM_TIMEOUT, QUORUM_BACKOFF, self._attempts,
                              cap=QUORUM_DELAY_CAP)
        gen = self._gen
        self._timer = self.ctx.schedule(delay,
                                        lambda: self._on_timeout(gen))

    def _cancel_timer(self) -> None:
        timer = self._timer
        if timer is not None:
            timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------
    # hedged requests (repro.sim.hedge)
    # ------------------------------------------------------------------

    def _hedge_config(self):
        """The :class:`~repro.sim.hedge.HedgeConfig`, if one is attached."""
        return getattr(self.ctx, "hedge", None)

    def _arm_hedge_timer(self) -> None:
        self._cancel_hedge_timer()
        cfg = self._hedge_config()
        if cfg is None or self._phase == "repair":
            # repair targets *specific* stale members — no backup can
            # stand in for them, so there is nothing to hedge toward.
            return
        gen = self._gen
        self._hedge_timer = self.ctx.schedule(
            cfg.budget, lambda: self._on_hedge_timeout(gen)
        )

    def _cancel_hedge_timer(self) -> None:
        timer = self._hedge_timer
        if timer is not None:
            timer.cancel()
            self._hedge_timer = None

    def _on_hedge_timeout(self, gen: int) -> None:
        self._hedge_timer = None
        if self._op is None or gen != self._gen:
            return  # the phase moved on; stale timer
        cfg = self._hedge_config()
        responded = (self._acks if self._phase == "write_upd"
                     else self._replies)
        legs = self._hedge_candidates(responded)[: cfg.max_legs]
        if not legs:
            return
        self._contacted.update(legs)
        self.ctx.record_hedge_launch(len(legs))
        self._send_phase(legs, retry=False, hedge=True)

    def _hedge_candidates(self, responded) -> List[int]:
        """Backup replicas a hedge leg may target, best first.

        Un-contacted, un-responded, non-self nodes of the broadcast set;
        seeded shuffle for tie-breaking, then a stable partition that
        puts detector-demoted stragglers last — hedging exists to route
        *around* them.
        """
        if self._hedge_rng is None:
            cfg = self._hedge_config()
            obj = getattr(self.ctx, "obj", 0)
            self._hedge_rng = random.Random(
                cfg.seed * 1000003 + self.ctx.node_id * 1009 + obj
            )
        pool = [n for n in self._broadcast()
                if n not in self._contacted and n not in responded
                and n != self.ctx.node_id]
        self._hedge_rng.shuffle(pool)
        demoted = getattr(self.ctx, "demoted_nodes", None) or set()
        pool.sort(key=lambda n: n in demoted)
        return pool

    def _on_timeout(self, gen: int) -> None:
        if self._op is None or gen != self._gen:
            return  # the phase moved on; stale timer
        self._attempts += 1
        if self._attempts >= QUORUM_MAX_ATTEMPTS:
            # unhealed minority partition: park (stalled, never lost).
            self.parked_ops += 1
            self._timer = None
            return
        self.ctx.record_quorum_reselection()
        if self._phase == "repair":
            # a stale member is unreachable: restart the read from phase
            # 1 — re-selection will find a fresh majority to read (and,
            # if needed, repair through).
            self._enter_phase("read", self._broadcast(), retry=True)
            return
        responded = (self._acks if self._phase == "write_upd"
                     else self._replies)
        targets = [n for n in self._broadcast() if n not in responded]
        self._contacted.update(targets)
        self._send_phase(targets, retry=True)
        self._arm_timer()

    def _finish(self, value: Any = None) -> None:
        self._cancel_timer()
        self._cancel_hedge_timer()
        self._gen += 1  # stragglers from the finished op are filtered
        op, self._op = self._op, None
        self._phase = None
        if self._hedge_config() is not None:
            # hedge-loser cancellation: the op is decided, so pending
            # datagram retries toward slow losers are pure waste — void
            # them (late replies are already gen-filtered above).
            self.ctx.cancel_unordered(op.op_id)
        self.ctx.enable_local_queue()
        self.ctx.complete(op, value)

    def restart_inflight(self) -> bool:
        """Re-drive the in-flight operation from its first phase.

        Called by the reconfiguration manager at membership boundaries
        (joint-mode entry, epoch commit, abort): the quorum predicate
        just changed, so the operation restarts its phase machine under
        a fresh generation against the current quorum geometry.  Replies
        to the superseded generation are filtered (and the old epoch's
        frames are voided at commit), so the operation still completes
        exactly once.  A parked operation is revived — the membership
        change may be exactly what unblocks it.  Returns whether an
        operation was in flight.
        """
        if self._op is None:
            return False
        self._cancel_timer()
        self._attempts = 0
        if self._op.kind == READ:
            self._enter_phase("read", self._core(), retry=False)
        else:
            self._enter_phase("write_ts", self._core(), retry=False)
        return True

    # ------------------------------------------------------------------
    # replica duties (handle queries from any initiator, incl. self)
    # ------------------------------------------------------------------

    def _install(self, ts: Timestamp, value: Any) -> None:
        if tuple(ts) > self.ts:
            self.ts = tuple(ts)
            self.value = value

    def absorb_snapshot(self, ts: Timestamp, value: Any) -> bool:
        """Install a state-transfer copy (monotone, exactly like ``Q-UPD``).

        Used by the reconfiguration manager to catch up joining replicas
        and to establish the authoritative state at the new quorum before
        an epoch commits.  Returns whether the copy was newer than the
        local one.
        """
        if tuple(ts) <= self.ts:
            return False
        self._install(ts, value)
        return True

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        payload = msg.payload
        if mtype is MsgType.Q_RD:
            self.ctx.send_unordered(
                msg.src, MsgType.Q_RR, ParamPresence.USER_INFO, msg.op_id,
                payload={"gen": payload["gen"], "ts": self.ts,
                         "value": self.value},
                initiator=msg.token.operation_initiator,
                quorum=payload["retry"],
                hedge=payload.get("hedge", False),
            )
        elif mtype is MsgType.Q_TS:
            self.ctx.send_unordered(
                msg.src, MsgType.Q_TR, ParamPresence.NONE, msg.op_id,
                payload={"gen": payload["gen"], "ts": self.ts},
                initiator=msg.token.operation_initiator,
                quorum=payload["retry"],
                hedge=payload.get("hedge", False),
            )
        elif mtype in (MsgType.Q_UPD, MsgType.Q_WB):
            self._install(payload["ts"], payload["value"])
            self.ctx.send_unordered(
                msg.src, MsgType.Q_ACK, ParamPresence.NONE, msg.op_id,
                payload={"gen": payload["gen"]},
                initiator=msg.token.operation_initiator,
                quorum=payload["retry"],
                hedge=payload.get("hedge", False),
            )
        elif mtype is MsgType.Q_RR:
            self._on_read_reply(msg)
        elif mtype is MsgType.Q_TR:
            self._on_ts_reply(msg)
        elif mtype is MsgType.Q_ACK:
            self._on_ack(msg)
        else:  # pragma: no cover - specification error
            raise ValueError(f"sc_abd: unexpected {mtype}")

    # ------------------------------------------------------------------
    # initiator duties (collect replies, drive phases)
    # ------------------------------------------------------------------

    def _live(self, phase: str, payload) -> bool:
        return (self._op is not None and self._phase == phase
                and payload["gen"] == self._gen)

    def _on_read_reply(self, msg: Message) -> None:
        if not self._live("read", msg.payload):
            return
        self._replies[msg.src] = (tuple(msg.payload["ts"]),
                                  msg.payload["value"])
        if not self._quorum_reached(self._replies):
            return
        # phase 1 complete: the max timestamp is the read's value.
        max_ts, value = max(self._replies.values())
        self._read_ts, self._read_value = max_ts, value
        # the reader itself may install for free (it is as entitled to
        # hold (ts, value) as any replica).
        self._install(max_ts, value)
        stale = {node for node, (ts, _v) in self._replies.items()
                 if ts < max_ts and node != self.ctx.node_id}
        if not stale:
            # the whole counted quorum holds max_ts: linearizable as-is.
            self._finish(value)
            return
        # read-repair: write max back to the stale members before
        # completing, so no later read can travel back in time.
        self._repair_pending = stale
        self._enter_phase("repair", sorted(stale), retry=False)

    def _on_ts_reply(self, msg: Message) -> None:
        if not self._live("write_ts", msg.payload):
            return
        self._replies[msg.src] = tuple(msg.payload["ts"])
        if not self._quorum_reached(self._replies):
            return
        # phase 1 complete: mint a unique, dominating timestamp.
        max_num = max(num for num, _node in self._replies.values())
        self._new_ts = (max_num + 1, self.ctx.node_id)
        self._enter_phase("write_upd", self._core(), retry=False)

    def _on_ack(self, msg: Message) -> None:
        if self._op is None or msg.payload["gen"] != self._gen:
            return
        if self._phase == "write_upd":
            self._acks.add(msg.src)
            if self._quorum_reached(self._acks):
                self._finish()
        elif self._phase == "repair":
            self._repair_pending.discard(msg.src)
            if not self._repair_pending:
                self._finish(self._read_value)


SPEC = ProtocolSpec(
    name="sc_abd",
    display_name="SC-ABD (majority quorum)",
    client_states=(REPLICA,),
    sequencer_states=(REPLICA,),
    invalidation_based=False,
    migrating_owner=False,
    client_factory=SCABDProcess,
    sequencer_factory=SCABDProcess,
    notes=(
        "Extension (not in the paper): two-phase ABD majority quorums "
        "with per-object logical timestamps and read-repair write-back; "
        "no sequencer, so liveness needs only a majority — minority "
        "partitions and sequencer-class crashes do not stall it.  "
        "Fault-free costs: read q(S+2), write q(P+4) with q = m-1 "
        "inside the core quorum, m outside."
    ),
    quorum_based=True,
)
