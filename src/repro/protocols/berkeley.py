"""Distributed Berkeley protocol (paper appendix, Figure 12).

"The role of the sequencer can be taken by different nodes during protocol
execution.  The copy at the sequencer can be in one of two states: DIRTY or
SHARED-DIRTY.  The copy at the client can be in one of two states: VALID or
INVALID."

In Berkeley the *owner* (the node holding the sequencer role for the object)
migrates to every writer, which is why under read disturbance the activity
center becomes the owner and Berkeley beats the other invalidation protocols
(paper Section 5.1).  Reconstruction (DESIGN.md):

* every node tracks the *believed owner*; ownership changes ride on the
  invalidation broadcasts every ownership transfer already emits, so the
  tracking is free.  A request reaching a former owner is forwarded to its
  believed owner (cost 1 per hop) — this only happens under concurrent
  racing requests, one source of the paper's analysis-vs-simulation
  discrepancy;
* non-owner write: ``O-PER`` (1) to the owner; the owner answers
  ``O-GNT`` — with the user information (``S + 1``) iff its validity
  directory shows the writer's copy stale, else a bare token (1) — sends
  ``W-INV`` announcing the new owner to the other ``N - 1`` nodes, and
  invalidates itself.  The writer applies its parameters locally and
  becomes the ``DIRTY`` owner.  Cost ``N + 1`` from a valid copy,
  ``S + N + 1`` from an invalid one;
* owner write: free when ``DIRTY``; when ``SHARED-DIRTY`` it invalidates
  the other ``N`` nodes (cost ``N``) and returns to ``DIRTY``;
* non-owner read miss: ``R-PER`` (1), ``R-GNT + ui`` (``S + 1``) from the
  owner, which downgrades itself to ``SHARED-DIRTY``; cost ``S + 2``;
* the validity directory transfers with ownership: a new owner starts with
  ``{itself}`` valid (everyone else was just invalidated) and adds readers
  it grants.
"""

from __future__ import annotations

from typing import Optional, Set

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["BerkeleyProcess", "SPEC", "make_client", "make_sequencer"]

INVALID = "INVALID"
VALID = "VALID"
DIRTY = "DIRTY"
SHARED_DIRTY = "SHARED-DIRTY"

#: owner-role states
OWNER_STATES = (DIRTY, SHARED_DIRTY)


class BerkeleyProcess(ProtocolProcess):
    """Berkeley protocol process; the same class serves every node.

    The node whose copy is in an owner state (``DIRTY``/``SHARED-DIRTY``)
    holds the sequencer role.  Initially that is node ``N + 1``.
    """

    def __init__(self, ctx: ProcessContext, initial_state: str):
        super().__init__(ctx, initial_state=initial_state)
        #: where this node believes the owner is
        self.believed_owner: int = ctx.sequencer_id
        #: owner-only: nodes known to hold a valid copy (incl. the owner)
        self.valid_set: Set[int] = {ctx.node_id} if initial_state in OWNER_STATES else set()
        self._pending: Optional[Operation] = None

    # ------------------------------------------------------------------

    @property
    def is_owner(self) -> bool:
        """Whether this node currently holds the sequencer (owner) role."""
        return self.state in OWNER_STATES

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # the owner's copy is the only current one: pinned (real
            # systems pin the backing copy).  A VALID copy announces its
            # departure so the owner's validity directory stays exact.
            if self.state == VALID:
                self.state = INVALID
                self.ctx.send(self.believed_owner, MsgType.EJ,
                              ParamPresence.NONE, op.op_id)
            self.ctx.complete(op)
            return
        if op.kind == READ:
            if self.is_owner or self.state == VALID:
                self.ctx.complete(op, self.value)
            else:
                self._pending = op
                self.ctx.disable_local_queue()
                self.ctx.send(
                    self.believed_owner, MsgType.R_PER, ParamPresence.NONE, op.op_id
                )
            return
        # write
        if self.state == DIRTY:
            self.value = op.params
            self.ctx.complete(op)
        elif self.state == SHARED_DIRTY:
            # invalidate every other node; become exclusive again.
            self.value = op.params
            self.state = DIRTY
            self.valid_set = {self.ctx.node_id}
            self.ctx.broadcast_except(
                [], MsgType.W_INV, ParamPresence.NONE, op.op_id,
                payload={"owner": self.ctx.node_id},
            )
            self.ctx.complete(op)
        else:
            # request ownership from the believed owner.
            self._pending = op
            self.ctx.disable_local_queue()
            self.ctx.send(
                self.believed_owner, MsgType.O_PER, ParamPresence.NONE, op.op_id
            )

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if mtype in (MsgType.R_PER, MsgType.O_PER):
            if not self.is_owner:
                # stale addressing under racing requests: forward.
                self.ctx.send(
                    self.believed_owner, mtype, ParamPresence.NONE, msg.op_id,
                    initiator=msg.token.operation_initiator,
                )
                return
            if mtype is MsgType.R_PER:
                self._serve_read(msg)
            else:
                self._transfer_ownership(msg)
        elif mtype is MsgType.R_GNT:
            self.value = msg.payload["value"]
            self.state = VALID
            self.believed_owner = msg.payload["owner"]
            op, self._pending = self._pending, None
            self.ctx.enable_local_queue()
            self.ctx.complete(op, self.value)
        elif mtype is MsgType.O_GNT:
            op, self._pending = self._pending, None
            if "value" in msg.payload:
                self.value = msg.payload["value"]
            self.value = op.params
            self.state = DIRTY
            self.believed_owner = self.ctx.node_id
            self.valid_set = set(msg.payload["valid_set"]) | {self.ctx.node_id}
            self.ctx.enable_local_queue()
            self.ctx.complete(op)
        elif mtype is MsgType.W_INV:
            if not self.is_owner:
                self.state = INVALID
            self.believed_owner = msg.payload["owner"]
        elif mtype is MsgType.EJ:
            if self.is_owner:
                self.valid_set.discard(msg.token.operation_initiator)
            # at a former owner the entry no longer exists: nothing to do.
        else:  # pragma: no cover - specification error
            raise ValueError(f"berkeley: unexpected {mtype}")

    # ------------------------------------------------------------------

    def _serve_read(self, msg: Message) -> None:
        """Owner serves a read miss and downgrades to SHARED-DIRTY.

        The reply goes to the operation initiator (a forwarded request's
        ``src`` is the forwarder, not the requester).
        """
        reader = msg.token.operation_initiator
        self.state = SHARED_DIRTY
        self.valid_set.add(reader)
        self.ctx.send(
            reader,
            MsgType.R_GNT,
            ParamPresence.USER_INFO,
            msg.op_id,
            payload={"value": self.value, "owner": self.ctx.node_id},
            initiator=reader,
        )

    def _transfer_ownership(self, msg: Message) -> None:
        """Owner hands the object to a writer and invalidates itself."""
        writer = msg.token.operation_initiator
        needs_ui = writer not in self.valid_set
        payload = {"valid_set": []}
        if needs_ui:
            payload["value"] = self.value
        self.ctx.send(
            writer,
            MsgType.O_GNT,
            ParamPresence.USER_INFO if needs_ui else ParamPresence.NONE,
            msg.op_id,
            payload=payload,
            initiator=msg.token.operation_initiator,
        )
        # announce the new owner to the other N - 1 nodes and invalidate
        # them; invalidate ourselves as well (ownership moved away).
        self.ctx.broadcast_except(
            [writer], MsgType.W_INV, ParamPresence.NONE, msg.op_id,
            payload={"owner": writer}, initiator=msg.token.operation_initiator,
        )
        self.state = INVALID
        self.valid_set = set()
        self.believed_owner = writer


def make_client(ctx: ProcessContext) -> BerkeleyProcess:
    """Client factory: copies start INVALID."""
    return BerkeleyProcess(ctx, INVALID)


def make_sequencer(ctx: ProcessContext) -> BerkeleyProcess:
    """Initial-owner factory: node ``N + 1`` starts as the DIRTY owner."""
    return BerkeleyProcess(ctx, DIRTY)


SPEC = ProtocolSpec(
    name="berkeley",
    display_name="Berkeley",
    client_states=(INVALID, VALID),
    sequencer_states=(DIRTY, SHARED_DIRTY),
    invalidation_based=True,
    migrating_owner=True,
    client_factory=make_client,
    sequencer_factory=make_sequencer,
    notes=(
        "Reconstructed: ownership migrates to every writer (N+1 / S+N+1); "
        "owner writes cost 0 (DIRTY) or N (SHARED-DIRTY); read misses S+2."
    ),
)
