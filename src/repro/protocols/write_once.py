"""Distributed Write-Once protocol (paper appendix, Figure 10).

Client copy states: ``INVALID`` (start), ``VALID``, ``RESERVED``, ``DIRTY``;
sequencer copy states: ``VALID`` (start), ``INVALID``.  The appendix fixes
the key property: "The write operation of kth client changes the state of
the sequencer's copy from VALID to INVALID only if kth client's copy is in
RESERVED or INVALID state" — i.e. the *first* write (from ``VALID``) is
written through and the sequencer stays current; later writes go local.

Reconstructed choreography (DESIGN.md).  Two bus mechanisms have no free
equivalent in a star topology and are replaced by explicit tokens:

* the bus's *snooped read* that downgrades a ``RESERVED`` copy to ``VALID``
  becomes a ``DGR`` token (cost 1) the sequencer sends to the reserved
  client whenever it serves a read while one exists;
* the bus's silent ``RESERVED -> DIRTY`` upgrade becomes a blocking
  two-token handshake ``D-NOT``/``D-GNT`` (cost 2) so the upgrade is
  serialized; if the reserved status was lost in flight the sequencer
  answers ``D-NACK`` and the writer re-executes the write from its actual
  state (no write is ever lost).

Cost table:

* write on ``VALID`` — write-through, ``P + N``, copy -> ``RESERVED``;
* write on ``RESERVED`` — ``D-NOT`` + ``D-GNT``, cost 2, copy -> ``DIRTY``,
  sequencer -> ``INVALID``;
* write on ``DIRTY`` — free;
* write on ``INVALID`` — read-with-intent-to-modify, ``S + N + 1`` from a
  VALID sequencer, ``2S + N + 3`` via recall;
* read on ``INVALID`` — ``S + 2`` from a VALID sequencer (+1 ``DGR`` when a
  reserved copy exists), ``2S + 4`` via recall (the dirty owner supplies
  the copy, writes back and stays ``VALID``).
"""

from __future__ import annotations

from typing import Optional

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    HoldingMixin,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["WriteOnceClient", "WriteOnceSequencer", "SPEC"]

INVALID = "INVALID"
VALID = "VALID"
RESERVED = "RESERVED"
DIRTY = "DIRTY"


class WriteOnceClient(ProtocolProcess):
    """Client-side Write-Once process."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=INVALID)
        self._pending: Optional[Operation] = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # DIRTY: flush home (WB + ui).  RESERVED: the content is
            # already home (written through), but the sequencer's
            # reserved-client entry must clear (one token).  VALID: silent.
            if self.state == DIRTY:
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.WB,
                    ParamPresence.USER_INFO, op.op_id,
                    payload={"value": self.value},
                )
            elif self.state == RESERVED:
                self.ctx.send(self.ctx.sequencer_id, MsgType.EJ,
                              ParamPresence.NONE, op.op_id)
            self.state = INVALID
            self.ctx.complete(op)
            return
        if op.kind == READ:
            if self.state in (VALID, RESERVED, DIRTY):
                self.ctx.complete(op, self.value)
            else:
                self._pending = op
                self.ctx.disable_local_queue()
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.R_PER, ParamPresence.NONE, op.op_id
                )
            return
        # write
        if self.state == DIRTY:
            self.value = op.params
            self.ctx.complete(op)
        elif self.state == RESERVED:
            # serialized local upgrade: ask before going DIRTY.
            self._pending = op
            self.ctx.disable_local_queue()
            self.ctx.send(
                self.ctx.sequencer_id, MsgType.D_NOT, ParamPresence.NONE, op.op_id
            )
        elif self.state == VALID:
            # first write: write through, keep the copy in RESERVED.
            self.value = op.params
            self.state = RESERVED
            self.ctx.send(
                self.ctx.sequencer_id,
                MsgType.W_PER,
                ParamPresence.WRITE,
                op.op_id,
                payload={"value": op.params},
            )
            self.ctx.complete(op)
        else:
            # INVALID: read-with-intent-to-modify.
            self._pending = op
            self.ctx.disable_local_queue()
            self.ctx.send(
                self.ctx.sequencer_id, MsgType.O_PER, ParamPresence.NONE, op.op_id
            )

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if mtype is MsgType.R_GNT:
            self.value = msg.payload["value"]
            self.state = VALID
            op, self._pending = self._pending, None
            self.ctx.enable_local_queue()
            self.ctx.complete(op, self.value)
        elif mtype is MsgType.O_GNT:
            op, self._pending = self._pending, None
            self.value = msg.payload["value"]
            self.value = op.params
            self.state = DIRTY
            self.ctx.enable_local_queue()
            self.ctx.complete(op)
        elif mtype is MsgType.D_GNT:
            # upgrade granted: apply the write locally.
            op, self._pending = self._pending, None
            self.value = op.params
            self.state = DIRTY
            self.ctx.enable_local_queue()
            self.ctx.complete(op)
        elif mtype is MsgType.D_NACK:
            # reserved status lost in flight (an invalidation or downgrade
            # is ahead of this NACK on the FIFO channel, so our state is
            # already VALID or INVALID): redo the write from the real state.
            op, self._pending = self._pending, None
            self.ctx.enable_local_queue()
            self.on_request(op)
        elif mtype is MsgType.DGR:
            # another node read the object: a write is no longer "once".
            if self.state == RESERVED:
                self.state = VALID
        elif mtype is MsgType.RCL:
            if self.state != DIRTY:
                return  # stale recall; a voluntary write-back beat it
            # supply the copy; stay VALID (memory is updated by the WB).
            self.state = VALID
            self.ctx.send(
                self.ctx.sequencer_id,
                MsgType.WB,
                ParamPresence.USER_INFO,
                msg.op_id,
                payload={"value": self.value},
            )
        elif mtype is MsgType.W_INV:
            self.state = INVALID
        else:  # pragma: no cover - specification error
            raise ValueError(f"write_once client: unexpected {mtype}")


class WriteOnceSequencer(HoldingMixin, ProtocolProcess):
    """Sequencer-side Write-Once process with owner/reserved directory."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=VALID)
        self._init_holding()
        self.owner: Optional[int] = None
        #: the client whose last write-through made it RESERVED, if still so
        self.reserved_client: Optional[int] = None
        self._recall_for: Optional[object] = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            self.ctx.complete(op)  # the home copy is pinned
            return
        if self._busy:
            self._hold(op)
            return
        if op.kind == READ:
            if self.state == VALID:
                self._downgrade_reserved(op.op_id)
                self.ctx.complete(op, self.value)
            else:
                self._start_recall(op, op.op_id)
        else:
            if self.state == VALID:
                self._apply_own_write(op)
            else:
                self._start_recall(op, op.op_id)

    def _apply_own_write(self, op: Operation) -> None:
        self.value = op.params
        self.reserved_client = None
        self.ctx.broadcast_except([], MsgType.W_INV, ParamPresence.NONE, op.op_id)
        self.ctx.complete(op)

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if self._busy and mtype is not MsgType.WB:
            self._hold(msg)
            return
        if mtype is MsgType.R_PER:
            if self.state == VALID:
                self._grant_read(msg.src, msg.op_id, msg.token.operation_initiator)
            else:
                self._start_recall(msg, msg.op_id)
        elif mtype is MsgType.O_PER:
            if self.state == VALID:
                self._grant_ownership(msg.src, msg.op_id, msg.token.operation_initiator)
            else:
                self._start_recall(msg, msg.op_id)
        elif mtype is MsgType.W_PER:
            if self.state == VALID:
                # write-through from a VALID client: apply, invalidate others.
                self.value = msg.payload["value"]
                self.reserved_client = msg.src
                self.ctx.broadcast_except(
                    [msg.src], MsgType.W_INV, ParamPresence.NONE, msg.op_id,
                    initiator=msg.token.operation_initiator,
                )
            else:
                # the writer was invalidated in flight; recall the dirty
                # owner first, then apply the write-through on top.
                self._start_recall(msg, msg.op_id)
        elif mtype is MsgType.D_NOT:
            if msg.src == self.reserved_client and self.state == VALID:
                self.state = INVALID
                self.owner = msg.src
                self.reserved_client = None
                self.ctx.send(
                    msg.src, MsgType.D_GNT, ParamPresence.NONE, msg.op_id,
                    initiator=msg.token.operation_initiator,
                )
            else:
                # overtaken by another serialized operation.
                self.ctx.send(
                    msg.src, MsgType.D_NACK, ParamPresence.NONE, msg.op_id,
                    initiator=msg.token.operation_initiator,
                )
        elif mtype is MsgType.EJ:
            if self.reserved_client == msg.src:
                self.reserved_client = None
        elif mtype is MsgType.WB:
            if self.owner != msg.src:
                return  # stale write-back
            self.value = msg.payload["value"]
            self.state = VALID
            self.owner = None
            self._busy = False
            trigger, self._recall_for = self._recall_for, None
            if trigger is None:
                self._release_held()
                return
            if isinstance(trigger, Operation):
                if trigger.kind == READ:
                    self.ctx.complete(trigger, self.value)
                else:
                    self._apply_own_write(trigger)
            elif trigger.token.type is MsgType.R_PER:
                self._grant_read(trigger.src, trigger.op_id,
                                 trigger.token.operation_initiator)
            elif trigger.token.type is MsgType.W_PER:
                self.value = trigger.payload["value"]
                self.reserved_client = trigger.src
                self.ctx.broadcast_except(
                    [trigger.src], MsgType.W_INV, ParamPresence.NONE,
                    trigger.op_id, initiator=trigger.token.operation_initiator,
                )
            else:
                self._grant_ownership(trigger.src, trigger.op_id,
                                      trigger.token.operation_initiator)
            self._release_held()
        else:  # pragma: no cover - specification error
            raise ValueError(f"write_once sequencer: unexpected {mtype}")

    def _downgrade_reserved(self, op_id: int) -> None:
        """Replace the bus's snooped-read downgrade with a DGR token."""
        if self.reserved_client is not None:
            self.ctx.send(
                self.reserved_client, MsgType.DGR, ParamPresence.NONE, op_id
            )
            self.reserved_client = None

    def _grant_read(self, reader: int, op_id: int, initiator: int) -> None:
        self._downgrade_reserved(op_id)
        self.ctx.send(
            reader, MsgType.R_GNT, ParamPresence.USER_INFO, op_id,
            payload={"value": self.value}, initiator=initiator,
        )

    def _grant_ownership(self, writer: int, op_id: int, initiator: int) -> None:
        self.ctx.send(
            writer, MsgType.O_GNT, ParamPresence.USER_INFO, op_id,
            payload={"value": self.value}, initiator=initiator,
        )
        self.ctx.broadcast_except(
            [writer], MsgType.W_INV, ParamPresence.NONE, op_id, initiator=initiator
        )
        self.state = INVALID
        self.owner = writer
        self.reserved_client = None

    def _start_recall(self, trigger, op_id: int) -> None:
        self._busy = True
        self._recall_for = trigger
        self.ctx.send(self.owner, MsgType.RCL, ParamPresence.NONE, op_id)


SPEC = ProtocolSpec(
    name="write_once",
    display_name="Write-Once",
    client_states=(INVALID, VALID, RESERVED, DIRTY),
    sequencer_states=(VALID, INVALID),
    invalidation_based=True,
    migrating_owner=False,
    client_factory=WriteOnceClient,
    sequencer_factory=WriteOnceSequencer,
    notes=(
        "Reconstructed: first write is written through (P+N, -> RESERVED); "
        "second write is a 2-token serialized upgrade; DGR token replaces "
        "the bus's snooped-read downgrade; misses per DESIGN.md."
    ),
)
