"""Distributed Dragon protocol (paper appendix, Figure 11).

"The role of the sequencer can be taken by different nodes during protocol
execution.  The sequencer broadcasts the write operation parameters to all
clients.  The copy at the sequencer has only one state: SHARED-DIRTY.  The
copy at the client has also only one state: SHARED-CLEAN."

Dragon is a pure *update* protocol: every copy is permanently valid, reads
are always local and free.  Under full replication the writer knows every
replica holder, so the distributed adaptation broadcasts the write
parameters **directly** from the writer to the other ``N`` nodes — cost
``N * (P + 1)`` per write, the paper's ideal-workload formula
``acc = p * N * (P + 1)`` — and the writer takes over the ``SHARED-DIRTY``
(sequencer) role, announcing it inside the update messages.

Without a fixed serialization point, updates from *concurrent* writers can
arrive in different orders at different nodes; the adaptation restores
convergence with a last-writer-wins tag ``(issue time, writer id)`` carried
by every update: a replica applies an update only when its tag exceeds the
replica's current tag, so all copies converge to the globally maximal write
and exactly one node ends in ``SHARED-DIRTY``.  (The analytic model is
unaffected: its trials are atomic.  This ordering freedom is the Dragon
entry of DESIGN.md's concurrency notes.)
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["DragonProcess", "SPEC", "make_client", "make_sequencer"]

SHARED_CLEAN = "SHARED-CLEAN"
SHARED_DIRTY = "SHARED-DIRTY"
#: Section 6 extension: an ejected replica (not a paper Dragon state; the
#: paper assumes permanent full replication)
INVALID = "INVALID"


class DragonProcess(ProtocolProcess):
    """Dragon protocol process; the same class serves every node."""

    def __init__(self, ctx: ProcessContext, initial_state: str):
        super().__init__(ctx, initial_state=initial_state, initial_value=0)
        #: last-writer-wins tag (issue time, writer sequence, writer id)
        self.tag: Tuple[float, int, int] = (0.0, 0, 0)
        #: where this node believes the SHARED-DIRTY owner is
        self.believed_owner: int = ctx.sequencer_id
        #: monotonically increasing local write counter (tag component)
        self._write_seq = 0
        #: operation blocked on a re-fetch after an eject, if any
        self._pending: Optional[Operation] = None

    @property
    def is_owner(self) -> bool:
        """Whether this node currently holds the SHARED-DIRTY role."""
        return self.state == SHARED_DIRTY

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # the SHARED-DIRTY copy is the object's backing store: pinned.
            if self.state == SHARED_CLEAN:
                self.state = INVALID
            self.ctx.complete(op)
            return
        if self.state == INVALID:
            # ejected replica: re-fetch from the owner first (S + 2); a
            # write then proceeds with its usual broadcast.
            self._pending = op
            self.ctx.disable_local_queue()
            self.ctx.send(self.believed_owner, MsgType.R_PER,
                          ParamPresence.NONE, op.op_id)
            return
        if op.kind == READ:
            # every resident Dragon copy is valid.
            self.ctx.complete(op, self.value)
            return
        self._perform_write(op)

    def _perform_write(self, op: Operation) -> None:
        self._write_seq += 1
        tag = (op.issue_time, self._write_seq, self.ctx.node_id)
        if tag > self.tag:
            self.value = op.params
            self.tag = tag
        self.state = SHARED_DIRTY
        self.believed_owner = self.ctx.node_id
        # broadcast the parameters to the other N nodes (cost N*(P+1)).
        self.ctx.broadcast_except(
            [], MsgType.UPD, ParamPresence.WRITE, op.op_id,
            payload={"value": op.params, "owner": self.ctx.node_id,
                     "tag": tag},
        )
        self.ctx.complete(op)

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if mtype is MsgType.UPD:
            if self.state == INVALID:
                # no resident copy: partial updates cannot apply, but the
                # ownership announcement keeps the believed owner fresh
                # (otherwise a later re-fetch pays forwarding hops).
                tag = tuple(msg.payload["tag"])
                if tag > self.tag:
                    self.tag = tag
                    self.believed_owner = msg.payload["owner"]
                return
            tag = tuple(msg.payload["tag"])
            if tag > self.tag:
                self.value = msg.payload["value"]
                self.tag = tag
                self.believed_owner = msg.payload["owner"]
                if self.is_owner:
                    # a newer write exists: the SHARED-DIRTY role moved on.
                    self.state = SHARED_CLEAN
            # older updates are superseded; nothing to apply.
        elif mtype is MsgType.R_PER:
            if not self.is_owner:
                # stale addressing: forward along the ownership chain.
                self.ctx.send(self.believed_owner, mtype,
                              ParamPresence.NONE, msg.op_id,
                              initiator=msg.token.operation_initiator)
                return
            reader = msg.token.operation_initiator
            self.ctx.send(
                reader, MsgType.R_GNT, ParamPresence.USER_INFO, msg.op_id,
                payload={"value": self.value, "owner": self.ctx.node_id,
                         "tag": self.tag},
                initiator=reader,
            )
        elif mtype is MsgType.R_GNT:
            self.value = msg.payload["value"]
            self.tag = tuple(msg.payload["tag"])
            self.believed_owner = msg.payload["owner"]
            self.state = SHARED_CLEAN
            op, self._pending = self._pending, None
            self.ctx.enable_local_queue()
            if op.kind == READ:
                self.ctx.complete(op, self.value)
            else:
                self._perform_write(op)
        else:  # pragma: no cover - specification error
            raise ValueError(f"dragon: unexpected {mtype}")


def make_client(ctx: ProcessContext) -> DragonProcess:
    """Client factory: copies start SHARED-CLEAN (full replication)."""
    return DragonProcess(ctx, SHARED_CLEAN)


def make_sequencer(ctx: ProcessContext) -> DragonProcess:
    """Initial-owner factory: node ``N + 1`` starts SHARED-DIRTY."""
    return DragonProcess(ctx, SHARED_DIRTY)


SPEC = ProtocolSpec(
    name="dragon",
    display_name="Dragon",
    client_states=(SHARED_CLEAN,),
    sequencer_states=(SHARED_DIRTY,),
    invalidation_based=False,
    migrating_owner=True,
    client_factory=make_client,
    sequencer_factory=make_sequencer,
    notes=(
        "Reconstructed update protocol: the writer broadcasts parameters "
        "directly to the other N nodes (cost N*(P+1)) and takes the "
        "SHARED-DIRTY role; concurrent writes converge via "
        "last-writer-wins tags."
    ),
)
