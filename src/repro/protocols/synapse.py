"""Distributed Synapse protocol (paper appendix, Figures 7-8).

Client copy states: ``INVALID`` (start), ``VALID``, ``DIRTY``; sequencer copy
states: ``VALID`` (start), ``INVALID`` (a client holds the only up-to-date
copy).  Reconstruction notes (DESIGN.md):

* Writes that do not hit a ``DIRTY`` copy acquire exclusive ownership **with
  a data transfer** — bus Synapse treats write hits like misses — at cost
  ``S + N + 1``: ``O-PER`` (1), ``O-GNT + ui`` (``S + 1``), ``W-INV`` to the
  other ``N - 1`` clients.  The sequencer's copy becomes ``INVALID`` and it
  records the new owner.
* A request that finds the sequencer ``INVALID`` triggers a recall: ``RCL``
  (1) to the dirty owner, which writes back (``WB + ui``, ``S + 1``) and
  **self-invalidates** (the Synapse signature), after which the sequencer —
  faithful to the bus protocol's "memory write-back then retry" — sends a
  ``RETRY`` token (1) and the requester re-issues its request (1).  A
  remote-dirty read therefore costs ``2S + 6`` and a remote-dirty write
  ``2S + N + 5``.
* Reads and writes on a ``DIRTY`` copy, and reads on a ``VALID`` copy, are
  free.
"""

from __future__ import annotations

from typing import Optional

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    HoldingMixin,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["SynapseClient", "SynapseSequencer", "SPEC"]

INVALID = "INVALID"
VALID = "VALID"
DIRTY = "DIRTY"


class SynapseClient(ProtocolProcess):
    """Client-side Synapse process."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=INVALID)
        self._pending: Optional[Operation] = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # a DIRTY copy is the only current one: flush it home first
            # (WB + ui, cost S+1); VALID/INVALID copies drop silently
            # (Synapse grants always carry the user information, so the
            # sequencer needs no validity directory).
            if self.state == DIRTY:
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.WB,
                    ParamPresence.USER_INFO, op.op_id,
                    payload={"value": self.value},
                )
            self.state = INVALID
            self.ctx.complete(op)
            return
        if op.kind == READ:
            if self.state in (VALID, DIRTY):
                self.ctx.complete(op, self.value)
            else:
                self._pending = op
                self.ctx.disable_local_queue()
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.R_PER, ParamPresence.NONE, op.op_id
                )
        else:
            if self.state == DIRTY:
                self.value = op.params
                self.ctx.complete(op)
            else:
                # write hit or miss: acquire exclusive ownership with data.
                self._pending = op
                self.ctx.disable_local_queue()
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.O_PER, ParamPresence.NONE, op.op_id
                )

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if mtype is MsgType.R_GNT:
            self.value = msg.payload["value"]
            self.state = VALID
            op, self._pending = self._pending, None
            self.ctx.enable_local_queue()
            self.ctx.complete(op, self.value)
        elif mtype is MsgType.O_GNT:
            op, self._pending = self._pending, None
            self.value = msg.payload["value"]
            self.value = op.params
            self.state = DIRTY
            self.ctx.enable_local_queue()
            self.ctx.complete(op)
        elif mtype is MsgType.RETRY:
            # memory write-back finished; re-issue the pending request.
            op = self._pending
            retry_type = MsgType.R_PER if op.kind == READ else MsgType.O_PER
            self.ctx.send(
                self.ctx.sequencer_id, retry_type, ParamPresence.NONE, op.op_id
            )
        elif mtype is MsgType.RCL:
            if self.state != DIRTY:
                # stale recall: a voluntary (eject) write-back already
                # satisfied the sequencer; nothing to supply.
                return
            # we hold the only valid copy: write back and self-invalidate.
            self.state = INVALID
            self.ctx.send(
                self.ctx.sequencer_id,
                MsgType.WB,
                ParamPresence.USER_INFO,
                msg.op_id,
                payload={"value": self.value},
            )
        elif mtype is MsgType.W_INV:
            self.state = INVALID
        else:  # pragma: no cover - specification error
            raise ValueError(f"synapse client: unexpected {mtype}")


class SynapseSequencer(HoldingMixin, ProtocolProcess):
    """Sequencer-side Synapse process with owner directory and recall."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=VALID)
        self._init_holding()
        self.owner: Optional[int] = None
        self._recall_for: Optional[object] = None  # Message or Operation

    # -- application requests at the sequencer node --------------------

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            self.ctx.complete(op)  # the home copy is pinned
            return
        if self._busy:
            self._hold(op)
            return
        if op.kind == READ:
            if self.state == VALID:
                self.ctx.complete(op, self.value)
            else:
                self._start_recall(op, op.op_id)
        else:
            if self.state == VALID:
                self._apply_own_write(op)
            else:
                self._start_recall(op, op.op_id)

    def _apply_own_write(self, op: Operation) -> None:
        """Sequencer write with a VALID copy: invalidate all N clients."""
        self.value = op.params
        self.ctx.broadcast_except([], MsgType.W_INV, ParamPresence.NONE, op.op_id)
        self.ctx.complete(op)

    # -- protocol messages ---------------------------------------------

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if self._busy and mtype is not MsgType.WB:
            self._hold(msg)
            return
        if mtype is MsgType.R_PER:
            if self.state == VALID:
                self.ctx.send(
                    msg.src,
                    MsgType.R_GNT,
                    ParamPresence.USER_INFO,
                    msg.op_id,
                    payload={"value": self.value},
                    initiator=msg.token.operation_initiator,
                )
            else:
                self._start_recall(msg, msg.op_id)
        elif mtype is MsgType.O_PER:
            if self.state == VALID:
                self._grant_ownership(msg.src, msg.op_id, msg.token.operation_initiator)
            else:
                self._start_recall(msg, msg.op_id)
        elif mtype is MsgType.WB:
            if self.owner != msg.src:
                # stale write-back (ownership already moved on): ignore.
                return
            # the dirty owner wrote back and self-invalidated.
            self.value = msg.payload["value"]
            self.state = VALID
            self.owner = None
            self._busy = False
            trigger, self._recall_for = self._recall_for, None
            if trigger is None:
                # voluntary write-back (owner eject): nothing pending.
                self._release_held()
                return
            if isinstance(trigger, Operation):
                # our own operation triggered the recall: finish it locally.
                if trigger.kind == READ:
                    self.ctx.complete(trigger, self.value)
                else:
                    self._apply_own_write(trigger)
            else:
                # bus-Synapse semantics: tell the requester to retry.
                self.ctx.send(
                    trigger.src, MsgType.RETRY, ParamPresence.NONE, trigger.op_id,
                    initiator=trigger.token.operation_initiator,
                )
            self._release_held()
        else:  # pragma: no cover - specification error
            raise ValueError(f"synapse sequencer: unexpected {mtype}")

    # -- helpers ---------------------------------------------------------

    def _grant_ownership(self, writer: int, op_id: int, initiator: int) -> None:
        """Ownership grant with data; invalidate the other N-1 clients."""
        self.ctx.send(
            writer,
            MsgType.O_GNT,
            ParamPresence.USER_INFO,
            op_id,
            payload={"value": self.value},
            initiator=initiator,
        )
        self.ctx.broadcast_except(
            [writer], MsgType.W_INV, ParamPresence.NONE, op_id, initiator=initiator
        )
        self.state = INVALID
        self.owner = writer

    def _start_recall(self, trigger, op_id: int) -> None:
        """Ask the dirty owner to write back; hold all other work."""
        self._busy = True
        self._recall_for = trigger
        self.ctx.send(self.owner, MsgType.RCL, ParamPresence.NONE, op_id)


SPEC = ProtocolSpec(
    name="synapse",
    display_name="Synapse",
    client_states=(INVALID, VALID, DIRTY),
    sequencer_states=(VALID, INVALID),
    invalidation_based=True,
    migrating_owner=False,
    client_factory=SynapseClient,
    sequencer_factory=SynapseSequencer,
    notes=(
        "Reconstructed: ownership writes always transfer data (S+N+1); "
        "remote-dirty requests pay write-back plus retry (2S+6 read, "
        "2S+N+5 write); recalled owners self-invalidate."
    ),
)
