"""Directory Write-Through: copyset invalidation (an extension protocol).

The paper's protocols broadcast invalidations to all ``N - 1`` other
clients because their bus-based ancestors had a broadcast medium for free.
In a message-passing system the sequencer already *knows* exactly which
clients hold valid copies (it granted every one of them), so it can
multicast invalidations to the copyset only — the classic directory-based
optimization (cf. the LimitLESS directory work the paper cites as [5]).

This protocol is Write-Through with one change: a write costs
``P + 1 + |copyset \\ {writer}|`` instead of ``P + N``.  Under the paper's
workloads the copyset is usually tiny (the activity center plus whichever
disturbers re-read since the last write), so the saving grows with
``N - a``.  It is registered as an *extension* (not one of the paper's
eight) and is used by the broadcast-vs-directory ablation benchmark.
"""

from __future__ import annotations

from typing import Set

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)
from .write_through import WriteThroughClient

__all__ = ["DirectoryWriteThroughClient", "DirectoryWriteThroughSequencer",
           "SPEC"]

INVALID = "INVALID"
VALID = "VALID"


class DirectoryWriteThroughClient(WriteThroughClient):
    """Write-Through client that announces ejects (copyset exactness)."""

    #: Warm rejoin is unsound here: the sequencer multicasts invalidations
    #: to its copyset only, and a warm-installed replica is not in the
    #: copyset, so it would never be invalidated.  Rejoin cold instead.
    WARM_REJOIN_STATE = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            if self.state == VALID:
                self.state = INVALID
                self.ctx.send(self.ctx.sequencer_id, MsgType.EJ,
                              ParamPresence.NONE, op.op_id)
            self.ctx.complete(op)
            return
        super().on_request(op)


class DirectoryWriteThroughSequencer(ProtocolProcess):
    """Write-Through sequencer with exact copyset tracking.

    The directory is exact by construction: every validation (grant) and
    every invalidation is issued by this process, and FIFO channels make
    its view authoritative at serialization time.
    """

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=VALID)
        #: clients currently holding a valid copy
        self.copyset: Set[int] = set()
        self.serialized_writes = 0

    def on_request(self, op: Operation) -> None:
        if op.kind == READ:
            self.ctx.complete(op, self.value)
        else:
            self.value = op.params
            self.serialized_writes += 1
            for dst in sorted(self.copyset):
                self.ctx.send(dst, MsgType.W_INV, ParamPresence.NONE,
                              op.op_id)
            self.copyset.clear()
            self.ctx.complete(op)

    def on_message(self, msg: Message) -> None:
        if msg.token.type is MsgType.R_PER:
            self.copyset.add(msg.src)
            self.ctx.send(
                msg.src, MsgType.R_GNT, ParamPresence.USER_INFO, msg.op_id,
                payload={"value": self.value},
                initiator=msg.token.operation_initiator,
            )
        elif msg.token.type is MsgType.W_PER:
            self.value = msg.payload["value"]
            self.serialized_writes += 1
            # multicast to the copyset only; the writer self-invalidated.
            for dst in sorted(self.copyset - {msg.src}):
                self.ctx.send(dst, MsgType.W_INV, ParamPresence.NONE,
                              msg.op_id,
                              initiator=msg.token.operation_initiator)
            self.copyset.clear()
        elif msg.token.type is MsgType.EJ:
            self.copyset.discard(msg.src)
        else:  # pragma: no cover - specification error
            raise ValueError(
                f"write_through_dir sequencer: unexpected {msg.token.type}"
            )


SPEC = ProtocolSpec(
    name="write_through_dir",
    display_name="Write-Through (directory)",
    client_states=(INVALID, VALID),
    sequencer_states=(VALID,),
    invalidation_based=True,
    migrating_owner=False,
    client_factory=DirectoryWriteThroughClient,
    sequencer_factory=DirectoryWriteThroughSequencer,
    notes=(
        "Extension: exact-copyset multicast invalidation; write cost "
        "P + 1 + |copyset \\ {writer}| instead of P + N."
    ),
)
