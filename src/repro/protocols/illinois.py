"""Distributed Illinois protocol (paper appendix; same diagrams as Synapse).

The paper: "The state transition diagram for the Illinois protocol is the
same as for the Synapse protocol.  The difference between these two
protocols is that the sequencer in the Illinois protocol updates all the
time the address of the client which has the copy in DIRTY state."

Reconstructed differences from Synapse (DESIGN.md):

* **Upgrade writes**: a write hit on a ``VALID`` copy acquires ownership
  without a data transfer — ``O-PER`` (1), ``O-GNT`` token (1), ``W-INV`` to
  the other ``N - 1`` clients — cost ``N + 1`` (Synapse pays ``S + N + 1``).
  The sequencer decides from its validity directory whether the grant must
  carry the user information, so the decision is made at the serialization
  point and is race-free.
* **Remote-dirty service is direct**: the recalled owner stays ``VALID``
  (cache-to-cache supply) and the sequencer answers the requester
  immediately after the write-back — no retry.  A remote-dirty read costs
  ``2S + 4`` and a remote-dirty write ``2S + N + 3``.
"""

from __future__ import annotations

from typing import Optional, Set

from ..machines.message import Message, MsgType, ParamPresence
from .base import (
    EJECT,
    READ,
    HoldingMixin,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)

__all__ = ["IllinoisClient", "IllinoisSequencer", "SPEC"]

INVALID = "INVALID"
VALID = "VALID"
DIRTY = "DIRTY"


class IllinoisClient(ProtocolProcess):
    """Client-side Illinois process."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=INVALID)
        self._pending: Optional[Operation] = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            # DIRTY: flush home (WB + ui).  VALID: one token keeps the
            # sequencer's validity directory exact (it decides whether
            # ownership grants need the user information).
            if self.state == DIRTY:
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.WB,
                    ParamPresence.USER_INFO, op.op_id,
                    payload={"value": self.value},
                )
            elif self.state == VALID:
                self.ctx.send(self.ctx.sequencer_id, MsgType.EJ,
                              ParamPresence.NONE, op.op_id)
            self.state = INVALID
            self.ctx.complete(op)
            return
        if op.kind == READ:
            if self.state in (VALID, DIRTY):
                self.ctx.complete(op, self.value)
            else:
                self._pending = op
                self.ctx.disable_local_queue()
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.R_PER, ParamPresence.NONE, op.op_id
                )
        else:
            if self.state == DIRTY:
                self.value = op.params
                self.ctx.complete(op)
            else:
                self._pending = op
                self.ctx.disable_local_queue()
                self.ctx.send(
                    self.ctx.sequencer_id, MsgType.O_PER, ParamPresence.NONE, op.op_id
                )

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if mtype is MsgType.R_GNT:
            self.value = msg.payload["value"]
            self.state = VALID
            op, self._pending = self._pending, None
            self.ctx.enable_local_queue()
            self.ctx.complete(op, self.value)
        elif mtype is MsgType.O_GNT:
            op, self._pending = self._pending, None
            if msg.payload and "value" in msg.payload:
                self.value = msg.payload["value"]
            self.value = op.params
            self.state = DIRTY
            self.ctx.enable_local_queue()
            self.ctx.complete(op)
        elif mtype is MsgType.RCL:
            if self.state != DIRTY:
                return  # stale recall; a voluntary write-back beat it
            # cache-to-cache supply: write back but stay VALID.
            self.state = VALID
            self.ctx.send(
                self.ctx.sequencer_id,
                MsgType.WB,
                ParamPresence.USER_INFO,
                msg.op_id,
                payload={"value": self.value},
            )
        elif mtype is MsgType.W_INV:
            self.state = INVALID
        else:  # pragma: no cover - specification error
            raise ValueError(f"illinois client: unexpected {mtype}")


class IllinoisSequencer(HoldingMixin, ProtocolProcess):
    """Sequencer-side Illinois process: owner address + validity directory."""

    def __init__(self, ctx: ProcessContext):
        super().__init__(ctx, initial_state=VALID)
        self._init_holding()
        self.owner: Optional[int] = None
        #: clients the sequencer knows hold a valid copy
        self.valid_set: Set[int] = set()
        self._recall_for: Optional[object] = None

    def on_request(self, op: Operation) -> None:
        if op.kind == EJECT:
            self.ctx.complete(op)  # the home copy is pinned
            return
        if self._busy:
            self._hold(op)
            return
        if op.kind == READ:
            if self.state == VALID:
                self.ctx.complete(op, self.value)
            else:
                self._start_recall(op, op.op_id)
        else:
            if self.state == VALID:
                self._apply_own_write(op)
            else:
                self._start_recall(op, op.op_id)

    def _apply_own_write(self, op: Operation) -> None:
        self.value = op.params
        self.valid_set.clear()
        self.ctx.broadcast_except([], MsgType.W_INV, ParamPresence.NONE, op.op_id)
        self.ctx.complete(op)

    def on_message(self, msg: Message) -> None:
        mtype = msg.token.type
        if self._busy and mtype is not MsgType.WB:
            self._hold(msg)
            return
        if mtype is MsgType.R_PER:
            if self.state == VALID:
                self._grant_read(msg.src, msg.op_id, msg.token.operation_initiator)
            else:
                self._start_recall(msg, msg.op_id)
        elif mtype is MsgType.O_PER:
            if self.state == VALID:
                self._grant_ownership(msg.src, msg.op_id, msg.token.operation_initiator)
            else:
                self._start_recall(msg, msg.op_id)
        elif mtype is MsgType.EJ:
            self.valid_set.discard(msg.src)
        elif mtype is MsgType.WB:
            if self.owner != msg.src:
                return  # stale write-back
            self.value = msg.payload["value"]
            self.state = VALID
            voluntary = self._recall_for is None
            if not voluntary:
                # the supplier stays VALID on a recall; on a voluntary
                # (eject) write-back it dropped its copy.
                self.valid_set.add(self.owner)
            self.owner = None
            self._busy = False
            trigger, self._recall_for = self._recall_for, None
            if trigger is None:
                self._release_held()
                return
            if isinstance(trigger, Operation):
                if trigger.kind == READ:
                    self.ctx.complete(trigger, self.value)
                else:
                    self._apply_own_write(trigger)
            elif trigger.token.type is MsgType.R_PER:
                # direct service — no retry (the Illinois difference).
                self._grant_read(trigger.src, trigger.op_id,
                                 trigger.token.operation_initiator)
            else:
                self._grant_ownership(trigger.src, trigger.op_id,
                                      trigger.token.operation_initiator)
            self._release_held()
        else:  # pragma: no cover - specification error
            raise ValueError(f"illinois sequencer: unexpected {mtype}")

    def _grant_read(self, reader: int, op_id: int, initiator: int) -> None:
        self.valid_set.add(reader)
        self.ctx.send(
            reader, MsgType.R_GNT, ParamPresence.USER_INFO, op_id,
            payload={"value": self.value}, initiator=initiator,
        )

    def _grant_ownership(self, writer: int, op_id: int, initiator: int) -> None:
        """Grant exclusivity; skip the data transfer for a known-valid writer."""
        needs_ui = writer not in self.valid_set
        self.ctx.send(
            writer,
            MsgType.O_GNT,
            ParamPresence.USER_INFO if needs_ui else ParamPresence.NONE,
            op_id,
            payload={"value": self.value} if needs_ui else {},
            initiator=initiator,
        )
        self.ctx.broadcast_except(
            [writer], MsgType.W_INV, ParamPresence.NONE, op_id, initiator=initiator
        )
        self.valid_set.clear()
        self.state = INVALID
        self.owner = writer

    def _start_recall(self, trigger, op_id: int) -> None:
        self._busy = True
        self._recall_for = trigger
        self.ctx.send(self.owner, MsgType.RCL, ParamPresence.NONE, op_id)


SPEC = ProtocolSpec(
    name="illinois",
    display_name="Illinois",
    client_states=(INVALID, VALID, DIRTY),
    sequencer_states=(VALID, INVALID),
    invalidation_based=True,
    migrating_owner=False,
    client_factory=IllinoisClient,
    sequencer_factory=IllinoisSequencer,
    notes=(
        "Reconstructed: data-less upgrade writes (N+1), direct remote-dirty "
        "service with the supplier staying VALID (2S+4 read, 2S+N+3 write)."
    ),
)
