"""Declarative sweep specifications.

A *sweep* is a set of independent experiment cells — each cell fixes a
protocol, a :class:`~repro.core.parameters.WorkloadParams` point, a
deviation and a :class:`~repro.sim.config.RunConfig` — evaluated by the
:class:`~repro.exp.runner.SweepRunner`.  Cells come in three kinds:

``analytic``
    evaluate :func:`repro.core.acc.analytical_acc` only (Table 6 /
    Figure 5 style grids; cheap, exact);
``sim``
    run the discrete-event simulator only (fault/reliability studies);
``compare``
    both, plus the paper's discrepancy statistic (Table 7 style grids).

Cells are value objects: fully serializable to plain-JSON payloads
(:meth:`SweepCell.to_payload` / :meth:`SweepCell.from_payload`) so worker
processes rebuild them from scratch, and content-addressable
(:meth:`SweepCell.key_dict` / :meth:`SweepCell.cell_id`) so the result
cache can recognize a cell it has already computed.

Determinism: :meth:`SweepSpec.cartesian` derives every cell's workload
seed from the spec's base seed and the cell's own coordinates via a stable
hash (:func:`derive_cell_seed`).  A cell's result therefore depends only
on its own content — never on expansion order or on which worker computes
it — which is what makes parallel sweeps bit-identical to serial ones.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence, Tuple

from ..core.parameters import Deviation, WorkloadParams, parameter_grid
from ..sim.config import RunConfig

__all__ = ["CELL_KINDS", "SweepCell", "SweepSpec", "derive_cell_seed"]

#: the three cell kinds understood by the engine
CELL_KINDS: Tuple[str, ...] = ("analytic", "sim", "compare")

_SEED_SPACE = 2**63  # keep derived seeds inside numpy's SeedSequence range


def _canonical(data) -> str:
    """Canonical JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def derive_cell_seed(base_seed: int, *parts) -> int:
    """A stable per-cell seed from the sweep seed and cell coordinates.

    The derivation hashes the canonical JSON of ``(base_seed, *parts)``,
    so it is independent of expansion order, worker assignment and Python
    hash randomization — the property that makes parallel sweeps
    bit-identical to serial ones.
    """
    digest = hashlib.sha256(
        _canonical([base_seed, *parts]).encode("ascii")
    ).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class SweepCell:
    """One independent experiment cell of a sweep.

    Args:
        protocol: registry name.
        params: the workload-parameter point.
        deviation: workload deviation.
        kind: ``"analytic"``, ``"sim"`` or ``"compare"``.
        M: number of shared objects in the simulated system (ignored by
            pure-analytic cells; the model is per-object).
        method: analytic evaluation method (``auto``/``closed_form``/
            ``markov``); ignored by pure-sim cells.
        config: the run configuration driving the simulated part.
    """

    protocol: str
    params: WorkloadParams
    deviation: Deviation = Deviation.READ
    kind: str = "compare"
    M: int = 20
    method: str = "auto"
    config: RunConfig = field(default_factory=RunConfig)

    def __post_init__(self) -> None:
        if self.kind not in CELL_KINDS:
            raise ValueError(
                f"kind must be one of {CELL_KINDS}, got {self.kind!r}"
            )
        if self.M < 1:
            raise ValueError(f"M must be >= 1, got {self.M}")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------

    @property
    def disturb(self) -> float:
        """The cell's disturbance coordinate (``sigma`` or ``xi``)."""
        if self.deviation is Deviation.WRITE:
            return self.params.xi
        return self.params.sigma

    @property
    def simulates(self) -> bool:
        return self.kind in ("sim", "compare")

    @property
    def analyzes(self) -> bool:
        return self.kind in ("analytic", "compare")

    def with_(self, **changes) -> "SweepCell":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # content addressing and transport
    # ------------------------------------------------------------------

    def key_dict(self) -> dict:
        """The canonical identity of this cell's *result*.

        Only fields that can change the outcome participate: an analytic
        cell's key ignores the run configuration and ``M`` (the model is
        per-object and deterministic), a sim cell's key ignores the
        analytic ``method``.  Hash this (plus the package version) to get
        the result-cache key.
        """
        key = {
            "protocol": self.protocol,
            "params": self.params.to_dict(),
            "deviation": self.deviation.value,
            "kind": self.kind,
        }
        if self.analyzes:
            key["method"] = self.method
        if self.simulates:
            key["M"] = self.M
            config = self.config.to_dict()
            # tracing only observes a run, it can never change the row —
            # so a traced cell shares its identity (and cache entry)
            # with the untraced one.
            config.pop("tracing", None)
            key["config"] = config
        return key

    def cell_id(self) -> str:
        """A short stable identifier (12 hex chars of the key hash)."""
        return hashlib.sha256(
            _canonical(self.key_dict()).encode("ascii")
        ).hexdigest()[:12]

    def to_payload(self) -> dict:
        """A plain-JSON dict a worker process can rebuild the cell from."""
        return {
            "protocol": self.protocol,
            "params": self.params.to_dict(),
            "deviation": self.deviation.value,
            "kind": self.kind,
            "M": self.M,
            "method": self.method,
            "config": self.config.to_dict(),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SweepCell":
        """Rebuild a cell from :meth:`to_payload` output."""
        return cls(
            protocol=payload["protocol"],
            params=WorkloadParams.from_dict(payload["params"]),
            deviation=Deviation(payload["deviation"]),
            kind=payload.get("kind", "compare"),
            M=int(payload.get("M", 20)),
            method=payload.get("method", "auto"),
            config=RunConfig.from_dict(payload["config"]),
        )


@dataclass(frozen=True)
class SweepSpec:
    """An ordered collection of :class:`SweepCell` to evaluate.

    Build one with :meth:`cartesian` (a protocol × grid product with
    feasibility filtering and derived per-cell seeds) or :meth:`explicit`
    (hand-assembled cells, e.g. a benchmark that needs historical seeds).
    """

    cells: Tuple[SweepCell, ...]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    @classmethod
    def explicit(cls, cells: Iterable[SweepCell]) -> "SweepSpec":
        """A spec from an explicit cell list (kept in the given order)."""
        return cls(cells=tuple(cells))

    @classmethod
    def cartesian(
        cls,
        protocols: Sequence[str],
        base: WorkloadParams,
        p_values: Sequence[float],
        disturb_values: Sequence[float] = (0.0,),
        deviation: Deviation = Deviation.READ,
        kind: str = "compare",
        M: int = 20,
        method: str = "auto",
        config: Optional[RunConfig] = None,
        seed: Optional[int] = 0,
    ) -> "SweepSpec":
        """Expand ``protocols × p_values × disturb_values`` into cells.

        Infeasible grid points (``p + a * disturb > 1``) are skipped,
        matching the blank cells of the paper's tables.
        ``disturb_values`` parameterizes ``sigma`` (read disturbance) or
        ``xi`` (write disturbance) and is ignored for the
        multiple-activity-centers deviation.

        Each cell's workload seed is ``derive_cell_seed(seed, protocol,
        deviation, p, disturb)`` — order-independent, so a parallel run
        is bit-identical to a serial one.  ``seed=None`` leaves every
        cell unseeded (non-reproducible; the cache is disabled for such
        cells by the runner).
        """
        config = config if config is not None else RunConfig()
        cells = []
        for protocol in protocols:
            for p, d, params in parameter_grid(
                base, p_values, disturb_values, deviation
            ):
                cell_seed = (
                    None if seed is None
                    else derive_cell_seed(seed, protocol, deviation.value,
                                          float(p), float(d))
                )
                cells.append(
                    SweepCell(
                        protocol=protocol,
                        params=params,
                        deviation=deviation,
                        kind=kind,
                        M=M,
                        method=method,
                        config=config.with_(seed=cell_seed),
                    )
                )
        return cls(cells=tuple(cells))
