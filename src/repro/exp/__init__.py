"""Parallel sweep/experiment engine (``repro.exp``).

Every headline artifact of the paper — Table 6, Table 7, the Figure 5/6
surfaces — is a parameter *grid* of independent cells.  This subsystem
evaluates such grids as first-class objects:

* :class:`~repro.exp.spec.SweepSpec` — a declarative cell collection
  (cartesian product with feasibility filtering, or an explicit list) of
  ``analytic`` / ``sim`` / ``compare`` cells;
* :class:`~repro.exp.runner.SweepRunner` — fans independent cells out
  over a ``multiprocessing`` pool; per-cell derived seeds make a parallel
  run bit-identical to a serial one;
* :class:`~repro.exp.cache.ResultCache` — a content-addressed on-disk
  cache keyed on cell config + package version, so re-running a sweep
  only computes new cells;
* streaming JSONL output plus progress reporting.

Quickstart::

    from repro import RunConfig, WorkloadParams
    from repro.exp import SweepSpec, run_sweep

    spec = SweepSpec.cartesian(
        protocols=["write_once", "write_through_v"],
        base=WorkloadParams(N=3, p=0.0, a=2, S=100, P=30),
        p_values=[0.0, 0.2, 0.4, 0.6],
        disturb_values=[0.0, 0.1, 0.2],
        config=RunConfig(ops=2000, warmup=500),
    )
    result = run_sweep(spec, workers=4, cache=".sweep-cache",
                       out_path="table7.jsonl")
    print(result.max_abs_discrepancy_pct())
"""

from .cache import CACHE_SCHEMA, CacheStats, ResultCache
from .runner import SweepResult, SweepRunner, row_line, run_cell, run_sweep
from .spec import CELL_KINDS, SweepCell, SweepSpec, derive_cell_seed

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "ResultCache",
    "SweepResult",
    "SweepRunner",
    "row_line",
    "run_cell",
    "run_sweep",
    "CELL_KINDS",
    "SweepCell",
    "SweepSpec",
    "derive_cell_seed",
]
