"""Content-addressed on-disk cache for sweep-cell results.

A cell's cache key is the SHA-256 of the canonical JSON of

* the cell's :meth:`~repro.exp.spec.SweepCell.key_dict` (only the fields
  that can change the outcome),
* the package version (results are invalidated wholesale on release —
  simulator or model changes must not serve stale rows), and
* a cache schema version (bumped when the row format changes).

Any change to a cell's configuration — an extra operation, a different
seed, a new fault plan — therefore lands on a different key, which is the
whole invalidation story: re-running a sweep only computes cells whose
keys have never been seen.

Entries are one JSON file each, sharded by key prefix
(``<root>/ab/abcdef....json``), written atomically (temp file + rename)
so a crashed run never leaves a half-written entry.  A corrupt or
unreadable entry is treated as a miss and silently recomputed.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from .spec import SweepCell, _canonical

__all__ = ["CACHE_SCHEMA", "CacheStats", "ResultCache"]

#: bump when the row format written by the runner changes incompatibly
CACHE_SCHEMA = 1


@dataclass
class CacheStats:
    """Hit/miss/store counters for one runner invocation."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when none)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """A directory of content-addressed sweep-cell results.

    Args:
        root: cache directory; created lazily on first store.
    """

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------

    @staticmethod
    def key_for(cell: SweepCell) -> str:
        """The content hash identifying ``cell``'s result."""
        from .. import __version__

        payload = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "cell": cell.key_dict(),
        }
        return hashlib.sha256(_canonical(payload).encode("ascii")).hexdigest()

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives on disk."""
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # lookup / store
    # ------------------------------------------------------------------

    def get(self, cell: SweepCell) -> Optional[dict]:
        """The cached row for ``cell``, or ``None`` on a miss.

        Unseeded cells (``config.seed is None``) are never served from
        cache — their results are not reproducible, so caching them
        would freeze one arbitrary sample forever.
        """
        if cell.simulates and cell.config.seed is None:
            self.stats.misses += 1
            return None
        path = self.path_for(self.key_for(cell))
        try:
            with open(path, "r", encoding="utf-8") as fh:
                row = json.load(fh)
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if not isinstance(row, dict):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return row

    def put(self, cell: SweepCell, row: dict) -> None:
        """Store ``row`` for ``cell`` (atomic; unseeded sim cells skipped)."""
        if cell.simulates and cell.config.seed is None:
            return
        path = self.path_for(self.key_for(cell))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(row, fh, sort_keys=True)
        os.replace(tmp, path)
        self.stats.stores += 1


def as_cache(
    cache: Union[ResultCache, str, Path, None]
) -> Optional[ResultCache]:
    """Coerce a cache argument (instance, path or ``None``)."""
    if cache is None or isinstance(cache, ResultCache):
        return cache
    return ResultCache(Path(cache))
