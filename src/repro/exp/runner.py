"""The parallel sweep engine.

:func:`run_cell` evaluates one :class:`~repro.exp.spec.SweepCell` into a
plain-JSON *row*; :class:`SweepRunner` fans the cells of a
:class:`~repro.exp.spec.SweepSpec` out over a ``multiprocessing`` worker
pool, consults the :class:`~repro.exp.cache.ResultCache` first, streams
finished rows to a JSONL file and reports progress.

Design rules that make the engine trustworthy:

* **Rows are pure functions of their cell.**  No wall-clock time, worker
  id or host state enters a row, and every cell carries its own derived
  seed — so ``workers=8`` produces byte-identical rows to ``workers=1``
  (modulo completion order), and a cached row is indistinguishable from
  a recomputed one.  Wall-clock timings ride back from workers under the
  private ``"_wall_clock_s"`` key, which the runner strips into
  :attr:`SweepResult.timings` before a row is cached, written or shown —
  the deterministic ``events_executed`` column is the in-row cost proxy.
* **Workers rebuild cells from plain-JSON payloads** (fresh
  :class:`~repro.sim.faults.FaultPlan` RNG state included), so fork vs
  spawn start methods behave identically.
* **A crashing worker cannot sink the sweep.**  When the pool breaks,
  every unfinished cell is retried once in its own single-worker pool;
  a cell that kills its pool twice is recorded as a failed row and the
  sweep completes.  With ``workers=1`` cells run in-process (fast,
  exactly reproducible) and a cell that raises is likewise recorded as
  failed.
"""

from __future__ import annotations

import json
import math
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..core.acc import analytical_acc
from ..obs.registry import MetricsRegistry
from ..sim.system import DSMSystem
from ..workloads.synthetic import SyntheticWorkload
from .cache import CacheStats, ResultCache, as_cache
from .spec import SweepCell, SweepSpec

__all__ = ["SweepResult", "SweepRunner", "row_line", "run_cell", "run_sweep"]

#: progress callback signature: (done, total, row)
ProgressFn = Callable[[int, int, dict], None]


def _finite(value: float) -> Optional[float]:
    """JSON-safe float: ``None`` replaces NaN/inf (strict-JSON friendly)."""
    value = float(value)
    return value if math.isfinite(value) else None


def run_cell(cell: SweepCell, on_system: Optional[Callable] = None) -> dict:
    """Evaluate one cell into its deterministic result row.

    The row contains only values derived from the cell's content (no
    timestamps, no host identity), so it is cacheable and identical
    however and wherever it is computed.

    Args:
        on_system: optional in-process hook called with the
            :class:`DSMSystem` after the simulation ran (even when the
            run raised) — the chaos replayer uses it to export the
            tracer of a repro run.  Never crosses a process boundary,
            so worker-pool execution ignores it.
    """
    config = cell.config
    row = {
        "id": cell.cell_id(),
        "kind": cell.kind,
        "protocol": cell.protocol,
        "deviation": cell.deviation.value,
        "p": cell.params.p,
        "disturb": cell.disturb,
        "params": cell.params.to_dict(),
        "status": "ok",
    }
    if cell.analyzes:
        row["method"] = cell.method
        row["acc_analytic"] = _finite(
            analytical_acc(cell.protocol, cell.params, cell.deviation,
                           cell.method)
        )
    if cell.simulates:
        row.update(
            M=cell.M,
            ops=config.ops,
            warmup=config.resolved_warmup,
            seed=config.seed,
            mean_gap=config.mean_gap,
            faults=(None if config.faults is None
                    else config.faults.to_dict()),
        )
        if config.partitions is not None:
            row["partitions"] = config.partitions.to_dict()
        if config.reconfig is not None:
            row["reconfig"] = config.reconfig.to_dict()
        if config.hedge is not None:
            row["hedge"] = config.hedge.to_dict()
        if config.cache is not None:
            row["cache"] = config.cache.to_dict()
        if config.quorum_weights is not None:
            row["quorum_weights"] = [
                [int(n), float(w)] for n, w in config.quorum_weights
            ]
        system = DSMSystem.from_config(
            cell.protocol, cell.params, config, M=cell.M,
            replay_plans=True,
        )
        workload = SyntheticWorkload(cell.params, cell.deviation, M=cell.M)
        try:
            result = system.run_workload(workload, config)
        finally:
            if on_system is not None:
                on_system(system)
        stats = system.metrics.reliability
        healthy = stats.delivery_failures == 0
        if healthy:
            # an abandoned message may legitimately have been an
            # invalidation, so only healthy runs must end coherent.
            system.check_coherence()
        row.update(
            acc_sim=_finite(result.acc),
            messages=result.messages,
            measured=result.measured,
            incomplete_ops=result.incomplete_ops,
            end_time=result.end_time,
            events_executed=system.scheduler.executed,
            coherent=healthy,
        )
        if system.reliability is not None:
            nan = float("nan")
            breakdown = (
                system.metrics.average_cost_breakdown(
                    skip=config.resolved_warmup)
                if result.measured > 0
                else {"protocol": nan, "reliability": nan, "quorum": nan,
                      "hedge": nan, "cache": nan, "reconfig": nan,
                      "recovery": nan, "detector": nan}
            )
            row.update(
                acc_protocol_share=_finite(breakdown["protocol"]),
                acc_reliability_share=_finite(breakdown["reliability"]),
                retransmissions=stats.retransmissions,
                acks=stats.acks,
                drops=stats.drops,
                duplicates_suppressed=stats.duplicates_suppressed,
                delivery_failures=stats.delivery_failures,
            )
            if system.spec.quorum_based:
                row.update(
                    acc_quorum_share=_finite(breakdown["quorum"]),
                    dgram_abandoned=stats.dgram_abandoned,
                )
            if (config.hedge is not None
                    or (config.faults is not None
                        and config.faults.has_slowdowns)):
                # gray-failure columns, gated on the new config surface
                # (slow windows / hedging) so every pre-existing row —
                # and the committed scenario baselines compared byte-
                # for-byte in CI — stays byte-identical.
                part = system.metrics.partition
                lat = (
                    system.metrics.latency_stats(
                        skip=config.resolved_warmup)
                    if result.measured > 0
                    else {"p50": nan, "p95": nan, "p99": nan}
                )
                row.update(
                    acc_hedge_share=_finite(breakdown["hedge"]),
                    hedges_launched=stats.hedges_launched,
                    demotions=part.demotions,
                    restorations=part.restorations,
                    latency_p50=_finite(lat["p50"]),
                    latency_p95=_finite(lat["p95"]),
                    latency_p99=_finite(lat["p99"]),
                )
            if system.reconfig is not None:
                rc = system.metrics.reconfig
                row.update(
                    acc_reconfig_share=_finite(breakdown["reconfig"]),
                    reconfig_transitions=rc.transitions,
                    reconfig_commits=rc.commits,
                    reconfig_aborts=rc.aborts,
                    reconfig_ops_redriven=rc.ops_redriven,
                    transfer_objects=rc.transfer_objects,
                    transfer_retries=rc.transfer_retries,
                    transfer_cost=_finite(rc.transfer_cost),
                    joint_time=_finite(rc.joint_time),
                    quorum_reselections=stats.quorum_reselections,
                    final_epoch=system.cluster.epoch,
                )
            if system.recovery is not None:
                rec = system.metrics.recovery
                row.update(
                    acc_recovery_share=_finite(breakdown["recovery"]),
                    failovers=rec.failovers,
                    epoch_resets=rec.epoch_resets,
                    ops_lost=rec.ops_lost,
                    ops_redriven=rec.ops_redriven,
                    resync_objects=rec.resync_objects,
                    resync_cost=_finite(rec.resync_cost),
                    quarantine_time=_finite(rec.quarantine_time),
                )
            if system.partitions is not None:
                part = system.metrics.partition
                row.update(
                    acc_detector_share=_finite(breakdown["detector"]),
                    heartbeats=part.heartbeats,
                    suspicions=part.suspicions,
                    partition_rejoins=part.rejoins,
                    stale_reads_served=part.stale_reads_served,
                    sends_absorbed=part.sends_absorbed,
                    ops_stalled=part.ops_stalled,
                    suppressed_violations=part.suppressed_violations,
                    partition_time=_finite(part.partition_time),
                )
        if config.cache is not None:
            # bounded-replica-cache columns, gated on the cache being
            # configured so cache-off rows stay byte-identical.  Not
            # nested under the reliability block: a cache needs no
            # reliable-delivery layer.
            cstats = system.metrics.cache
            cache_share = (
                system.metrics.average_cost_breakdown(
                    skip=config.resolved_warmup)["cache"]
                if result.measured > 0 else float("nan")
            )
            row.update(
                acc_cache_share=_finite(cache_share),
                cache_hits=cstats.hits,
                cache_misses=cstats.misses,
                capacity_misses=cstats.capacity_misses,
                cache_evictions=cstats.evictions,
                cache_writebacks=cstats.writebacks,
                cache_refetch_cost=_finite(cstats.refetch_cost),
                cache_cost=_finite(cstats.cost),
            )
        if config.monitor:
            row.update(
                violations=len(result.violations),
                violation_kinds=sorted(
                    {v.kind for v in result.violations}
                ),
                sc_inconclusive=system.monitor.inconclusive,
            )
    if cell.kind == "compare":
        acc_a = row["acc_analytic"]
        acc_s = row["acc_sim"]
        if acc_a is None or acc_s is None:
            row["discrepancy_pct"] = None
        elif abs(acc_a) < 1e-9:
            # the paper's blank/zero cells: zero-cost steady state; any
            # simulated residue is the bounded cold-start transient.
            row["discrepancy_pct"] = (
                0.0 if abs(acc_s) < 1e-9 else None
            )
        else:
            row["discrepancy_pct"] = 100.0 * (acc_a - acc_s) / acc_a
    return row


def _failed_row(cell: SweepCell, error: str) -> dict:
    """The row recorded for a cell that could not be evaluated."""
    return {
        "id": cell.cell_id(),
        "kind": cell.kind,
        "protocol": cell.protocol,
        "deviation": cell.deviation.value,
        "p": cell.params.p,
        "disturb": cell.disturb,
        "params": cell.params.to_dict(),
        "status": "failed",
        "error": error,
    }


def _worker(payload: dict) -> dict:
    """Worker-process entry point: rebuild the cell, evaluate it.

    The elapsed wall-clock rides back under ``"_wall_clock_s"``; the
    runner strips it out of the row before anything durable sees it.
    """
    start = perf_counter()
    row = run_cell(SweepCell.from_payload(payload))
    row["_wall_clock_s"] = perf_counter() - start
    return row


def row_line(row: dict) -> str:
    """The canonical JSONL encoding of one row (byte-stable)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


@dataclass
class SweepResult:
    """The outcome of one :meth:`SweepRunner.run` invocation."""

    #: rows in spec order (failed cells included with ``status="failed"``)
    rows: List[dict]
    #: cells evaluated in this invocation
    computed: int
    #: cells served from the result cache
    cached: int
    #: cells recorded as failed
    failed: int
    #: where the JSONL stream went (``None`` when not written)
    out_path: Optional[Path] = None
    #: cache counters for this invocation (``None`` when caching is off)
    cache_stats: Optional[CacheStats] = None
    #: wall-clock seconds per cell id, for cells computed this invocation
    #: (cached cells cost no simulation time and are absent)
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.rows)

    def ok_rows(self) -> List[dict]:
        return [r for r in self.rows if r["status"] == "ok"]

    def max_abs_discrepancy_pct(self) -> float:
        """Largest finite ``|discrepancy|`` across compare rows (or 0)."""
        vals = [
            abs(r["discrepancy_pct"]) for r in self.ok_rows()
            if r.get("discrepancy_pct") is not None
        ]
        return max(vals) if vals else 0.0


class SweepRunner:
    """Evaluate a :class:`~repro.exp.spec.SweepSpec`, possibly in parallel.

    Args:
        spec: the cells to evaluate.
        workers: worker processes; ``1`` (the default) runs in-process.
        cache: a :class:`~repro.exp.cache.ResultCache`, a cache directory
            path, or ``None`` to disable caching.
        out_path: JSONL file streamed as rows complete (parent directories
            are created; an existing file is overwritten).
        progress: optional ``callback(done, total, row)`` fired after
            every row (cached and computed alike).
        registry: optional :class:`~repro.obs.MetricsRegistry` the run
            publishes into — ``sweep.cells`` / ``sweep.computed`` /
            ``sweep.cached`` / ``sweep.failed`` counters, a
            ``sweep.events_executed`` counter and a
            ``sweep.cell_wall_clock_s`` histogram of per-cell compute
            times.
    """

    def __init__(
        self,
        spec: SweepSpec,
        *,
        workers: int = 1,
        cache: Union[ResultCache, str, Path, None] = None,
        out_path: Union[str, Path, None] = None,
        progress: Optional[ProgressFn] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers = workers
        self.cache = as_cache(cache)
        self.out_path = None if out_path is None else Path(out_path)
        self.progress = progress
        self.registry = registry

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self) -> SweepResult:
        """Evaluate every cell; never raises for an individual cell."""
        cells = list(self.spec)
        total = len(cells)
        rows: List[Optional[dict]] = [None] * total
        timings: Dict[str, float] = {}
        cached = failed = 0
        out_fh = None
        if self.out_path is not None:
            self.out_path.parent.mkdir(parents=True, exist_ok=True)
            out_fh = open(self.out_path, "w", encoding="utf-8")
        done = 0

        def emit(index: int, row: dict) -> None:
            nonlocal done
            rows[index] = row
            done += 1
            if out_fh is not None:
                out_fh.write(row_line(row) + "\n")
                out_fh.flush()
            if self.progress is not None:
                self.progress(done, total, row)

        try:
            pending: List[Tuple[int, SweepCell]] = []
            for index, cell in enumerate(cells):
                hit = None if self.cache is None else self.cache.get(cell)
                if hit is not None:
                    cached += 1
                    emit(index, hit)
                else:
                    pending.append((index, cell))

            for index, row in self._execute(pending):
                # timing is transport metadata, not a result: strip it
                # before the row reaches the cache, the JSONL stream or
                # the caller.
                wall = row.pop("_wall_clock_s", None)
                if wall is not None:
                    timings[row["id"]] = wall
                if row["status"] == "failed":
                    failed += 1
                elif self.cache is not None:
                    self.cache.put(cells[index], row)
                emit(index, row)
        finally:
            if out_fh is not None:
                out_fh.close()

        result = SweepResult(
            rows=[r for r in rows if r is not None],
            computed=total - cached,
            cached=cached,
            failed=failed,
            out_path=self.out_path,
            cache_stats=None if self.cache is None else self.cache.stats,
            timings=timings,
        )
        if self.registry is not None:
            self._publish(result)
        return result

    def _publish(self, result: SweepResult) -> None:
        """Publish this invocation's totals into ``self.registry``."""
        reg = self.registry
        reg.counter("sweep.cells", "cells requested").inc(result.total)
        reg.counter("sweep.computed",
                    "cells evaluated this run").inc(result.computed)
        reg.counter("sweep.cached",
                    "cells served from the result cache").inc(result.cached)
        reg.counter("sweep.failed",
                    "cells recorded as failed").inc(result.failed)
        events = reg.counter("sweep.events_executed",
                             "simulator events across ok rows")
        for row in result.ok_rows():
            events.inc(row.get("events_executed", 0))
        hist = reg.histogram("sweep.cell_wall_clock_s",
                             "per-cell compute wall-clock seconds")
        for wall in result.timings.values():
            hist.observe(wall)

    def _execute(
        self, pending: List[Tuple[int, SweepCell]]
    ) -> Iterator[Tuple[int, dict]]:
        """Yield ``(index, row)`` for every pending cell as it finishes."""
        if not pending:
            return
        if self.workers == 1:
            for index, cell in pending:
                try:
                    # same payload round-trip as the worker path, so a
                    # serial run is bit-identical to a parallel one even
                    # if a cell was built with non-canonical types
                    # (e.g. S=100 instead of S=100.0).
                    yield index, _worker(cell.to_payload())
                except Exception as exc:
                    yield index, _failed_row(cell, f"{type(exc).__name__}: "
                                                   f"{exc}")
            return
        yield from self._execute_parallel(pending)

    def _execute_parallel(
        self, pending: List[Tuple[int, SweepCell]]
    ) -> Iterator[Tuple[int, dict]]:
        retry: List[Tuple[int, SweepCell]] = []
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {
                pool.submit(_worker, cell.to_payload()): (index, cell)
                for index, cell in pending
            }
            remaining = set(futures)
            while remaining:
                finished, remaining = wait(
                    remaining, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    index, cell = futures[future]
                    try:
                        yield index, future.result()
                    except BrokenProcessPool:
                        # the pool died under this future — whether this
                        # cell crashed the worker or was collateral
                        # damage is indistinguishable, so retry each one
                        # in isolation below.
                        retry.append((index, cell))
                    except Exception as exc:
                        yield index, _failed_row(
                            cell, f"{type(exc).__name__}: {exc}"
                        )
        # Second chance: one fresh single-worker pool per cell, so a
        # deterministic crasher only sinks itself.
        for index, cell in retry:
            try:
                with ProcessPoolExecutor(max_workers=1) as pool:
                    yield index, pool.submit(
                        _worker, cell.to_payload()
                    ).result()
            except BrokenProcessPool:
                yield index, _failed_row(cell, "worker process crashed")
            except Exception as exc:
                yield index, _failed_row(cell,
                                         f"{type(exc).__name__}: {exc}")


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    cache: Union[ResultCache, str, Path, None] = None,
    out_path: Union[str, Path, None] = None,
    progress: Optional[ProgressFn] = None,
    registry: Optional[MetricsRegistry] = None,
) -> SweepResult:
    """Convenience wrapper: build a :class:`SweepRunner` and run it."""
    return SweepRunner(
        spec, workers=workers, cache=cache, out_path=out_path,
        progress=progress, registry=registry,
    ).run()
