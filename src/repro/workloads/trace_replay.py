"""Trace-replay workloads: "real" distributed computations.

The paper's Ada simulator "allows the simulation with real or synthetic
workloads" (Section 5.2).  Real traces are replayed here from recorded
``(node, kind, obj)`` sequences; :class:`TraceRecorder` captures such a
sequence from any workload (or from an application built on the simulator),
and the JSONL helpers persist traces for later replay.

Replay also supports estimating the paper's five workload parameters from a
trace (``estimate_params``), closing the loop the paper suggests: "the
parameters ... may be obtained by estimating the relative frequencies of
events in some real distributed computation".
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..core.parameters import WorkloadParams
from ..protocols.base import READ, WRITE
from .base import OpTriple, Workload

__all__ = [
    "TraceReplayWorkload",
    "TraceRecorder",
    "save_trace",
    "load_trace",
    "estimate_params",
]


class TraceReplayWorkload(Workload):
    """Replays a fixed operation sequence (cyclically if oversampled)."""

    def __init__(self, ops: Sequence[OpTriple]):
        if not ops:
            raise ValueError("empty trace")
        self.ops: List[OpTriple] = [
            (int(n), str(k), int(o)) for n, k, o in ops
        ]
        for n, k, o in self.ops:
            if k not in (READ, WRITE):
                raise ValueError(f"bad op kind {k!r}")
        self.M = max(o for _n, _k, o in self.ops)
        self._cursor = 0

    def sample(self, rng: np.random.Generator, n: int) -> List[OpTriple]:
        out: List[OpTriple] = []
        for _ in range(n):
            out.append(self.ops[self._cursor % len(self.ops)])
            self._cursor += 1
        return out

    def rewind(self) -> None:
        """Restart replay from the beginning of the trace."""
        self._cursor = 0

    def describe(self) -> str:
        return f"trace replay ({len(self.ops)} ops, M={self.M})"


class TraceRecorder:
    """Records the operations another workload emits (pass-through)."""

    def __init__(self, inner: Workload):
        self.inner = inner
        self.M = inner.M
        self.recorded: List[OpTriple] = []

    def sample(self, rng: np.random.Generator, n: int) -> List[OpTriple]:
        ops = self.inner.sample(rng, n)
        self.recorded.extend(ops)
        return ops

    def describe(self) -> str:
        return f"recorder({self.inner.describe()})"

    def to_workload(self) -> TraceReplayWorkload:
        """Freeze the recorded operations into a replayable workload."""
        return TraceReplayWorkload(self.recorded)


def save_trace(path: Union[str, Path], ops: Iterable[OpTriple]) -> None:
    """Persist a trace as JSON lines: ``{"node": n, "kind": k, "obj": o}``."""
    with Path(path).open("w") as fh:
        for n, k, o in ops:
            fh.write(json.dumps({"node": n, "kind": k, "obj": o}) + "\n")


def load_trace(path: Union[str, Path]) -> TraceReplayWorkload:
    """Load a JSONL trace saved by :func:`save_trace`."""
    ops: List[OpTriple] = []
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            ops.append((d["node"], d["kind"], d["obj"]))
    return TraceReplayWorkload(ops)


def estimate_params(
    ops: Sequence[OpTriple],
    N: int,
    obj: Optional[int] = None,
    S: float = 100.0,
    P: float = 30.0,
) -> WorkloadParams:
    """Estimate the paper's workload parameters from an operation trace.

    The node with the largest access count for the object is taken as the
    activity center; every other accessing client is a disturber.  ``p`` is
    the activity center's write share of all operations, ``sigma``/``xi``
    the mean per-disturber read/write share.  (Section 4.2: the parameters
    "may be obtained by estimating the relative frequencies of events in
    some real distributed computation".)

    Args:
        ops: the trace.
        N: number of clients in the system.
        obj: restrict to one object (default: the most accessed one).
    """
    if not ops:
        raise ValueError("empty trace")
    if obj is None:
        counts = {}
        for _n, _k, o in ops:
            counts[o] = counts.get(o, 0) + 1
        obj = max(counts, key=counts.get)
    sub = [(n, k) for n, k, o in ops if o == obj]
    if not sub:
        raise ValueError(f"object {obj} never accessed")
    total = len(sub)
    per_node = {}
    for n, k in sub:
        reads, writes = per_node.get(n, (0, 0))
        per_node[n] = (reads + (k == READ), writes + (k == WRITE))
    ac = max(per_node, key=lambda n: sum(per_node[n]))
    p = per_node[ac][1] / total
    others = {n: rw for n, rw in per_node.items() if n != ac}
    a = len(others)
    sigma = xi = 0.0
    if a:
        sigma = sum(r for r, _w in others.values()) / total / a
        xi = sum(w for _r, w in others.values()) / total / a
    # clamp tiny sampling overshoots of the probability simplex.
    if p + a * sigma > 1.0:
        sigma = max(0.0, (1.0 - p) / a) if a else 0.0
    if p + a * xi > 1.0:
        xi = max(0.0, (1.0 - p) / a) if a else 0.0
    return WorkloadParams(N=N, p=p, a=a, sigma=sigma, xi=xi, S=S, P=P)
