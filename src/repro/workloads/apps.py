"""Application-pattern workload generators ("real workloads", Section 5.2).

The paper's simulator "allows the simulation with real or synthetic
workloads".  These generators produce deterministic operation traces with
the sharing patterns of classic parallel-programming kernels, giving the
"real workload" path concrete content:

* :func:`producer_consumer` — one producer refreshes objects, consumers
  poll them (the motivating pattern for update protocols);
* :func:`migratory` — objects move around a ring of workers, each doing a
  read-modify-write burst (the motivating pattern for ownership
  migration — Berkeley's home turf);
* :func:`phased_spmd` — bulk-synchronous phases: everyone reads shared
  state, then a coordinator writes the next phase's state;
* :func:`hot_cold` — a skewed mix: one hot object shared by everybody plus
  per-node private (cold) objects, a common DSM stress profile.

Each returns a :class:`~repro.workloads.trace_replay.TraceReplayWorkload`,
so the traces replay identically across protocols (apples-to-apples
comparisons) and feed :func:`~repro.workloads.trace_replay.estimate_params`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..protocols.base import READ, WRITE
from .base import OpTriple
from .trace_replay import TraceReplayWorkload

__all__ = ["producer_consumer", "migratory", "phased_spmd", "hot_cold"]


def producer_consumer(
    N: int,
    iterations: int = 100,
    M: int = 1,
    consume_prob: float = 0.7,
    producer: int = 1,
    seed: int = 0,
) -> TraceReplayWorkload:
    """One producer writes; the other clients poll.

    Per iteration the producer writes each of the ``M`` objects once and
    every other client reads each object with probability
    ``consume_prob``.
    """
    if N < 2:
        raise ValueError("need a producer and at least one consumer")
    rng = np.random.default_rng(seed)
    ops: List[OpTriple] = []
    consumers = [n for n in range(1, N + 1) if n != producer]
    for _ in range(iterations):
        for obj in range(1, M + 1):
            ops.append((producer, WRITE, obj))
            for c in consumers:
                if rng.random() < consume_prob:
                    ops.append((c, READ, obj))
    return TraceReplayWorkload(ops)


def migratory(
    N: int,
    rounds: int = 50,
    M: int = 1,
    burst: int = 3,
) -> TraceReplayWorkload:
    """Objects migrate around the client ring.

    Each client in turn performs ``burst`` read-modify-write pairs on each
    object, then the next client takes over — sequential sharing with full
    ownership migration.
    """
    if burst < 1:
        raise ValueError("burst must be positive")
    ops: List[OpTriple] = []
    for r in range(rounds):
        node = (r % N) + 1
        for obj in range(1, M + 1):
            for _ in range(burst):
                ops.append((node, READ, obj))
                ops.append((node, WRITE, obj))
    return TraceReplayWorkload(ops)


def phased_spmd(
    N: int,
    phases: int = 40,
    M: int = 1,
    coordinator: int = 1,
    reads_per_phase: int = 2,
) -> TraceReplayWorkload:
    """Bulk-synchronous phases: read shared state, coordinator advances it.

    Per phase every client reads each object ``reads_per_phase`` times
    (its compute step consuming the phase's inputs), then the coordinator
    writes each object once (publishing the next phase).
    """
    ops: List[OpTriple] = []
    for _ in range(phases):
        for obj in range(1, M + 1):
            for node in range(1, N + 1):
                for _ in range(reads_per_phase):
                    ops.append((node, READ, obj))
            ops.append((coordinator, WRITE, obj))
    return TraceReplayWorkload(ops)


def hot_cold(
    N: int,
    iterations: int = 60,
    hot_write_prob: float = 0.3,
    cold_ops_per_iter: int = 2,
    seed: int = 0,
) -> TraceReplayWorkload:
    """A shared hot object plus per-node private cold objects.

    Object 1 is hot: every client touches it each iteration (write with
    probability ``hot_write_prob``).  Objects ``2 .. N+1`` are private:
    object ``n + 1`` is only ever touched by client ``n`` (the ideal
    workload component).
    """
    rng = np.random.default_rng(seed)
    ops: List[OpTriple] = []
    for _ in range(iterations):
        for node in range(1, N + 1):
            kind = WRITE if rng.random() < hot_write_prob else READ
            ops.append((node, kind, 1))
            private = node + 1
            for _ in range(cold_ops_per_iter):
                kind = WRITE if rng.random() < 0.5 else READ
                ops.append((node, kind, private))
    return TraceReplayWorkload(ops)
