"""Workload abstraction: stochastic steady-state operation streams.

The paper assumes "the workload consists of a collection of processes that
behave in a stochastic steady-state manner" (Section 4.2): every operation
slot is an independent trial over a fixed event sample space.  A
:class:`Workload` produces that trial stream as ``(node, kind, obj)``
triples; the simulator assigns Poisson arrival times and feeds the
operations to the nodes, and the analytic model consumes the same event
probabilities directly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


__all__ = ["OpTriple", "Workload", "EventTable"]

#: one sampled operation: (node index, "read"/"write", object index)
OpTriple = Tuple[int, str, int]


@dataclass(frozen=True)
class EventTable:
    """A discrete event distribution over ``(node, kind)`` pairs.

    Used per shared object: the paper assigns the same event probabilities
    to every object (Section 5.2), so one table serves all objects unless
    the role layout rotates per object.
    """

    nodes: Tuple[int, ...]
    kinds: Tuple[str, ...]
    probs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if not (len(self.nodes) == len(self.kinds) == len(self.probs)):
            raise ValueError("nodes, kinds and probs must align")
        if any(p < -1e-12 for p in self.probs):
            raise ValueError(f"negative event probability in {self.probs}")
        total = sum(self.probs)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"event probabilities sum to {total}, expected 1")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Sample ``n`` event indices (vectorized)."""
        return rng.choice(len(self.probs), size=n, p=np.asarray(self.probs))


class Workload(abc.ABC):
    """A source of i.i.d. shared-memory operations."""

    #: number of shared objects the global address space decomposes into
    M: int = 1

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> List[OpTriple]:
        """Draw ``n`` operations."""

    @abc.abstractmethod
    def describe(self) -> str:
        """One-line description for reports."""


class TableWorkload(Workload):
    """A workload defined by one :class:`EventTable` per object.

    Objects are selected uniformly (the paper: "the probabilities of the
    accesses to all of the shared objects are the same") unless
    ``object_probs`` supplies a skewed distribution (the hot-set knob of
    the bounded-replica-cache study).  The uniform path keeps its
    historical ``rng.integers`` draw, so every pre-existing seeded run
    stays bit-identical.
    """

    def __init__(self, tables: Sequence[EventTable],
                 object_probs: Optional[Sequence[float]] = None):
        if not tables:
            raise ValueError("at least one object table required")
        self.tables = list(tables)
        self.M = len(self.tables)
        if object_probs is None:
            self.object_probs: Optional[np.ndarray] = None
        else:
            probs = np.asarray(object_probs, dtype=float)
            if probs.shape != (self.M,):
                raise ValueError(
                    f"object_probs must have one entry per object "
                    f"(M={self.M}), got shape {probs.shape}"
                )
            if (probs < -1e-12).any():
                raise ValueError("negative object probability")
            if abs(float(probs.sum()) - 1.0) > 1e-9:
                raise ValueError(
                    f"object probabilities sum to {float(probs.sum())}, "
                    f"expected 1"
                )
            self.object_probs = probs

    def sample(self, rng: np.random.Generator, n: int) -> List[OpTriple]:
        if self.object_probs is None:
            objs = rng.integers(1, self.M + 1, size=n)
        else:
            objs = rng.choice(
                np.arange(1, self.M + 1), size=n, p=self.object_probs
            )
        out: List[OpTriple] = []
        # group by object for vectorized event sampling per table.
        if len({id(t) for t in self.tables}) == 1:
            # common fast path: identical tables for all objects.
            idx = self.tables[0].sample(rng, n)
            t = self.tables[0]
            out = [
                (t.nodes[i], t.kinds[i], int(o)) for i, o in zip(idx, objs)
            ]
            return out
        for pos in range(n):
            t = self.tables[int(objs[pos]) - 1]
            i = int(t.sample(rng, 1)[0])
            out.append((t.nodes[i], t.kinds[i], int(objs[pos])))
        return out

    def describe(self) -> str:
        return f"table workload over {self.M} objects"
