"""Workload generators (paper Section 4.2): ideal, the three deviations,
and trace replay over ``M`` shared objects."""

from .apps import hot_cold, migratory, phased_spmd, producer_consumer
from .base import EventTable, OpTriple, TableWorkload, Workload
from .synthetic import (
    SyntheticWorkload,
    ideal_workload,
    make_event_table,
    multiple_activity_centers_workload,
    read_disturbance_workload,
    write_disturbance_workload,
)
from .trace_replay import (
    TraceRecorder,
    TraceReplayWorkload,
    estimate_params,
    load_trace,
    save_trace,
)

__all__ = [
    "hot_cold",
    "migratory",
    "phased_spmd",
    "producer_consumer",
    "EventTable",
    "OpTriple",
    "TableWorkload",
    "Workload",
    "SyntheticWorkload",
    "ideal_workload",
    "make_event_table",
    "multiple_activity_centers_workload",
    "read_disturbance_workload",
    "write_disturbance_workload",
    "TraceRecorder",
    "TraceReplayWorkload",
    "estimate_params",
    "load_trace",
    "save_trace",
]
