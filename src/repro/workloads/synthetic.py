"""Synthetic workloads for the paper's three deviations (Section 4.2).

Role layout (configurable; defaults match the paper's evaluation setup):

* the activity center is client 1;
* the ``a`` disturbing clients are clients ``2 .. a + 1``;
* the ``beta`` activity centers are clients ``1 .. beta``;
* the sequencer (node ``N + 1``) never issues operations — in the paper's
  deviations all actors are clients.

With ``rotate_roles=True`` object ``j`` uses roles shifted by ``j`` around
the client ring, giving every client a share of activity-center work while
keeping each object's statistics identical — useful for multi-object
examples, disabled for the paper reproductions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


from ..core.parameters import Deviation, WorkloadParams, object_access_probs
from ..protocols.base import READ, WRITE
from .base import EventTable, TableWorkload

__all__ = [
    "SyntheticWorkload",
    "make_event_table",
    "ideal_workload",
    "read_disturbance_workload",
    "write_disturbance_workload",
    "multiple_activity_centers_workload",
]


def make_event_table(
    params: WorkloadParams,
    deviation: Deviation,
    activity_center: int = 1,
    disturbers: Optional[Sequence[int]] = None,
    centers: Optional[Sequence[int]] = None,
) -> EventTable:
    """Build the per-object event distribution for a deviation.

    Args:
        params: workload parameters (must be feasible for ``deviation``).
        deviation: which sample space to build.
        activity_center: node index of the activity center (client).
        disturbers: node indices of the ``a`` disturbing clients (defaults
            to ``2 .. a + 1``).
        centers: node indices of the ``beta`` activity centers (defaults to
            ``1 .. beta``).
    """
    if deviation is Deviation.MULTIPLE_ACTIVITY_CENTERS:
        centers = list(centers) if centers is not None else list(
            range(1, params.beta + 1)
        )
        if len(centers) != params.beta:
            raise ValueError(
                f"expected beta={params.beta} centers, got {len(centers)}"
            )
        nodes, kinds, probs = [], [], []
        for c in centers:
            nodes += [c, c]
            kinds += [READ, WRITE]
            probs += [params.per_center_read_prob, params.per_center_write_prob]
        return EventTable(tuple(nodes), tuple(kinds), tuple(probs))

    disturbers = list(disturbers) if disturbers is not None else list(
        range(2, params.a + 2)
    )
    if len(disturbers) != params.a:
        raise ValueError(
            f"expected a={params.a} disturbers, got {len(disturbers)}"
        )
    if activity_center in disturbers:
        raise ValueError("the activity center cannot also be a disturber")
    if deviation is Deviation.READ:
        ar = params.read_prob_activity_center_rd
        disturb_kind, disturb_p = READ, params.sigma
    else:
        ar = params.read_prob_activity_center_wd
        disturb_kind, disturb_p = WRITE, params.xi
    nodes = [activity_center, activity_center] + disturbers
    kinds = [READ, WRITE] + [disturb_kind] * len(disturbers)
    probs = [ar, params.p] + [disturb_p] * len(disturbers)
    return EventTable(tuple(nodes), tuple(kinds), tuple(probs))


class SyntheticWorkload(TableWorkload):
    """The paper's five-parameter synthetic workload over ``M`` objects."""

    def __init__(
        self,
        params: WorkloadParams,
        deviation: Deviation,
        M: int = 1,
        rotate_roles: bool = False,
    ):
        self.params = params
        self.deviation = deviation
        self.rotate_roles = rotate_roles
        object_probs = object_access_probs(
            M, params.hot_set, params.hot_fraction
        )
        if not rotate_roles:
            table = make_event_table(params, deviation)
            super().__init__([table] * M, object_probs=object_probs)
            return
        tables: List[EventTable] = []
        for j in range(M):
            def shift(node: int) -> int:
                return (node - 1 + j) % params.N + 1
            if deviation is Deviation.MULTIPLE_ACTIVITY_CENTERS:
                centers = [shift(c) for c in range(1, params.beta + 1)]
                tables.append(
                    make_event_table(params, deviation, centers=centers)
                )
            else:
                ac = shift(1)
                dist = [shift(d) for d in range(2, params.a + 2)]
                tables.append(
                    make_event_table(
                        params, deviation, activity_center=ac, disturbers=dist
                    )
                )
        super().__init__(tables, object_probs=object_probs)

    def describe(self) -> str:
        p = self.params
        extra = {
            Deviation.READ: f"a={p.a}, sigma={p.sigma}",
            Deviation.WRITE: f"a={p.a}, xi={p.xi}",
            Deviation.MULTIPLE_ACTIVITY_CENTERS: f"beta={p.beta}",
        }[self.deviation]
        hot = ("" if p.hot_set is None
               else f", hot_set={p.hot_set}@{p.hot_fraction}")
        return (
            f"{self.deviation.value} (N={p.N}, p={p.p}, {extra}, "
            f"M={self.M}{hot}{', rotated' if self.rotate_roles else ''})"
        )


def ideal_workload(params: WorkloadParams, M: int = 1) -> SyntheticWorkload:
    """The ideal workload: only the activity center touches each object.

    Equivalent to read disturbance with ``sigma = 0``.
    """
    return SyntheticWorkload(
        params.with_(sigma=0.0, xi=0.0), Deviation.READ, M=M
    )


def read_disturbance_workload(params: WorkloadParams, M: int = 1,
                              rotate_roles: bool = False) -> SyntheticWorkload:
    """Read-disturbance deviation: ``a`` clients also read the object."""
    return SyntheticWorkload(params, Deviation.READ, M=M,
                             rotate_roles=rotate_roles)


def write_disturbance_workload(params: WorkloadParams, M: int = 1,
                               rotate_roles: bool = False) -> SyntheticWorkload:
    """Write-disturbance deviation: ``a`` clients also write the object."""
    return SyntheticWorkload(params, Deviation.WRITE, M=M,
                             rotate_roles=rotate_roles)


def multiple_activity_centers_workload(params: WorkloadParams, M: int = 1,
                                       rotate_roles: bool = False
                                       ) -> SyntheticWorkload:
    """Multiple-activity-centers deviation: ``beta`` symmetric centers."""
    return SyntheticWorkload(params, Deviation.MULTIPLE_ACTIVITY_CENTERS,
                             M=M, rotate_roles=rotate_roles)
