"""Greedy schedule shrinking for violating chaos cells.

Once the fuzzer finds a schedule whose run violates consistency, the raw
schedule is rarely the story: three crash windows, two link cuts and
background message loss obscure which single interaction broke the
protocol.  :func:`shrink` reduces the schedule while preserving the
violation — the classic QuickCheck/delta-debugging move, specialized to
fault schedules:

* drop one crash window;
* drop one link fault;
* drop one membership change (or the whole reconfiguration plan);
* zero the global drop / duplicate / jitter rates;
* disable sequencer failover;
* simplify the degraded-mode policy back to ``stall``;
* halve the duration of one crash window or link fault.

Candidates are tried in that order (structure removal before parameter
shrinking); the first candidate that *still* violates becomes the new
schedule and the pass restarts.  The loop is a fixpoint iteration bounded
by a run budget, every candidate is evaluated in-process through
:func:`repro.exp.runner.run_cell`, and candidate order is a pure function
of the current cell — so shrinking is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from ..exp.runner import run_cell
from ..exp.spec import SweepCell
from ..sim.faults import FaultPlan
from ..sim.partition import PartitionPlan
from ..sim.reconfig import ReconfigPlan

__all__ = ["ShrinkResult", "fault_window_count", "shrink"]

#: a crash or link shorter than this is not worth halving further
_MIN_DURATION = 50.0


def fault_window_count(cell: SweepCell) -> int:
    """Crash windows plus link faults in the cell's schedule."""
    config = cell.config
    count = 0
    if config.faults is not None:
        count += len(config.faults.crashes)
    if config.partitions is not None:
        count += len(config.partitions.links)
    if config.reconfig is not None:
        count += len(config.reconfig.changes)
    return count


def _with_faults(cell: SweepCell,
                 faults: Optional[FaultPlan]) -> SweepCell:
    if faults is not None and faults.is_none:
        faults = None
    return cell.with_(config=cell.config.with_(faults=faults))


def _with_partitions(cell: SweepCell,
                     partitions: Optional[PartitionPlan]) -> SweepCell:
    if partitions is not None and partitions.is_none:
        partitions = None
    return cell.with_(config=cell.config.with_(partitions=partitions))


def _faults_with(plan: FaultPlan, **changes) -> FaultPlan:
    kwargs = dict(seed=plan.seed, drop_rate=plan.drop_rate,
                  duplicate_rate=plan.duplicate_rate, jitter=plan.jitter,
                  crashes=plan.crashes)
    kwargs.update(changes)
    return FaultPlan(**kwargs)


def _partitions_with(plan: PartitionPlan, **changes) -> PartitionPlan:
    kwargs = dict(seed=plan.seed, links=plan.links,
                  heartbeat_interval=plan.heartbeat_interval,
                  suspect_after=plan.suspect_after, policy=plan.policy,
                  detect=plan.detect)
    kwargs.update(changes)
    return PartitionPlan(**kwargs)


def _candidates(cell: SweepCell) -> Iterator[SweepCell]:
    """Strictly-simpler variants of ``cell``, most aggressive first."""
    config = cell.config
    faults = config.faults
    partitions = config.partitions

    # 1. remove one crash window
    if faults is not None:
        for index in range(len(faults.crashes)):
            kept = faults.crashes[:index] + faults.crashes[index + 1:]
            yield _with_faults(cell, _faults_with(faults, crashes=kept))

    # 2. remove one link fault
    if partitions is not None:
        for index in range(len(partitions.links)):
            kept = partitions.links[:index] + partitions.links[index + 1:]
            yield _with_partitions(cell,
                                   _partitions_with(partitions, links=kept))

    # 2b. drop one membership change (a candidate whose remaining chain
    # is inconsistent — e.g. a later change leaving a node an earlier,
    # now-removed change joined — is skipped, not yielded)
    if config.reconfig is not None:
        plan = config.reconfig
        for index in range(len(plan.changes)):
            kept = plan.changes[:index] + plan.changes[index + 1:]
            candidate = ReconfigPlan(seed=plan.seed, changes=kept)
            try:
                candidate.validate_membership(cell.params.N + 1)
            except ValueError:
                continue
            yield cell.with_(config=config.with_(
                reconfig=None if candidate.is_none else candidate
            ))

    # 3. zero the global noise rates
    if faults is not None:
        for change in ("drop_rate", "duplicate_rate", "jitter"):
            if getattr(faults, change):
                yield _with_faults(cell,
                                   _faults_with(faults, **{change: 0.0}))

    # 4. drop the failover dimension
    if config.failover:
        yield cell.with_(config=config.with_(failover=False))

    # 5. simplify the degraded-mode policy
    if partitions is not None and partitions.policy != "stall":
        yield _with_partitions(cell,
                               _partitions_with(partitions, policy="stall"))

    # 6. halve one crash window's duration
    if faults is not None:
        for index, w in enumerate(faults.crashes):
            duration = w.end - w.start
            if duration > _MIN_DURATION:
                halved = type(w)(w.node, w.start,
                                 w.start + duration / 2.0, w.semantics)
                crashes = (faults.crashes[:index] + (halved,)
                           + faults.crashes[index + 1:])
                yield _with_faults(cell,
                                   _faults_with(faults, crashes=crashes))

    # 7. halve one link fault's duration
    if partitions is not None:
        for index, link in enumerate(partitions.links):
            duration = link.end - link.start
            if duration > _MIN_DURATION:
                halved = type(link)(
                    link.src, link.dst, link.start,
                    link.start + duration / 2.0,
                    drop_rate=link.drop_rate,
                    duplicate_rate=link.duplicate_rate,
                    jitter=link.jitter,
                )
                links = (partitions.links[:index] + (halved,)
                         + partitions.links[index + 1:])
                yield _with_partitions(
                    cell, _partitions_with(partitions, links=links)
                )


@dataclass(frozen=True)
class ShrinkResult:
    """The outcome of one :func:`shrink` call."""

    #: the minimal (under the budget) still-violating cell
    cell: SweepCell
    #: the violating row of :attr:`cell`
    row: dict
    #: simulator runs spent shrinking
    runs: int


def shrink(
    cell: SweepCell,
    row: dict,
    violates: Callable[[dict], bool],
    budget: int = 64,
) -> ShrinkResult:
    """Greedily reduce ``cell`` while ``violates(run_cell(...))`` holds.

    Args:
        cell: the violating schedule to reduce.
        row: the (violating) row already computed for ``cell``.
        violates: the predicate that must keep holding.
        budget: most simulator runs to spend; when exhausted the best
            cell found so far is returned.
    """
    runs = 0
    improved = True
    while improved and runs < budget:
        improved = False
        for candidate in _candidates(cell):
            if runs >= budget:
                break
            candidate_row = run_cell(candidate)
            runs += 1
            if violates(candidate_row):
                cell, row = candidate, candidate_row
                improved = True
                break
    return ShrinkResult(cell=cell, row=row, runs=runs)
