"""repro.chaos — deterministic chaos fuzzing with schedule shrinking.

The robustness subsystems (fault injection, reliable delivery, crash
recovery, partitions, the failure detector) each carry their own tests,
but their *interactions* are where consistency bugs hide.  This package
searches that interaction space mechanically:

* :mod:`repro.chaos.generate` — one ``(base_seed, fuzz_seed, protocol)``
  triple deterministically maps to one random fault + partition schedule;
* :mod:`repro.chaos.runner` — runs every schedule through the sweep
  engine with the consistency monitor on and classifies the rows;
* :mod:`repro.chaos.shrink` — reduces each violating schedule to a
  minimal reproducing cell, serialized as a self-contained repro JSON.

Everything is a pure function of the seeds: the same campaign produces
byte-identical findings on any machine, any worker count, any day —
which is what makes a CI fuzz job's artifact trustworthy.

Quickstart::

    from repro.chaos import ChaosOptions, run_chaos

    report = run_chaos(ChaosOptions(seeds=25))
    assert report.ok, report.summary()
"""

from .generate import (
    ALL_CHAOS_PROTOCOLS,
    ChaosOptions,
    chaos_cells,
    generate_cell,
)
from .runner import (
    VIOLATION_KINDS,
    ChaosFinding,
    ChaosReport,
    load_repro,
    replay_repro,
    run_chaos,
    violates,
    write_repros,
)
from .shrink import ShrinkResult, fault_window_count, shrink

__all__ = [
    "ALL_CHAOS_PROTOCOLS",
    "ChaosOptions",
    "chaos_cells",
    "generate_cell",
    "VIOLATION_KINDS",
    "ChaosFinding",
    "ChaosReport",
    "load_repro",
    "replay_repro",
    "run_chaos",
    "violates",
    "write_repros",
    "ShrinkResult",
    "fault_window_count",
    "shrink",
]
