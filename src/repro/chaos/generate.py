"""Deterministic generation of random fault + partition schedules.

One ``(base_seed, fuzz_seed, protocol)`` triple maps — through the same
stable hash the sweep engine uses for cell seeds
(:func:`repro.exp.spec.derive_cell_seed`) — to exactly one
:class:`~repro.exp.spec.SweepCell`: a small simulated workload with a
randomly drawn :class:`~repro.sim.faults.FaultPlan` (drop/dup/jitter plus
crash windows of random semantics), a randomly drawn
:class:`~repro.sim.partition.PartitionPlan` (symmetric cuts, asymmetric
cuts and degraded links, plus failure-detector knobs), a coin-flipped
sequencer failover, and the consistency monitor switched on.  Quorum
protocols additionally draw a random
:class:`~repro.sim.reconfig.ReconfigPlan` — online joins and leaves
overlapping the crash and partition windows — from draws made strictly
inside the quorum-only branch, so every non-quorum protocol's schedule
is bit-identical to what it was before reconfiguration fuzzing existed.
With ``slow_windows`` enabled the generator additionally draws straggler
:class:`~repro.sim.faults.SlowWindow` schedules and (for quorum
protocols) a coin-flipped :class:`~repro.sim.hedge.HedgeConfig`; every
draw sits strictly inside the flag's branch, so campaigns predating the
straggler model keep bit-identical schedules.  With ``bounded_caches``
enabled it additionally coin-flips a random
:class:`~repro.sim.cache.CacheConfig` (capacity, eviction policy and
tie-break seed) onto each cell, layering partial replication over the
crash and partition schedules — again with every draw strictly inside
the flag's branch.

The draw is a pure function of the triple: no wall clock, no process
state, no shared RNG.  Re-generating a cell from the same triple is
bit-identical, which is what lets the fuzzer replay, shrink and archive a
schedule from nothing but three integers and a protocol name.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from ..core.parameters import Deviation, WorkloadParams
from ..exp.spec import SweepCell, derive_cell_seed
from ..protocols.registry import EXTENSION_PROTOCOLS, PROTOCOLS, get_protocol
from ..sim.cache import CACHE_POLICIES, CacheConfig
from ..sim.config import RunConfig
from ..sim.faults import CRASH_SEMANTICS, CrashWindow, FaultPlan, SlowWindow
from ..sim.hedge import HedgeConfig
from ..sim.partition import PARTITION_POLICIES, LinkFault, PartitionPlan, cut
from ..sim.reconfig import MembershipChange, ReconfigPlan

__all__ = ["ALL_CHAOS_PROTOCOLS", "ChaosOptions", "chaos_cells",
           "generate_cell"]

#: every protocol the fuzzer exercises by default (registry + extensions)
ALL_CHAOS_PROTOCOLS: Tuple[str, ...] = (
    tuple(PROTOCOLS) + tuple(EXTENSION_PROTOCOLS)
)

#: link-fault shapes the generator draws from
_LINK_SHAPES = ("cut", "one_way", "degraded")

#: heartbeat intervals the generator draws from
_HEARTBEAT_INTERVALS = (30.0, 40.0, 60.0)


@dataclass(frozen=True)
class ChaosOptions:
    """Everything that parameterizes one fuzzing campaign.

    Args:
        base_seed: campaign seed; every cell seed derives from it.
        seeds: fuzz seeds per protocol (cells = ``seeds × protocols``).
        protocols: protocols to fuzz; empty means every known protocol
            (:data:`ALL_CHAOS_PROTOCOLS`).
        N / M / ops / warmup / mean_gap: workload shape of every cell
            (small by design — the fuzzer favours many short runs over
            few long ones).
        p / a / sigma / S / P: the workload-parameter point.
        max_crashes: most crash windows one schedule may contain.
        max_links: most link-fault draws one schedule may contain (a
            symmetric cut counts as one draw).
        slow_windows: also draw gray-failure straggler windows
            (:class:`~repro.sim.faults.SlowWindow`), and — for quorum
            protocols — a coin-flipped :class:`~repro.sim.hedge.
            HedgeConfig`.  Off by default; every draw sits strictly
            inside the flag's branch, so campaigns predating the
            straggler model keep bit-identical schedules.
        max_slow: most slow windows one schedule may contain (only
            consulted when ``slow_windows`` is on).
        bounded_caches: also coin-flip a random bounded replica cache
            (:class:`~repro.sim.cache.CacheConfig`) onto each cell,
            layering partial replication — evictions, write-backs and
            capacity refetches — over the fault and partition
            schedules.  Off by default; every draw sits strictly inside
            the flag's branch, so campaigns predating partial
            replication keep bit-identical schedules.
        workers: worker processes for the fuzzing sweep (shrinking is
            always in-process).
        shrink_budget: most simulator runs one shrink may spend.
    """

    base_seed: int = 0
    seeds: int = 25
    protocols: Tuple[str, ...] = ()
    N: int = 4
    M: int = 2
    ops: int = 300
    warmup: int = 50
    mean_gap: float = 25.0
    p: float = 0.3
    a: int = 3
    sigma: float = 0.15
    S: float = 100.0
    P: float = 30.0
    max_crashes: int = 3
    max_links: int = 2
    slow_windows: bool = False
    max_slow: int = 2
    bounded_caches: bool = False
    workers: int = 1
    shrink_budget: int = 64

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError(f"seeds must be >= 1, got {self.seeds}")
        if self.N < 2:
            raise ValueError(f"N must be >= 2, got {self.N}")
        for name in self.protocols:
            if name not in ALL_CHAOS_PROTOCOLS:
                raise ValueError(
                    f"unknown protocol {name!r}; known: "
                    f"{', '.join(ALL_CHAOS_PROTOCOLS)}"
                )
        object.__setattr__(self, "protocols", tuple(self.protocols))

    @property
    def resolved_protocols(self) -> Tuple[str, ...]:
        return self.protocols if self.protocols else ALL_CHAOS_PROTOCOLS

    @property
    def params(self) -> WorkloadParams:
        return WorkloadParams(N=self.N, p=self.p, a=self.a,
                              sigma=self.sigma, S=self.S, P=self.P)


def _draw_crashes(rng: random.Random, options: ChaosOptions,
                  horizon: float) -> List[CrashWindow]:
    """Draw up to ``max_crashes`` non-overlapping-per-node windows."""
    crashes: List[CrashWindow] = []
    spans: dict = {}
    for _ in range(rng.randint(0, options.max_crashes)):
        node = rng.randint(1, options.N + 1)
        start = round(rng.uniform(0.0, 0.7 * horizon), 1)
        end = round(start + rng.uniform(100.0, 600.0), 1)
        if any(s < end and start < e for s, e in spans.get(node, ())):
            # a draw overlapping an existing window on the same node is
            # discarded (FaultPlan rejects such schedules); dropping it —
            # instead of re-rolling — keeps the RNG stream bounded.
            continue
        spans.setdefault(node, []).append((start, end))
        crashes.append(
            CrashWindow(node, start, end, rng.choice(CRASH_SEMANTICS))
        )
    return crashes


def _draw_links(rng: random.Random, options: ChaosOptions,
                horizon: float) -> List[LinkFault]:
    """Draw up to ``max_links`` link faults (cuts and degraded links)."""
    links: List[LinkFault] = []
    for _ in range(rng.randint(0, options.max_links)):
        a = rng.randint(1, options.N + 1)
        b = rng.randint(1, options.N)
        if b >= a:  # distinct endpoint, uniform over ordered pairs
            b += 1
        start = round(rng.uniform(0.0, 0.7 * horizon), 1)
        end = round(start + rng.uniform(100.0, 600.0), 1)
        shape = rng.choice(_LINK_SHAPES)
        if shape == "cut":
            links.extend(cut(a, b, start, end))
        elif shape == "one_way":
            links.append(LinkFault(a, b, start, end))
        else:
            links.append(LinkFault(
                a, b, start, end,
                drop_rate=round(rng.uniform(0.2, 0.6), 3),
                jitter=round(rng.uniform(0.5, 3.0), 2),
            ))
    return links


def _draw_slow_windows(rng: random.Random, options: ChaosOptions,
                       horizon: float) -> List[SlowWindow]:
    """Draw up to ``max_slow`` non-overlapping-per-node straggler windows."""
    windows: List[SlowWindow] = []
    spans: dict = {}
    for _ in range(rng.randint(0, options.max_slow)):
        node = rng.randint(1, options.N + 1)
        start = round(rng.uniform(0.0, 0.7 * horizon), 1)
        end = round(start + rng.uniform(100.0, 600.0), 1)
        if any(s < end and start < e for s, e in spans.get(node, ())):
            # overlapping windows on one node are rejected by FaultPlan;
            # dropping the draw keeps the RNG stream bounded.
            continue
        spans.setdefault(node, []).append((start, end))
        windows.append(SlowWindow(
            node, start, end, factor=round(rng.uniform(2.0, 12.0), 1)
        ))
    return windows


def generate_cell(protocol: str, fuzz_seed: int,
                  options: ChaosOptions) -> SweepCell:
    """The schedule for one fuzz coordinate, as a ready-to-run cell.

    Pure in ``(options.base_seed, fuzz_seed, protocol)`` — calling this
    twice with the same arguments yields equal cells.
    """
    rng = random.Random(
        derive_cell_seed(options.base_seed, "chaos", fuzz_seed, protocol)
    )
    horizon = options.ops * options.mean_gap

    drop = round(rng.uniform(0.01, 0.10), 3) if rng.random() < 0.5 else 0.0
    dup = round(rng.uniform(0.01, 0.10), 3) if rng.random() < 0.4 else 0.0
    jitter = round(rng.uniform(0.5, 4.0), 2) if rng.random() < 0.5 else 0.0
    crashes = _draw_crashes(rng, options, horizon)
    links = _draw_links(rng, options, horizon)
    slowdowns: List[SlowWindow] = []
    hedge = None
    if options.slow_windows:
        # gray-failure fuzzing is opt-in, and every draw sits strictly
        # inside this branch: with the flag off the RNG stream — and
        # thus every schedule — is bit-identical to earlier campaigns.
        slowdowns = _draw_slow_windows(rng, options, horizon)
        if get_protocol(protocol).quorum_based and rng.random() < 0.6:
            hedge = HedgeConfig(
                budget=round(rng.uniform(4.0, 16.0), 1),
                max_legs=rng.randint(1, 2),
                seed=rng.getrandbits(32),
            )
    cache = None
    if options.bounded_caches:
        # partial-replication fuzzing is opt-in, and every draw sits
        # strictly inside this branch: with the flag off the RNG stream
        # — and thus every schedule — is bit-identical to campaigns
        # predating bounded caches.
        if rng.random() < 0.8:
            cache = CacheConfig(
                capacity=rng.randint(1, max(options.M - 1, 1)),
                policy=rng.choice(CACHE_POLICIES),
                seed=rng.getrandbits(32),
            )

    heartbeat = rng.choice(_HEARTBEAT_INTERVALS)
    suspect_after = rng.randint(2, 4)
    policy = rng.choice(PARTITION_POLICIES)
    failover = rng.random() < 0.5

    reconfig = None
    if get_protocol(protocol).quorum_based:
        # the quorum family rejects amnesia crashes and failover (no
        # sequencer, durable replicas); sanitize *after* all draws so the
        # RNG stream — and thus every other protocol's schedule — is
        # untouched and the cell stays a pure function of the triple.
        crashes = [
            CrashWindow(w.node, w.start, w.end, "durable") for w in crashes
        ]
        failover = False
        # randomized online-membership schedules (joins/leaves that
        # overlap the crash and partition windows drawn above).  All
        # reconfiguration draws live inside this branch, so every
        # non-quorum protocol's RNG stream — and schedule — is untouched.
        members = set(range(1, options.N + 2))
        next_join = options.N + 2
        changes: List[MembershipChange] = []
        for window in ((0.15, 0.45), (0.55, 0.8)):
            if rng.random() >= 0.55:
                continue
            at = round(rng.uniform(*window) * horizon, 1)
            joins: List[int] = []
            leaves: List[int] = []
            if rng.random() < 0.6:
                joins.append(next_join)
            if (rng.random() < 0.5
                    and len(members) + len(joins) - 1 >= 2):
                leaves.append(rng.choice(sorted(members)))
            if not joins and not leaves:
                continue
            next_join += len(joins)
            members.update(joins)
            members.difference_update(leaves)
            changes.append(MembershipChange(at=at, joins=tuple(joins),
                                            leaves=tuple(leaves)))
        if changes:
            reconfig = ReconfigPlan(seed=rng.getrandbits(32),
                                    changes=tuple(changes))

    faults = FaultPlan(seed=rng.getrandbits(32), drop_rate=drop,
                       duplicate_rate=dup, jitter=jitter, crashes=crashes,
                       slowdowns=slowdowns)
    partitions = PartitionPlan(
        seed=rng.getrandbits(32), links=links,
        heartbeat_interval=heartbeat, suspect_after=suspect_after,
        policy=policy,
    )
    config = RunConfig(
        ops=options.ops,
        warmup=options.warmup,
        seed=rng.getrandbits(32),
        mean_gap=options.mean_gap,
        faults=None if faults.is_none else faults,
        partitions=None if partitions.is_none else partitions,
        failover=failover,
        monitor=True,
        reconfig=reconfig,
        hedge=hedge,
        cache=cache,
    )
    return SweepCell(
        protocol=protocol,
        params=options.params,
        deviation=Deviation.READ,
        kind="sim",
        M=options.M,
        config=config,
    )


def chaos_cells(
    options: ChaosOptions,
) -> List[Tuple[str, int, SweepCell]]:
    """Every ``(protocol, fuzz_seed, cell)`` of a campaign, in order."""
    return [
        (protocol, fuzz_seed, generate_cell(protocol, fuzz_seed, options))
        for protocol in options.resolved_protocols
        for fuzz_seed in range(options.seeds)
    ]
