"""The chaos campaign driver: fuzz, detect, shrink, archive.

:func:`run_chaos` expands a :class:`~repro.chaos.generate.ChaosOptions`
into one :class:`~repro.exp.spec.SweepCell` per ``(protocol, fuzz_seed)``
coordinate, evaluates them through the parallel sweep engine (cache
disabled — a fuzz run must actually run), classifies each row with
:func:`violates`, and shrinks every violating schedule to a minimal
reproducing cell (:mod:`repro.chaos.shrink`).

What counts as a violation
--------------------------

* a ``failed`` row — the simulator raised (deadlock guard, coherence
  assertion, or any crash), or
* a monitor-reported ``divergence`` or ``sequential_consistency``
  violation.

``delivery`` violations alone are deliberately *not* findings: abandoning
a send after the retry budget toward a live destination is a reliability
degradation the row already reports, not a consistency bug — the fuzzer
hunts for the latter.

Every finding serializes to a self-contained repro JSON (the shrunk
cell's payload plus provenance) that ``repro chaos --replay`` — or
:func:`replay_repro` — re-runs bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from ..exp.runner import ProgressFn, run_cell, run_sweep
from ..exp.spec import SweepCell, SweepSpec
from ..obs.export import write_chrome_trace
from ..obs.registry import MetricsRegistry
from ..obs.trace import TraceConfig
from .generate import ChaosOptions, chaos_cells
from .shrink import ShrinkResult, fault_window_count, shrink

__all__ = ["VIOLATION_KINDS", "ChaosFinding", "ChaosReport", "load_repro",
           "replay_repro", "run_chaos", "violates", "write_repros"]

#: monitor violation kinds that make a row a finding
VIOLATION_KINDS = frozenset({"divergence", "sequential_consistency"})


def violates(row: dict) -> bool:
    """Whether a sweep row constitutes a consistency finding."""
    if row.get("status") != "ok":
        return True
    return bool(VIOLATION_KINDS.intersection(row.get("violation_kinds",
                                                     ())))


@dataclass(frozen=True)
class ChaosFinding:
    """One violating schedule, before and after shrinking."""

    protocol: str
    fuzz_seed: int
    base_seed: int
    #: the schedule as generated
    original: SweepCell
    #: the minimal still-violating schedule
    shrunk: SweepCell
    #: the violating row of :attr:`shrunk`
    row: dict
    #: simulator runs the shrink spent
    shrink_runs: int

    @property
    def fault_windows(self) -> int:
        """Crash windows plus link faults left after shrinking."""
        return fault_window_count(self.shrunk)

    def to_repro(self) -> dict:
        """A self-contained, replayable description of the finding."""
        return {
            "protocol": self.protocol,
            "fuzz_seed": self.fuzz_seed,
            "base_seed": self.base_seed,
            "cell": self.shrunk.to_payload(),
            "original_cell": self.original.to_payload(),
            "row": self.row,
            "shrink_runs": self.shrink_runs,
            "fault_windows": self.fault_windows,
        }

    def repro_json(self) -> str:
        """Canonical JSON text of :meth:`to_repro` (byte-stable)."""
        return json.dumps(self.to_repro(), sort_keys=True, indent=2) + "\n"

    def describe(self) -> str:
        """One-paragraph human summary (used by the CLI)."""
        config = self.shrunk.config
        lines = [
            f"{self.protocol} fuzz_seed={self.fuzz_seed} "
            f"(base_seed={self.base_seed}): "
            f"{self.fault_windows} fault window(s) after "
            f"{self.shrink_runs} shrink run(s)",
            "  faults:     " + (config.faults.describe()
                                if config.faults is not None else "none"),
            "  partitions: " + (config.partitions.describe()
                                if config.partitions is not None
                                else "none"),
        ]
        if self.row.get("status") != "ok":
            lines.append(f"  outcome:    failed "
                         f"({self.row.get('error', 'unknown error')})")
        else:
            kinds = ", ".join(self.row.get("violation_kinds", ()))
            lines.append(f"  outcome:    {self.row.get('violations', 0)} "
                         f"violation(s) [{kinds}]")
        return "\n".join(lines)


@dataclass(frozen=True)
class ChaosReport:
    """The outcome of one :func:`run_chaos` campaign."""

    options: ChaosOptions
    #: every ``(protocol, fuzz_seed)`` fuzzed, in order
    coordinates: Tuple[Tuple[str, int], ...]
    #: one sweep row per coordinate, same order
    rows: Tuple[dict, ...]
    #: shrunk findings (empty means the campaign passed)
    findings: Tuple[ChaosFinding, ...]

    @property
    def cells(self) -> int:
        return len(self.rows)

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> str:
        protos = len(self.options.resolved_protocols)
        verdict = ("no violations" if self.ok
                   else f"{len(self.findings)} finding(s)")
        return (f"chaos: {self.cells} cells "
                f"({protos} protocols x {self.options.seeds} seeds, "
                f"base_seed={self.options.base_seed}) -> {verdict}")


def write_repros(report: ChaosReport,
                 repro_dir: Union[str, Path]) -> List[Path]:
    """Write one repro JSON per finding; returns the paths written."""
    repro_dir = Path(repro_dir)
    repro_dir.mkdir(parents=True, exist_ok=True)
    paths = []
    for finding in report.findings:
        path = repro_dir / (f"chaos-{finding.protocol}"
                            f"-seed{finding.fuzz_seed}.json")
        path.write_text(finding.repro_json(), encoding="utf-8")
        paths.append(path)
    return paths


def load_repro(path: Union[str, Path]) -> SweepCell:
    """Rebuild the shrunk cell from a repro JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return SweepCell.from_payload(data["cell"])


def replay_repro(
    path: Union[str, Path],
    *,
    trace_out: Union[str, Path, None] = None,
    trace_sample: int = 1,
) -> dict:
    """Re-run a repro file's shrunk cell; returns the fresh row.

    Args:
        trace_out: when given, the replay runs with structured tracing
            enabled and exports a Perfetto-loadable Chrome trace to this
            path.  The trace is written even when the replay crashes —
            a crashing repro is exactly when you want the trace — and is
            byte-identical across replays of the same file.
        trace_sample: record every k-th operation span (``TraceConfig
            .sample_every``) for the exported trace.
    """
    cell = load_repro(path)
    if trace_out is None:
        return run_cell(cell)
    cell = cell.with_(
        config=cell.config.with_(
            tracing=TraceConfig(sample_every=trace_sample)
        ),
    )
    captured: List = []
    try:
        return run_cell(cell, on_system=captured.append)
    finally:
        if captured and captured[0].tracer is not None:
            write_chrome_trace(
                captured[0].tracer, trace_out,
                label="chaos replay %s" % Path(path).name,
            )


def run_chaos(
    options: ChaosOptions,
    *,
    out_path: Union[str, Path, None] = None,
    progress: Optional[ProgressFn] = None,
    shrink_progress: Optional[Callable[[ChaosFinding], None]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ChaosReport:
    """Run one fuzzing campaign and shrink every finding.

    The fuzzing sweep honours ``options.workers``; with the same options
    the report — including every shrunk schedule — is bit-identical
    regardless of worker count, because rows are pure functions of their
    cells and shrinking always runs in-process in coordinate order.

    When ``registry`` is given, the campaign publishes ``chaos.cells``,
    ``chaos.findings`` and ``chaos.shrink_runs`` counters on top of the
    underlying sweep's ``sweep.*`` metrics.
    """
    coords = chaos_cells(options)
    spec = SweepSpec.explicit(cell for _, _, cell in coords)
    result = run_sweep(spec, workers=options.workers, cache=None,
                       out_path=out_path, progress=progress,
                       registry=registry)
    findings: List[ChaosFinding] = []
    for (protocol, fuzz_seed, cell), row in zip(coords, result.rows):
        if not violates(row):
            continue
        reduced: ShrinkResult = shrink(cell, row, violates,
                                       budget=options.shrink_budget)
        finding = ChaosFinding(
            protocol=protocol,
            fuzz_seed=fuzz_seed,
            base_seed=options.base_seed,
            original=cell,
            shrunk=reduced.cell,
            row=reduced.row,
            shrink_runs=reduced.runs,
        )
        findings.append(finding)
        if shrink_progress is not None:
            shrink_progress(finding)
    if registry is not None:
        registry.counter("chaos.cells",
                         "schedules fuzzed").inc(len(coords))
        registry.counter("chaos.findings",
                         "violating schedules").inc(len(findings))
        registry.counter(
            "chaos.shrink_runs", "simulator runs spent shrinking"
        ).inc(sum(f.shrink_runs for f in findings))
    return ChaosReport(
        options=options,
        coordinates=tuple((p, s) for p, s, _ in coords),
        rows=tuple(result.rows),
        findings=tuple(findings),
    )
