"""Statistical helpers for the validation harness.

The paper quotes a single max-discrepancy figure; a production-quality
reproduction should also quantify the sampling noise of the simulation, so
these helpers provide standard errors and confidence intervals for the
measured ``acc`` (per-operation costs are i.i.d. draws in the steady state,
so the plain CLT interval applies) and a replication driver that runs a
cell across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["MeanCI", "mean_confidence_interval", "replicate"]

#: two-sided z quantiles for common confidence levels
_Z = {0.90: 1.6448536269514722, 0.95: 1.959963984540054,
      0.99: 2.5758293035489004}


@dataclass
class MeanCI:
    """A sample mean with its confidence interval."""

    mean: float
    half_width: float
    level: float
    n: int

    @property
    def lo(self) -> float:
        """Lower confidence bound."""
        return self.mean - self.half_width

    @property
    def hi(self) -> float:
        """Upper confidence bound."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lo <= value <= self.hi


def mean_confidence_interval(samples: Sequence[float],
                             level: float = 0.95) -> MeanCI:
    """CLT confidence interval for the mean of i.i.d. samples.

    Args:
        samples: the observations (e.g. per-operation costs).
        level: one of 0.90, 0.95, 0.99.
    """
    if level not in _Z:
        raise ValueError(f"supported levels: {sorted(_Z)}")
    x = np.asarray(list(samples), dtype=float)
    if x.size < 2:
        raise ValueError("need at least two samples")
    se = float(x.std(ddof=1)) / math.sqrt(x.size)
    return MeanCI(float(x.mean()), _Z[level] * se, level, int(x.size))


def replicate(run: Callable[[int], float], seeds: Sequence[int],
              level: float = 0.95) -> MeanCI:
    """Run a seeded experiment across replications and pool the results.

    Args:
        run: maps a seed to one measured ``acc``.
        seeds: replication seeds.
        level: confidence level for the pooled mean.
    """
    values = [run(int(s)) for s in seeds]
    return mean_confidence_interval(values, level)
