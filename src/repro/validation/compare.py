"""Analytical-vs-simulation comparison harness (paper Table 7, Section 5.2).

The paper validates the analytic model by executing the protocols in a
multitasking simulator under synthetic workloads: ``N = 3`` clients (one
activity center, ``a = 2`` readers), ``M = 20`` shared objects,
``P = 30``, ``S = 100``; per ``(p, sigma)`` cell the first 500 operations
are discarded and about 1500 steady-state operations measured.  The
reported maximum discrepancy is below ±8%.

:func:`compare_cell` reproduces one cell; :func:`comparison_table`
reproduces a whole protocol panel of Table 7 (skipping infeasible cells,
which appear blank in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.acc import analytical_acc
from ..core.parameters import Deviation, WorkloadParams
from ..sim.config import RunConfig
from ..sim.system import DSMSystem
from ..workloads.synthetic import SyntheticWorkload

__all__ = ["CellResult", "ComparisonTable", "compare_cell", "comparison_table"]


def _resolve_config(where: str, config: Optional[RunConfig]) -> RunConfig:
    """Default to the paper's Table 7 budget; reject non-RunConfig values.

    The pre-1.2 ``total_ops=/warmup=/seed=`` keywords (and the bare int
    in the config slot) were removed; they now raise :class:`TypeError`.
    """
    if config is None:
        return RunConfig(ops=2000, warmup=500, seed=0)
    if not isinstance(config, RunConfig):
        raise TypeError(
            f"{where}: config must be a RunConfig, got "
            f"{type(config).__name__}; the pre-1.2 total_ops/warmup/seed "
            "arguments were removed — pass "
            "config=RunConfig(ops=2000, warmup=500, seed=0)"
        )
    return config


@dataclass
class CellResult:
    """One ``(p, disturb)`` cell: analytical vs simulated ``acc``.

    ``discrepancy_pct`` follows the paper's definition,
    ``100 * (acc_analytic - acc_sim) / acc_analytic`` (0 when both vanish).
    """

    p: float
    disturb: float
    acc_analytic: float
    acc_sim: float

    @property
    def discrepancy_pct(self) -> float:
        if abs(self.acc_analytic) < 1e-9:
            # zero-cost steady state: any simulated residue is the finite
            # cold-start transient (first-touch misses), reported as inf
            # and excluded from the max-discrepancy statistic, exactly as
            # the paper's blank/zero cells.
            return 0.0 if abs(self.acc_sim) < 1e-9 else float("inf")
        return 100.0 * (self.acc_analytic - self.acc_sim) / self.acc_analytic


def compare_cell(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    M: int = 20,
    config: Optional[RunConfig] = None,
) -> CellResult:
    """Analytical vs simulated ``acc`` for one parameter point.

    Args:
        protocol: registry name.
        params: the workload parameters of the cell.
        deviation: workload deviation.
        M: number of shared objects in the simulated system.
        config: a :class:`~repro.sim.config.RunConfig`; its fault,
            reliability, failover and monitor settings (if any) are
            applied to the simulated system, so the validation harness
            can also compare degraded runs against the fault-free model.
            Defaults to the paper's Table 7 budget (``ops=2000,
            warmup=500, seed=0``).
    """
    config = _resolve_config("compare_cell", config)
    acc_a = analytical_acc(protocol, params, deviation)
    workload = SyntheticWorkload(params, deviation, M=M)
    system = DSMSystem(
        protocol, N=params.N, M=M, S=params.S, P=params.P,
        faults=None if config.faults is None else config.faults.replay(),
        partitions=(None if config.partitions is None
                    else config.partitions.replay()),
        reliability=config.reliability,
        failover=config.failover,
        monitor=config.monitor,
        tracing=config.tracing,
        reconfig=(None if config.reconfig is None
                  else config.reconfig.replay()),
        quorum_weights=config.quorum_weights,
    )
    result = system.run_workload(workload, config)
    disturb = params.sigma if deviation is Deviation.READ else params.xi
    return CellResult(params.p, disturb, acc_a, result.acc)


@dataclass
class ComparisonTable:
    """A Table 7 panel: all feasible cells for one protocol."""

    protocol: str
    deviation: Deviation
    cells: List[CellResult]

    @property
    def max_abs_discrepancy_pct(self) -> float:
        """The paper's headline number (should be < 8%)."""
        vals = [
            abs(c.discrepancy_pct) for c in self.cells
            if np.isfinite(c.discrepancy_pct)
        ]
        return max(vals) if vals else 0.0

    def format(self) -> str:
        """Fixed-width text rendering in the style of Table 7."""
        lines = [
            f"{self.protocol} ({self.deviation.value}); "
            f"max |discrepancy| = {self.max_abs_discrepancy_pct:.2f}%",
            f"{'p':>6} {'dist':>6} {'analytic':>12} {'simulated':>12} "
            f"{'disc %':>8}",
        ]
        for c in self.cells:
            lines.append(
                f"{c.p:6.2f} {c.disturb:6.2f} {c.acc_analytic:12.3f} "
                f"{c.acc_sim:12.3f} {c.discrepancy_pct:8.2f}"
            )
        return "\n".join(lines)


def comparison_table(
    protocol: str,
    base: WorkloadParams,
    p_values: Sequence[float],
    disturb_values: Sequence[float],
    deviation: Deviation = Deviation.READ,
    M: int = 20,
    config: Optional[RunConfig] = None,
) -> ComparisonTable:
    """Reproduce one protocol panel of Table 7 over a parameter grid.

    Infeasible cells (``p + a * disturb > 1``) are skipped; ``p = 0``
    columns are included (both model and simulation yield ``acc = 0``).
    Each cell uses an independent fresh system and a seed derived from the
    cell coordinates (``config.seed + 1000 * i + j``) for
    reproducibility.
    """
    config = _resolve_config("comparison_table", config)
    cells: List[CellResult] = []
    for i, p in enumerate(p_values):
        for j, d in enumerate(disturb_values):
            if p + base.a * d > 1.0 + 1e-12:
                continue
            if deviation is Deviation.READ:
                w = base.with_(p=float(p), sigma=float(d), xi=0.0)
            else:
                w = base.with_(p=float(p), xi=float(d), sigma=0.0)
            cell_seed = (None if config.seed is None
                         else config.seed + 1000 * i + j)
            cells.append(
                compare_cell(protocol, w, deviation, M=M,
                             config=config.with_(seed=cell_seed))
            )
    return ComparisonTable(protocol, deviation, cells)
