"""Full validation-report generator: the Section 5.2 methodology, widened.

The paper validates two protocols under one deviation; a production user
wants the whole matrix.  :func:`full_validation` runs every protocol under
every deviation at a parameter point and collects analytical vs simulated
``acc`` with confidence intervals; :func:`render_markdown` turns the
result into a report suitable for EXPERIMENTS-style records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from ..core.acc import analytical_acc
from ..core.comparison import ALL_PROTOCOLS
from ..core.parameters import Deviation, WorkloadParams
from ..sim.config import RunConfig
from ..sim.system import DSMSystem
from ..workloads.synthetic import SyntheticWorkload
from .statistics import MeanCI, mean_confidence_interval

__all__ = ["ValidationRow", "ValidationReport", "full_validation",
           "render_markdown"]


@dataclass
class ValidationRow:
    """One (protocol, deviation) entry of the validation matrix."""

    protocol: str
    deviation: Deviation
    analytic: float
    simulated: MeanCI

    @property
    def discrepancy_pct(self) -> float:
        """Paper-style relative discrepancy (0 when both vanish)."""
        if abs(self.analytic) < 1e-9:
            return 0.0 if abs(self.simulated.mean) < 1e-9 else float("inf")
        return 100.0 * (self.analytic - self.simulated.mean) / self.analytic

    @property
    def consistent(self) -> bool:
        """Whether the analytic value lies inside the simulation's CI
        (widened by a small relative tolerance for residual bias from
        finite warm-up)."""
        slack = 0.02 * max(abs(self.analytic), 1.0)
        return (self.simulated.lo - slack <= self.analytic
                <= self.simulated.hi + slack)


@dataclass
class ValidationReport:
    """The full matrix plus summary statistics."""

    params: WorkloadParams
    rows: List[ValidationRow] = field(default_factory=list)

    @property
    def max_abs_discrepancy_pct(self) -> float:
        vals = [abs(r.discrepancy_pct) for r in self.rows
                if np.isfinite(r.discrepancy_pct)]
        return max(vals) if vals else 0.0

    @property
    def all_consistent(self) -> bool:
        return all(r.consistent for r in self.rows)


def full_validation(
    params: WorkloadParams,
    protocols: Sequence[str] = ALL_PROTOCOLS,
    deviations: Sequence[Deviation] = tuple(Deviation),
    M: int = 4,
    total_ops: int = 4000,
    warmup: int = 800,
    replications: int = 3,
    seed: int = 0,
    mean_gap: float = 25.0,
) -> ValidationReport:
    """Run the full analytical-vs-simulation matrix.

    Each cell runs ``replications`` independent simulations (different
    seeds) and pools the measured ``acc`` into a confidence interval.
    """
    report = ValidationReport(params=params)
    for deviation in deviations:
        for protocol in protocols:
            analytic = analytical_acc(protocol, params, deviation)
            samples = []
            for r in range(replications):
                workload = SyntheticWorkload(params, deviation, M=M)
                system = DSMSystem(protocol, N=params.N, M=M,
                                   S=params.S, P=params.P)
                result = system.run_workload(
                    workload,
                    RunConfig(ops=total_ops, warmup=warmup,
                              seed=seed + 7919 * r, mean_gap=mean_gap),
                )
                samples.append(result.acc)
            if len(samples) >= 2:
                ci = mean_confidence_interval(samples)
            else:
                ci = MeanCI(samples[0], 0.0, 0.95, 1)
            report.rows.append(
                ValidationRow(protocol, deviation, analytic, ci)
            )
    return report


def render_markdown(report: ValidationReport) -> str:
    """Render a validation report as a markdown table."""
    lines = [
        "# Analytical vs simulation validation",
        "",
        f"Parameters: `{report.params}`",
        "",
        "| protocol | deviation | analytic | simulated (95% CI) | disc % |",
        "|---|---|---:|---:|---:|",
    ]
    for r in report.rows:
        ci = f"{r.simulated.mean:.2f} ± {r.simulated.half_width:.2f}"
        disc = ("—" if not np.isfinite(r.discrepancy_pct)
                else f"{r.discrepancy_pct:+.2f}")
        lines.append(
            f"| {r.protocol} | {r.deviation.short_name} | "
            f"{r.analytic:.2f} | {ci} | {disc} |"
        )
    lines += [
        "",
        f"Max |discrepancy|: **{report.max_abs_discrepancy_pct:.2f}%** "
        f"(paper band: ±8%); all cells consistent: "
        f"**{report.all_consistent}**",
    ]
    return "\n".join(lines)
