"""Validation of the analytic model against the simulator (Table 7)."""

from .compare import CellResult, ComparisonTable, compare_cell, comparison_table
from .report import (
    ValidationReport,
    ValidationRow,
    full_validation,
    render_markdown,
)
from .statistics import MeanCI, mean_confidence_interval, replicate

__all__ = [
    "CellResult",
    "ComparisonTable",
    "compare_cell",
    "comparison_table",
    "ValidationReport",
    "ValidationRow",
    "full_validation",
    "render_markdown",
    "MeanCI",
    "mean_confidence_interval",
    "replicate",
]
