"""The one-stop programmatic facade (``repro.api``).

Five verbs cover the everyday uses of this reproduction without touching
its internals:

* :func:`acc` — the paper's analytic cost of one protocol at one point;
* :func:`rank` — every protocol sorted by that cost at one point;
* :func:`simulate` — one discrete-event run of a protocol at one point;
* :func:`load_scenario` / :func:`run_scenario` — the declarative
  scenario catalog (:mod:`repro.scenarios`).

Every function accepts plain dicts (and short deviation aliases
``"read"`` / ``"write"`` / ``"mac"``) wherever the underlying API takes a
value object, so the facade is usable straight from a REPL or a JSON
config::

    from repro import api

    api.acc("berkeley", {"N": 8, "p": 0.2, "a": 3, "sigma": 0.1})
    api.rank({"N": 8, "p": 0.2, "a": 3, "sigma": 0.1})[0]
    api.simulate("berkeley", {"N": 8, "p": 0.2, "a": 3, "sigma": 0.1},
                 run={"ops": 2000, "seed": 7}).acc
    api.run_scenario("smoke-table7", workers=4)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from .core.acc import analytical_acc
from .core.comparison import rank_protocols
from .core.parameters import Deviation, WorkloadParams
from .exp.runner import SweepResult
from .protocols.registry import get_protocol, protocol_names
from .scenarios.loader import default_catalog_dir, load_scenario
from .scenarios.runner import run_scenario as _run_scenario
from .scenarios.schema import DEVIATIONS, Scenario
from .sim.config import RunConfig
from .sim.system import DSMSystem, SimulationResult
from .workloads.synthetic import SyntheticWorkload

__all__ = [
    "acc",
    "list_scenarios",
    "load_scenario",
    "rank",
    "run_scenario",
    "simulate",
]

ParamsLike = Union[WorkloadParams, Dict]
DeviationLike = Union[Deviation, str]
RunLike = Union[RunConfig, Dict, None]


def _params(params: ParamsLike) -> WorkloadParams:
    if isinstance(params, WorkloadParams):
        return params
    data = dict(params)
    data.setdefault("p", 0.0)
    return WorkloadParams.from_dict(data)


def _deviation(deviation: DeviationLike) -> Deviation:
    if isinstance(deviation, Deviation):
        return deviation
    try:
        return DEVIATIONS[deviation]
    except KeyError:
        raise ValueError(
            f"unknown deviation {deviation!r}; expected one of "
            f"{sorted(set(DEVIATIONS))}"
        ) from None


def _run_config(run: RunLike) -> RunConfig:
    if run is None:
        return RunConfig()
    if isinstance(run, RunConfig):
        return run
    return RunConfig.from_dict(run)


def acc(
    protocol: str,
    params: ParamsLike,
    deviation: DeviationLike = Deviation.READ,
    method: str = "auto",
) -> float:
    """The paper's analytic average communication cost per operation.

    Args:
        protocol: registry or display name (resolved via
            :func:`~repro.protocols.get_protocol`).
        params: a :class:`WorkloadParams` or a plain dict of its fields
            (``p`` defaults to ``0``).
        deviation: a :class:`Deviation` or one of the aliases ``"read"``,
            ``"write"``, ``"mac"``.
        method: ``"auto"`` / ``"closed_form"`` / ``"markov"``.
    """
    return analytical_acc(
        get_protocol(protocol).name, _params(params),
        _deviation(deviation), method,
    )


def rank(
    params: ParamsLike,
    deviation: DeviationLike = Deviation.READ,
    protocols: Optional[List[str]] = None,
) -> List[Tuple[str, float]]:
    """Protocols sorted by ascending analytic cost at one point.

    ``protocols`` defaults to the paper's eight; names are resolved via
    :func:`~repro.protocols.get_protocol` so display names work too.
    """
    names = (protocol_names() if protocols is None
             else [get_protocol(p).name for p in protocols])
    return rank_protocols(_params(params), _deviation(deviation), names)


def simulate(
    protocol: str,
    params: ParamsLike,
    deviation: DeviationLike = Deviation.READ,
    run: RunLike = None,
    M: int = 20,
) -> SimulationResult:
    """One discrete-event simulation run of ``protocol`` at one point.

    Builds the :class:`DSMSystem` from the run configuration (fault and
    partition plans, reliability, failover, monitor and tracing all
    apply) and drives it with the synthetic workload of ``deviation``.

    Args:
        run: a :class:`RunConfig`, a plain dict of its fields, or
            ``None`` for the defaults (``ops=4000``, ``seed=0``).
        M: number of shared objects in the simulated system.
    """
    spec = get_protocol(protocol)
    workload_params = _params(params)
    config = _run_config(run)
    system = DSMSystem.from_config(spec.name, workload_params, config, M=M)
    workload = SyntheticWorkload(workload_params, _deviation(deviation), M=M)
    return system.run_workload(workload, config)


def list_scenarios(catalog=None) -> List[str]:
    """Scenario names in ``catalog`` (default: the discovered catalog).

    Returns ``[]`` when no catalog directory exists.
    """
    from .scenarios.loader import ScenarioCatalog

    if catalog is None:
        catalog = default_catalog_dir()
        if catalog is None:
            return []
    if not isinstance(catalog, ScenarioCatalog):
        catalog = ScenarioCatalog(catalog)
    return catalog.names()


def run_scenario(
    scenario: Union[Scenario, str],
    *,
    catalog=None,
    cells: Optional[int] = None,
    workers: int = 1,
    cache=None,
    out_path=None,
    progress=None,
    registry=None,
) -> SweepResult:
    """Run a scenario — by object, catalog name, or file path.

    Strings are resolved via :func:`load_scenario` (catalog name or
    ``.json``/``.toml`` path); the run then flows through the standard
    sweep engine (``workers``/``cache``/``out_path`` as in
    :func:`repro.exp.run_sweep`, ``cells`` truncates for smoke runs).
    """
    if not isinstance(scenario, Scenario):
        scenario = load_scenario(scenario, catalog=catalog)
    return _run_scenario(
        scenario, cells=cells, workers=workers, cache=cache,
        out_path=out_path, progress=progress, registry=registry,
    )
