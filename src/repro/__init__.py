"""repro — reproduction of Srbljic & Budin (HPDC 1993),
"Analytical Performance Evaluation of Data Replication Based Shared Memory
Model".

The package provides:

* :mod:`repro.core` — the analytic model: five-parameter workloads, trace
  cost calculus, exact Markov evaluation, closed forms, characteristic
  surfaces, crossover lines (the paper's primary contribution);
* :mod:`repro.machines` — the formal Mealy-machine protocol model
  (Section 3, Tables 1-4);
* :mod:`repro.protocols` — the eight data-replication coherence protocols;
* :mod:`repro.sim` — the message-passing distributed-system simulator;
* :mod:`repro.workloads` — synthetic and trace-replay workload generators;
* :mod:`repro.validation` — analytical-vs-simulation comparison (Table 7);
* :mod:`repro.exp` — the parallel sweep engine with result caching;
* :mod:`repro.obs` — observability: structured tracing, a metrics
  registry, wall-clock profiling and Chrome-trace export;
* :mod:`repro.scenarios` — the declarative scenario catalog: whole
  studies as validated JSON/TOML documents with ``extends:`` inheritance;
* :mod:`repro.api` — the one-stop facade (:func:`~repro.api.acc`,
  :func:`~repro.api.rank`, :func:`~repro.api.simulate`,
  :func:`~repro.api.load_scenario`, :func:`~repro.api.run_scenario`);
* :mod:`repro.adaptive` — the self-tuning protocol-selection extension.

Quickstart (the facade)::

    from repro import api

    point = {"N": 8, "p": 0.2, "a": 3, "sigma": 0.1}
    api.acc("berkeley", point)            # analytic cost
    api.rank(point)[0]                    # cheapest protocol
    api.simulate("berkeley", point).acc   # simulated cost
    api.run_scenario("smoke-table7")      # a committed catalog entry

Quickstart (the underlying objects)::

    from repro import (
        Deviation, DSMSystem, RunConfig, WorkloadParams, analytical_acc,
    )
    from repro.workloads import read_disturbance_workload

    params = WorkloadParams(N=8, p=0.2, a=3, sigma=0.1, S=100, P=30)
    predicted = analytical_acc("berkeley", params, Deviation.READ)

    system = DSMSystem("berkeley", N=8, S=100, P=30)
    measured = system.run_workload(
        read_disturbance_workload(params),
        RunConfig(ops=4000, warmup=500, seed=0),
    ).acc

Grid-shaped experiments go through the sweep engine::

    from repro.exp import SweepSpec, run_sweep
"""

__version__ = "1.5.0"

from .core import (
    ALL_PROTOCOLS,
    Deviation,
    WorkloadParams,
    acc_table,
    analytical_acc,
    best_protocol,
    closed_form_acc,
    has_closed_form,
    ideal_acc,
    markov_acc,
    rank_protocols,
)
from .obs import (
    MetricsRegistry,
    Profiler,
    TraceConfig,
    Tracer,
    write_chrome_trace,
)
from .protocols import (
    PROTOCOLS,
    UnknownProtocolError,
    all_protocol_names,
    get_protocol,
    protocol_names,
)
from .sim import (
    ConsistencyMonitor,
    ConsistencyViolation,
    CrashWindow,
    DeliveryViolation,
    DSMSystem,
    FaultPlan,
    LinkFault,
    PartitionPlan,
    ReliabilityConfig,
    RunConfig,
    SimulationResult,
)
from .validation import compare_cell, comparison_table

# imported last: repro.exp.cache reads ``repro.__version__`` for its cache
# keys, so the version (and the names above) must already be bound.
from .exp import (  # noqa: E402
    ResultCache,
    SweepCell,
    SweepRunner,
    SweepSpec,
    run_sweep,
)
from .scenarios import (  # noqa: E402  (imports repro.exp)
    Scenario,
    ScenarioCatalog,
    ScenarioError,
)
from . import api  # noqa: E402  (imports repro.scenarios)
from .api import load_scenario, run_scenario  # noqa: E402

__all__ = [
    "ALL_PROTOCOLS",
    "Deviation",
    "WorkloadParams",
    "acc_table",
    "analytical_acc",
    "best_protocol",
    "closed_form_acc",
    "has_closed_form",
    "ideal_acc",
    "markov_acc",
    "rank_protocols",
    "MetricsRegistry",
    "Profiler",
    "TraceConfig",
    "Tracer",
    "write_chrome_trace",
    "PROTOCOLS",
    "UnknownProtocolError",
    "all_protocol_names",
    "get_protocol",
    "protocol_names",
    "ConsistencyMonitor",
    "ConsistencyViolation",
    "CrashWindow",
    "DeliveryViolation",
    "DSMSystem",
    "FaultPlan",
    "LinkFault",
    "PartitionPlan",
    "ReliabilityConfig",
    "RunConfig",
    "SimulationResult",
    "compare_cell",
    "comparison_table",
    "ResultCache",
    "SweepCell",
    "SweepRunner",
    "SweepSpec",
    "run_sweep",
    "Scenario",
    "ScenarioCatalog",
    "ScenarioError",
    "api",
    "load_scenario",
    "run_scenario",
    "__version__",
]
