"""The unified run configuration shared by every entry point.

Historically the repo grew three inconsistent dialects for saying "run a
workload": ``DSMSystem.run_workload(num_ops=..., warmup=..., seed=...)``,
``validation.compare_cell(total_ops=..., warmup=..., seed=...)`` and
per-script argument plumbing in the benchmarks and the CLI.
:class:`RunConfig` collapses them into one keyword-only value object that
every consumer — :meth:`repro.sim.system.DSMSystem.run_workload`,
:func:`repro.validation.compare.compare_cell`, ``python -m repro`` and the
sweep engine (:mod:`repro.exp`) — accepts verbatim.

A :class:`RunConfig` is immutable, hashable-by-content through
:meth:`to_dict` (the sweep engine's result cache keys on it), and fully
round-trippable through :meth:`from_dict` so worker processes can rebuild
it from a plain-JSON payload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple

from ..obs.trace import TraceConfig
from ..util import reject_unknown_keys
from .cache import CacheConfig
from .faults import FaultPlan
from .hedge import HedgeConfig
from .partition import PartitionPlan
from .reconfig import ReconfigPlan
from .reliable import ReliabilityConfig

__all__ = ["RunConfig"]


def _canonical_weights(weights) -> Optional[Tuple[Tuple[int, float], ...]]:
    """Canonicalize quorum vote weights to sorted ``(node, weight)`` pairs.

    Accepts a mapping or pair iterable; validates nodes and weights.
    All-default weights (every named node weighing 1) collapse to
    ``None`` — they drive a run bit-identical to the unweighted count
    majority, and the serialization must be canonical for the cache.
    """
    if weights is None:
        return None
    items = weights.items() if hasattr(weights, "items") else weights
    out: Dict[int, float] = {}
    for node, weight in items:
        node = int(node)
        weight = float(weight)
        if node < 1:
            raise ValueError(f"quorum weight node must be >= 1, got {node}")
        if node in out:
            raise ValueError(f"duplicate quorum weight for node {node}")
        if not (weight > 0 and math.isfinite(weight)):
            raise ValueError(
                f"quorum weight for node {node} must be a positive "
                f"finite number, got {weight}"
            )
        out[node] = weight
    if not out or all(w == 1.0 for w in out.values()):
        return None
    return tuple(sorted(out.items()))


@dataclass(frozen=True, kw_only=True)
class RunConfig:
    """Everything that parameterizes one workload run (keyword-only).

    Args:
        ops: total operations to issue, including warm-up.
        warmup: completions to discard before measuring; ``None`` means
            ``ops // 4`` (the CLI's historical default).
        seed: RNG seed for arrivals and workload sampling; ``None`` runs
            unseeded (non-reproducible).
        mean_gap: mean Poisson inter-arrival gap in units of channel
            latency.
        max_events: event-count safety net for the scheduler.
        faults: optional :class:`FaultPlan`; ``None`` keeps the
            paper-faithful fault-free fabric.
        partitions: optional :class:`PartitionPlan` of link-level faults
            (timed, possibly asymmetric cuts and per-link overrides) plus
            the failure-detector knobs; layered over ``faults``.
        reliability: optional :class:`ReliabilityConfig`; defaults are
            applied when ``faults`` or ``partitions`` is given without
            one.
        failover: enable sequencer failover (deterministic standby
            election when the current sequencer crashes); only meaningful
            together with a fault plan containing crash windows.
        monitor: attach the runtime consistency monitor and report
            violations on the run result.
        tracing: optional :class:`~repro.obs.TraceConfig`; attaches a
            structured tracer to the run (``SimulationResult.tracer``).
            Tracing never changes simulation results — it only observes —
            but it is carried in the canonical serialization so worker
            processes rebuild it faithfully.
        reconfig: optional :class:`~repro.sim.reconfig.ReconfigPlan`
            scheduling online replica-set membership changes (quorum
            protocols only); ``None`` — or a plan with no changes —
            keeps the static membership.
        quorum_weights: optional per-node vote weights for the quorum
            family, as a mapping or ``(node, weight)`` pairs (unnamed
            nodes weigh 1).  Canonicalized to a sorted pair tuple;
            all-default weights collapse to ``None``.
        hedge: optional :class:`~repro.sim.hedge.HedgeConfig` arming
            hedged quorum requests (quorum protocols only); ``None``
            keeps every phase waiting on its primary quorum.
        cache: optional :class:`~repro.sim.cache.CacheConfig` bounding
            each client to a fixed number of resident replica copies
            (partial replication); ``None`` keeps the paper's full
            replication.
    """

    ops: int = 4000
    warmup: Optional[int] = None
    seed: Optional[int] = 0
    mean_gap: float = 25.0
    max_events: int = 50_000_000
    faults: Optional[FaultPlan] = None
    partitions: Optional[PartitionPlan] = None
    reliability: Optional[ReliabilityConfig] = None
    failover: bool = False
    monitor: bool = False
    tracing: Optional[TraceConfig] = None
    reconfig: Optional[ReconfigPlan] = None
    quorum_weights: Optional[Tuple[Tuple[int, float], ...]] = None
    hedge: Optional[HedgeConfig] = None
    cache: Optional[CacheConfig] = None

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise ValueError(f"ops must be >= 1, got {self.ops}")
        if self.warmup is not None and not (0 <= self.warmup < self.ops):
            raise ValueError(
                f"warmup must satisfy 0 <= warmup < ops, got "
                f"warmup={self.warmup}, ops={self.ops}"
            )
        if self.mean_gap <= 0:
            raise ValueError(f"mean_gap must be positive, got {self.mean_gap}")
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")
        # a no-fault plan is the same as no plan (pay-for-what-you-use)
        if self.faults is not None and self.faults.is_none:
            object.__setattr__(self, "faults", None)
        if self.partitions is not None and self.partitions.is_none:
            object.__setattr__(self, "partitions", None)
        if self.tracing is not None and not isinstance(self.tracing, TraceConfig):
            raise TypeError(
                f"tracing must be a TraceConfig or None, got "
                f"{type(self.tracing).__name__}"
            )
        # a no-change reconfiguration plan is the same as no plan
        if self.reconfig is not None and self.reconfig.is_none:
            object.__setattr__(self, "reconfig", None)
        if self.hedge is not None and not isinstance(self.hedge,
                                                     HedgeConfig):
            raise TypeError(
                f"hedge must be a HedgeConfig or None, got "
                f"{type(self.hedge).__name__}"
            )
        if self.cache is not None and not isinstance(self.cache,
                                                     CacheConfig):
            raise TypeError(
                f"cache must be a CacheConfig or None, got "
                f"{type(self.cache).__name__}"
            )
        object.__setattr__(
            self, "quorum_weights",
            _canonical_weights(self.quorum_weights),
        )

    @property
    def resolved_warmup(self) -> int:
        """The effective warm-up count (``ops // 4`` when unset)."""
        return self.warmup if self.warmup is not None else self.ops // 4

    @property
    def resolved_reliability(self) -> Optional[ReliabilityConfig]:
        """The effective reliability config (defaults under a fault plan)."""
        if self.reliability is not None:
            return self.reliability
        if (self.faults is not None or self.partitions is not None
                or self.reconfig is not None):
            return ReliabilityConfig()
        return None

    def with_(self, **changes: Any) -> "RunConfig":
        """Return a copy with the given fields replaced (validates again)."""
        return replace(self, **changes)

    def describe_robustness(self) -> str:
        """The full robustness configuration, one labelled line per layer.

        Historically the CLI banner assembled this piecemeal — the
        degraded-mode policy and detector knobs only surfaced through
        ``partitions.describe()`` and the failover/monitor switches and
        the *resolved* retry policy (which defaults silently whenever a
        fault or partition plan is present) were not shown at all.  This
        method is the single place that renders everything that makes a
        run robust (or deliberately not): fault plan, partition plan with
        detector and degraded-mode policy, effective reliable-delivery
        retry policy, failover, and the consistency monitor.
        """
        lines = [
            "faults:      " + (self.faults.describe()
                               if self.faults is not None else "none"),
            "partitions:  " + (self.partitions.describe()
                               if self.partitions is not None else "none"),
        ]
        reliability = self.resolved_reliability
        if reliability is not None:
            lines.append(
                f"reliability: timeout={reliability.timeout:g}, "
                f"backoff={reliability.backoff:g}, "
                f"max_retries={reliability.max_retries}"
                + ("" if self.reliability is not None else " (defaulted)")
            )
        else:
            lines.append("reliability: none (paper-faithful fabric)")
        if self.reconfig is not None:
            lines.append("reconfig:    " + self.reconfig.describe())
        if self.quorum_weights is not None:
            lines.append("weights:     " + ", ".join(
                f"{node}={weight:g}" for node, weight in self.quorum_weights
            ))
        if self.hedge is not None:
            lines.append("hedge:       " + self.hedge.describe())
        if self.cache is not None:
            lines.append("cache:       " + self.cache.describe())
        lines.append("failover:    " + ("on" if self.failover else "off"))
        lines.append("monitor:     " + ("on" if self.monitor else "off"))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # canonical serialization (cache keys, worker payloads)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON dict that identifies this configuration.

        The dict is *canonical*: two configs that would drive bit-identical
        runs serialize identically (the ``warmup=None`` shorthand is
        resolved, a no-fault plan collapses to ``None``), so it is safe to
        hash for the sweep engine's result cache.
        """
        data: Dict[str, Any] = {
            "ops": int(self.ops),
            "warmup": int(self.resolved_warmup),
            "seed": None if self.seed is None else int(self.seed),
            "mean_gap": float(self.mean_gap),
            "max_events": int(self.max_events),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "partitions": (
                None if self.partitions is None
                else self.partitions.to_dict()
            ),
            "reliability": (
                None if self.reliability is None
                else self.reliability.to_dict()
            ),
            "failover": bool(self.failover),
            "monitor": bool(self.monitor),
            "tracing": (
                None if self.tracing is None else self.tracing.to_dict()
            ),
        }
        # pay-for-what-you-use: the reconfiguration and vote-weight keys
        # appear only when configured, so every pre-existing config — and
        # every cell id, cache key and committed baseline row hashed from
        # it — stays byte-identical to the static-membership era.
        if self.reconfig is not None:
            data["reconfig"] = self.reconfig.to_dict()
        if self.quorum_weights is not None:
            data["quorum_weights"] = [
                [int(n), float(w)] for n, w in self.quorum_weights
            ]
        if self.hedge is not None:
            data["hedge"] = self.hedge.to_dict()
        if self.cache is not None:
            data["cache"] = self.cache.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Every key must be understood: an unknown key raises
        ``ValueError`` (with a did-you-mean suggestion) instead of being
        silently dropped, so a stale scenario file or payload cannot
        half-apply.  Missing keys take the dataclass defaults.
        """
        reject_unknown_keys(
            data,
            ("ops", "warmup", "seed", "mean_gap", "max_events", "faults",
             "partitions", "reliability", "failover", "monitor", "tracing",
             "reconfig", "quorum_weights", "hedge", "cache"),
            "RunConfig",
        )
        faults = data.get("faults")
        partitions = data.get("partitions")
        reliability = data.get("reliability")
        tracing = data.get("tracing")
        reconfig = data.get("reconfig")
        quorum_weights = data.get("quorum_weights")
        hedge = data.get("hedge")
        cache = data.get("cache")
        return cls(
            ops=int(data.get("ops", 4000)),
            warmup=data.get("warmup"),
            seed=data.get("seed", 0),
            mean_gap=float(data.get("mean_gap", 25.0)),
            max_events=int(data.get("max_events", 50_000_000)),
            faults=None if faults is None else FaultPlan.from_dict(faults),
            partitions=(
                None if partitions is None
                else PartitionPlan.from_dict(partitions)
            ),
            reliability=(
                None if reliability is None
                else ReliabilityConfig.from_dict(reliability)
            ),
            failover=bool(data.get("failover", False)),
            monitor=bool(data.get("monitor", False)),
            tracing=(
                None if tracing is None else TraceConfig.from_dict(tracing)
            ),
            reconfig=(
                None if reconfig is None
                else ReconfigPlan.from_dict(reconfig)
            ),
            quorum_weights=(
                None if quorum_weights is None
                else tuple((int(n), float(w)) for n, w in quorum_weights)
            ),
            hedge=(
                None if hedge is None else HedgeConfig.from_dict(hedge)
            ),
            cache=(
                None if cache is None else CacheConfig.from_dict(cache)
            ),
        )
