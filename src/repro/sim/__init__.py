"""Discrete-event simulator of the replicated shared-memory system
(paper Sections 2 and 5.2): event engine, FIFO fabric, nodes with
local/distributed queues, cost metrics, and the :class:`DSMSystem` facade."""

from .channel import Network
from .locks import LockClient, LockManager
from .pool import ReplicaPool
from .engine import EventScheduler
from .metrics import Metrics, OpRecord
from .node import ObjectPort, SimNode
from .system import DSMSystem, SimulationResult

__all__ = [
    "Network",
    "LockClient",
    "LockManager",
    "ReplicaPool",
    "EventScheduler",
    "Metrics",
    "OpRecord",
    "ObjectPort",
    "SimNode",
    "DSMSystem",
    "SimulationResult",
]
