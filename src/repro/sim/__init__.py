"""Discrete-event simulator of the replicated shared-memory system
(paper Sections 2 and 5.2): event engine, FIFO fabric, nodes with
local/distributed queues, cost metrics, and the :class:`DSMSystem` facade —
plus the robustness extensions: seeded fault injection
(:mod:`repro.sim.faults`), the reliable exactly-once FIFO delivery layer
(:mod:`repro.sim.reliable`), crash recovery with replica resynchronization
and sequencer failover (:mod:`repro.sim.recovery`), and the runtime
consistency monitor (:mod:`repro.sim.monitor`)."""

from .cache import CACHE_POLICIES, CacheConfig, ReplicaCache
from .channel import Network
from .config import RunConfig
from .engine import EventScheduler, TimerHandle
from .faults import CRASH_SEMANTICS, CrashWindow, FaultPlan, SlowWindow
from .hedge import HedgeConfig
from .locks import LockClient, LockManager
from .metrics import (
    Metrics,
    OpRecord,
    PartitionStats,
    ReconfigStats,
    RecoveryStats,
    ReliabilityStats,
    ReplicaCacheStats,
)
from .monitor import ConsistencyMonitor, ConsistencyViolation
from .node import ClusterView, ObjectPort, SimNode
from .partition import (
    PARTITION_POLICIES,
    FailureDetector,
    LinkFault,
    PartitionPlan,
)
from .pool import ReplicaPool
from .reconfig import (
    MembershipChange,
    MembershipView,
    ReconfigManager,
    ReconfigPlan,
)
from .recovery import RecoveryManager, WriteLog
from .reliable import (
    DeliveryViolation,
    Frame,
    ReliabilityConfig,
    ReliableNetwork,
)
from .system import DSMSystem, SimulationResult

__all__ = [
    "CACHE_POLICIES",
    "CacheConfig",
    "ReplicaCache",
    "ReplicaCacheStats",
    "Network",
    "RunConfig",
    "LockClient",
    "LockManager",
    "ReplicaPool",
    "EventScheduler",
    "TimerHandle",
    "CRASH_SEMANTICS",
    "CrashWindow",
    "FaultPlan",
    "SlowWindow",
    "HedgeConfig",
    "DeliveryViolation",
    "Frame",
    "ReliabilityConfig",
    "ReliableNetwork",
    "PARTITION_POLICIES",
    "FailureDetector",
    "LinkFault",
    "PartitionPlan",
    "Metrics",
    "OpRecord",
    "PartitionStats",
    "ReconfigStats",
    "RecoveryStats",
    "ReliabilityStats",
    "MembershipChange",
    "MembershipView",
    "ReconfigManager",
    "ReconfigPlan",
    "ClusterView",
    "ConsistencyMonitor",
    "ConsistencyViolation",
    "ObjectPort",
    "SimNode",
    "RecoveryManager",
    "WriteLog",
    "DSMSystem",
    "SimulationResult",
]
