"""Discrete-event simulator of the replicated shared-memory system
(paper Sections 2 and 5.2): event engine, FIFO fabric, nodes with
local/distributed queues, cost metrics, and the :class:`DSMSystem` facade —
plus the robustness extensions: seeded fault injection
(:mod:`repro.sim.faults`) and the reliable exactly-once FIFO delivery layer
(:mod:`repro.sim.reliable`)."""

from .channel import Network
from .config import RunConfig
from .engine import EventScheduler, TimerHandle
from .faults import CrashWindow, FaultPlan
from .locks import LockClient, LockManager
from .metrics import Metrics, OpRecord, ReliabilityStats
from .node import ObjectPort, SimNode
from .pool import ReplicaPool
from .reliable import Frame, ReliabilityConfig, ReliableNetwork
from .system import DSMSystem, SimulationResult

__all__ = [
    "Network",
    "RunConfig",
    "LockClient",
    "LockManager",
    "ReplicaPool",
    "EventScheduler",
    "TimerHandle",
    "CrashWindow",
    "FaultPlan",
    "Frame",
    "ReliabilityConfig",
    "ReliableNetwork",
    "Metrics",
    "OpRecord",
    "ReliabilityStats",
    "ObjectPort",
    "SimNode",
    "DSMSystem",
    "SimulationResult",
]
