"""Bounded replica caches: partial replication with pluggable eviction.

The paper assumes *full replication*: every client holds a copy of every
object, so ``acc`` never pays a capacity miss.  This module relaxes that
(ROADMAP item 4): a :class:`CacheConfig` bounds each client to at most
``capacity`` resident object copies, managed by a seed-deterministic
eviction policy:

``lru``
    evict the least-recently-used unpinned copy (ties — e.g. copies
    never touched since install — broken by a seeded hash rank).
``clock``
    the classic second-chance ring: a reference bit per copy, a hand
    that sweeps the ring clearing bits and evicts the first copy found
    with its bit already clear.
``cost_aware``
    GreedyDual: each touch sets the copy's retention credit to the
    current inflation level ``L`` plus its estimated refetch cost (a
    dirty copy is worth its write-back *and* its refetch); eviction
    takes the cheapest copy and inflates ``L`` to its credit, so
    recently-touched *and* expensive-to-restore copies survive.

Eviction goes through the protocol's own ``EJECT`` operation, so each
family pays its true price: write-through drops clean copies for free,
directory protocols send a one-token departure notice, and the
write-back family (Write-Once / Synapse / Illinois ``DIRTY`` copies)
flushes the dirty value home with a ``WB`` + user-information message.
Pinned states (:data:`~repro.sim.pool.PINNED_STATES` — e.g. a Berkeley
owner) are never selected.  A later access to an evicted object is a
*capacity miss*: the protocol re-fetches the copy (sequencer snapshot
for the star family, a majority read round for SC-ABD) and the refetch
is charged to a dedicated ``cache`` share of
:meth:`~repro.sim.metrics.Metrics.average_cost_breakdown`.

SC-ABD runs the cache in *overlay* mode: quorum replicas are
load-bearing (the protocol refuses ejects), so the cache tracks its own
resident-set bookkeeping, evictions are free, and capacity-missed reads
are reclassified — total acc stays flat in ``capacity``, which is
exactly the cache-coherent-vs-DSM separation studied by Golab
(PAPERS.md).

Interaction with faults: evicted is **not** invalidated.  Crash
recovery, partition rejoin and epoch resets must not resurrect an
evicted copy — the recovery manager consults :meth:`ReplicaCache.
is_evicted` and skips those objects when warm-installing and when
pricing resync snapshots, so a bounded cache also bounds what a
rejoining node pays to warm up.

Pay-for-what-you-use: ``CacheConfig`` rides on
:class:`~repro.sim.config.RunConfig` under a key only serialized when
caching is configured, so every pre-existing cell id, cache key and
committed baseline stays byte-identical.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set

from ..protocols.base import EJECT, READ, WRITE, Operation
from ..util import did_you_mean, reject_unknown_keys
from .pool import PINNED_STATES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import SimNode

__all__ = ["CACHE_POLICIES", "DIRTY_STATES", "CacheConfig", "ReplicaCache"]

#: recognized eviction policy names, in documentation order
CACHE_POLICIES = ("lru", "clock", "cost_aware")

#: client states whose eviction must flush the copy home (``WB`` + user
#: information): the write-back family's dirty bit.  Berkeley's and
#: Dragon's dirty states are the object's backing copy — pinned via
#: :data:`~repro.sim.pool.PINNED_STATES`, never evicted, never flushed.
DIRTY_STATES = {
    "write_once": frozenset({"DIRTY"}),
    "synapse": frozenset({"DIRTY"}),
    "illinois": frozenset({"DIRTY"}),
}

#: the one client state every star protocol uses for "no copy resident"
_NON_RESIDENT = frozenset({"INVALID"})


def _tie_rank(seed: int, obj: int) -> int:
    """Seeded deterministic total order over objects for tie-breaking."""
    digest = hashlib.sha256(f"{seed}:{obj}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class CacheConfig:
    """Configuration of bounded per-client replica caches.

    Args:
        capacity: most object copies one client may hold resident; the
            paper's full replication is the ``capacity >= M`` limit.
        policy: eviction policy name, one of :data:`CACHE_POLICIES`.
        seed: seed for deterministic tie-breaking inside the policy,
            part of the configuration identity like every plan seed.
    """

    def __init__(self, capacity: int = 4, policy: str = "lru",
                 seed: int = 0) -> None:
        if capacity < 1:
            raise ValueError(
                f"cache capacity must be at least 1, got {capacity}"
            )
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}"
                f"{did_you_mean(str(policy), CACHE_POLICIES)}; "
                f"choose from: {', '.join(CACHE_POLICIES)}"
            )
        self.capacity = int(capacity)
        self.policy = str(policy)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # configuration identity and serialization
    # ------------------------------------------------------------------

    def config_key(self) -> tuple:
        return (self.capacity, self.policy, self.seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheConfig):
            return NotImplemented
        return self.config_key() == other.config_key()

    def __hash__(self) -> int:
        return hash(self.config_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheConfig({self.describe()})"

    def to_dict(self) -> dict:
        return {
            "capacity": int(self.capacity),
            "policy": str(self.policy),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheConfig":
        reject_unknown_keys(data, ("capacity", "policy", "seed"),
                            "CacheConfig")
        return cls(
            capacity=int(data.get("capacity", 4)),
            policy=str(data.get("policy", "lru")),
            seed=int(data.get("seed", 0)),
        )

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        return (f"capacity={self.capacity}, policy={self.policy}, "
                f"seed={self.seed}")


# ----------------------------------------------------------------------
# eviction policies
# ----------------------------------------------------------------------


class _LRUPolicy:
    """Least-recently-used with a monotone touch counter."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._clock = 0
        self._last_use: Dict[int, int] = {}

    def on_touch(self, obj: int, refetch_hint: float) -> None:
        self._clock += 1
        self._last_use[obj] = self._clock

    def pick_victim(self, candidates: Sequence[int]) -> int:
        return min(candidates, key=lambda o: (self._last_use.get(o, 0),
                                              _tie_rank(self._seed, o)))


class _ClockPolicy:
    """Second-chance ring: one reference bit per copy, a sweeping hand."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._ring: List[int] = []
        self._known: Set[int] = set()
        self._ref: Set[int] = set()
        self._hand = 0

    def _admit(self, obj: int) -> None:
        if obj not in self._known:
            self._known.add(obj)
            self._ring.append(obj)

    def on_touch(self, obj: int, refetch_hint: float) -> None:
        self._admit(obj)
        self._ref.add(obj)

    def pick_victim(self, candidates: Sequence[int]) -> int:
        live = set(candidates)
        # copies can be resident without ever having been touched (the
        # warm initial replicas): admit them in seeded-rank order.
        for obj in sorted(live, key=lambda o: _tie_rank(self._seed, o)):
            self._admit(obj)
        while True:
            obj = self._ring[self._hand % len(self._ring)]
            self._hand = (self._hand + 1) % len(self._ring)
            if obj not in live:
                continue
            if obj in self._ref:
                self._ref.discard(obj)
                continue
            return obj


class _CostAwarePolicy:
    """GreedyDual: retention credit = inflation level + refetch cost."""

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._level = 0.0
        self._credit: Dict[int, float] = {}

    def on_touch(self, obj: int, refetch_hint: float) -> None:
        self._credit[obj] = self._level + refetch_hint

    def pick_victim(self, candidates: Sequence[int]) -> int:
        victim = min(
            candidates,
            key=lambda o: (self._credit.get(o, self._level),
                           _tie_rank(self._seed, o)),
        )
        self._level = self._credit.get(victim, self._level)
        return victim


def _make_policy(config: CacheConfig):
    if config.policy == "lru":
        return _LRUPolicy(config.seed)
    if config.policy == "clock":
        return _ClockPolicy(config.seed)
    return _CostAwarePolicy(config.seed)


# ----------------------------------------------------------------------
# the per-node cache
# ----------------------------------------------------------------------


class ReplicaCache:
    """One client's bounded replica cache.

    Star protocols run in *residency* mode: the resident set is read off
    the protocol states (any state but ``INVALID`` is a copy), eviction
    issues the protocol's real ``EJECT`` operation (redirect-charged to
    the data operation whose completion forced it), and the recovery
    manager consults :meth:`is_evicted` so resync never resurrects an
    evicted copy.  Quorum protocols (SC-ABD) run in *overlay* mode: the
    replica set is load-bearing, so the cache keeps its own resident-set
    bookkeeping, evicts for free, and only reclassifies capacity-missed
    reads into the ``cache`` acc share.

    Enforcement is lazy — it runs when a data operation completes on the
    node — and skipped while the node is the current sequencer (home
    copies are the memory of record) or quarantined (its replicas are
    already stale and gated).

    Counter semantics (shared :class:`~repro.sim.metrics.
    ReplicaCacheStats`): a *hit* is a data operation dispatched with the
    copy resident; a *miss* is one dispatched without it; a *capacity
    miss* is the subset of misses on objects this cache evicted and has
    not re-accessed since.  Only the first access after an eviction is a
    capacity miss — later misses are protocol dynamics (e.g. a remote
    write invalidating everyone) that full replication would pay too.
    Capacity-missed *reads* are reclassified into the ``cache`` share;
    a write's distributed round is protocol-mandated for every protocol
    in the family, so its cost stays in the ``protocol`` share even when
    the reply re-installs the copy.
    """

    def __init__(self, config: CacheConfig, protocol: str,
                 node: "SimNode", S: float, P: float,
                 overlay: bool = False) -> None:
        self.config = config
        self.protocol = protocol
        self.node = node
        self.S = float(S)
        self.P = float(P)
        self.overlay = bool(overlay)
        self.pinned = PINNED_STATES.get(protocol, frozenset())
        self.dirty_states = DIRTY_STATES.get(protocol, frozenset())
        self.policy = _make_policy(config)
        #: objects this cache evicted and has not re-accessed since
        self.evicted: Set[int] = set()
        #: eject operations issued but not yet completed
        self._evicting: Set[int] = set()
        #: overlay mode only: the bookkept resident set
        self._resident: Set[int] = set()
        #: test-only mutation hook: dirty evictions flush a stale value
        self.sabotage_writeback = False

    # ------------------------------------------------------------------
    # hooks called by the node / port
    # ------------------------------------------------------------------

    def on_dispatch(self, op: Operation, state: str) -> None:
        """Classify a data operation as it leaves the local queue."""
        if op.kind not in (READ, WRITE):
            return
        stats = self.node.metrics.cache
        if self._is_resident(op.obj, state):
            stats.hits += 1
            return
        stats.misses += 1
        if op.obj in self.evicted:
            stats.capacity_misses += 1
            if op.kind == READ:
                self.node.metrics.mark_capacity_miss(op.op_id)

    def after_op(self, op: Operation) -> None:
        """Account a completed local operation and enforce capacity."""
        if op.kind == EJECT:
            self._evicting.discard(op.obj)
            self.evicted.add(op.obj)
            return
        if op.kind not in (READ, WRITE):
            return
        self.policy.on_touch(op.obj, self._refetch_hint(op.obj))
        # the eviction has been paid for (or absorbed by the protocol's
        # own dynamics): later misses on this object are not capacity.
        self.evicted.discard(op.obj)
        if self.overlay:
            self._resident.add(op.obj)
            self._enforce_overlay()
            return
        node = self.node
        if node.node_id == node.cluster.sequencer_id:
            return  # home copies are the memory of record: never evict
        if node.node_id in node.cluster.quarantined:
            return  # stale gated replicas: nothing worth evicting
        self._enforce(op.op_id)

    def is_evicted(self, obj: int) -> bool:
        """Recovery-side query: must resync skip this object?

        Only meaningful in residency (star) mode — overlay caches never
        remove load-bearing quorum replicas — and never for the current
        sequencer, whose copies are home copies regardless of history.
        """
        if self.overlay:
            return False
        if self.node.node_id == self.node.cluster.sequencer_id:
            return False
        return obj in self.evicted

    def resident_count(self) -> int:
        """Resident copies right now (for banners and tests)."""
        if self.overlay:
            return len(self._resident)
        return sum(
            1 for port in self.node.ports.values()
            if port.process.state not in _NON_RESIDENT
        )

    # ------------------------------------------------------------------
    # enforcement
    # ------------------------------------------------------------------

    def _is_resident(self, obj: int, state: str) -> bool:
        if self.overlay:
            return obj in self._resident
        return state not in _NON_RESIDENT

    def _refetch_hint(self, obj: int) -> float:
        """Estimated cost to restore this copy if evicted now."""
        cost = self.S + 2.0  # snapshot / majority-read refetch
        if not self.overlay:
            state = self.node.ports[obj].process.state
            if state in self.dirty_states:
                cost += self.S + 1.0  # plus the write-back to get out
        return cost

    def _enforce(self, trigger_id: int) -> None:
        node = self.node
        states = {obj: port.process.state for obj, port in node.ports.items()}
        resident = [obj for obj in sorted(states)
                    if states[obj] not in _NON_RESIDENT]
        pending = sum(1 for obj in resident if obj in self._evicting)
        excess = len(resident) - pending - self.config.capacity
        if excess <= 0:
            return
        candidates = [obj for obj in resident
                      if states[obj] not in self.pinned
                      and obj not in self._evicting]
        while excess > 0 and candidates:
            victim = self.policy.pick_victim(candidates)
            candidates.remove(victim)
            self._evict(victim, states[victim], trigger_id)
            excess -= 1

    def _evict(self, victim: int, state: str, trigger_id: int) -> None:
        stats = self.node.metrics.cache
        stats.evictions += 1
        dirty = state in self.dirty_states
        if dirty:
            stats.writebacks += 1
        if self.sabotage_writeback and dirty:
            # mutation hook: the eviction's write-back flushes a stale
            # garbage value, losing the dirty copy's writes.  The
            # consistency monitor must catch the resulting reads as
            # structured violations (the protocol itself stays live).
            self.node.ports[victim].process.value = -1
        self._evicting.add(victim)
        self.node.request_cache_eject(victim, trigger_id)

    def _enforce_overlay(self) -> None:
        stats = self.node.metrics.cache
        while len(self._resident) > self.config.capacity:
            victim = self.policy.pick_victim(sorted(self._resident))
            self._resident.discard(victim)
            self.evicted.add(victim)
            stats.evictions += 1
