"""Reliable exactly-once FIFO delivery over a faulty fabric.

:class:`ReliableNetwork` presents the same interface as
:class:`~repro.sim.channel.Network` (``attach`` / ``send`` /
``messages_sent``) but guarantees, for any drop rate below 1 within the
retry budget, that every protocol message is delivered **exactly once, in
per-channel FIFO order** — which is the contract the paper's protocol
processes assume (Section 2).  The mechanism is the classic positive-ack
transport:

* every inter-node protocol message is wrapped in a :class:`Frame` carrying
  a dense per-channel sequence number;
* the receiver acknowledges every data frame (acks are bare tokens, cost 1),
  suppresses duplicates, and parks out-of-order frames in a reorder buffer
  until the FIFO gap closes;
* the sender retransmits on an acknowledgement timeout with exponential
  backoff, up to a configurable retry budget; the retry timer is a
  cancellable :class:`~repro.sim.engine.TimerHandle`, cancelled when the
  ack arrives.

When the retry budget runs out the send is abandoned — the run **degrades
gracefully instead of hanging**: the failure is counted in
``Metrics.reliability.delivery_failures`` (with the operation id), the
channel past the hole stays wedged (FIFO cannot be preserved across a lost
message), and :meth:`DSMSystem.run_workload` reports the affected
operations as incomplete rather than deadlocking.

Cost accounting: the *first* transmission of a protocol message is charged
exactly as on the fault-free fabric (same cost class, same trace-signature
entry).  Retransmissions and acks are charged through
:meth:`Metrics.record_reliability_cost` — they inflate ``acc`` but are
tracked separately, so the reliability overhead can be broken out
(``Metrics.average_cost_breakdown``) and trace signatures stay comparable
to the paper's trace sets.  Intra-node sends bypass the transport entirely
(the paper counts them as free intra-node actions).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..machines.message import Message
from ..util import reject_unknown_keys
from ..util import backoff_delay
from .channel import Network
from .engine import EventScheduler, TimerHandle
from .faults import FaultPlan
from .metrics import Metrics
from .partition import PartitionPlan

__all__ = ["ReliabilityConfig", "DeliveryViolation", "Frame",
           "ReliableNetwork"]


@dataclass(frozen=True, slots=True)
class ReliabilityConfig:
    """Tuning knobs of the reliable-delivery layer.

    Args:
        timeout: base acknowledgement timeout (simulation time units; the
            default is four round trips at unit latency).
        backoff: exponential backoff multiplier applied per retry.
        max_retries: retry budget per frame; when exhausted the send is
            abandoned and surfaced in metrics (graceful degradation).
    """

    timeout: float = 8.0
    backoff: float = 2.0
    max_retries: int = 10

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )

    def to_dict(self) -> dict:
        """A plain-JSON dict (sweep-engine cache keys, worker payloads)."""
        return {
            "timeout": float(self.timeout),
            "backoff": float(self.backoff),
            "max_retries": int(self.max_retries),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReliabilityConfig":
        """Rebuild a config from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` instead of being silently
        dropped.
        """
        reject_unknown_keys(
            data, ("timeout", "backoff", "max_retries"), "ReliabilityConfig"
        )
        return cls(
            timeout=float(data.get("timeout", 8.0)),
            backoff=float(data.get("backoff", 2.0)),
            max_retries=int(data.get("max_retries", 10)),
        )


@dataclass(frozen=True, slots=True)
class DeliveryViolation:
    """A send abandoned after its retry budget ran out.

    Structured sibling of
    :class:`~repro.sim.monitor.ConsistencyViolation` (same
    ``kind``/``obj``/``detail`` reporting surface) collected on
    :attr:`ReliableNetwork.violations` and surfaced on
    ``SimulationResult.violations`` — retry-budget exhaustion is a
    reliability-contract violation worth a structured record, not just a
    counter: the channel past the hole is wedged and quiescent coherence
    is no longer guaranteed.
    """

    src: int
    dst: int
    seq: int
    op_id: Optional[int]
    obj: Optional[int]
    attempts: int
    time: float
    kind: str = "delivery"

    @property
    def detail(self) -> str:
        """Human-readable one-liner (CLI output)."""
        op = f"op {self.op_id}" if self.op_id is not None else "unattributed"
        return (
            f"channel {self.src}->{self.dst} seq {self.seq} ({op}) "
            f"abandoned after {self.attempts} retries at t={self.time:g}"
        )


@dataclass(frozen=True, slots=True)
class Frame:
    """Transport envelope carried by the physical fabric.

    ``kind`` is ``"data"`` (wraps a protocol :class:`Message`), ``"ack"``
    (bare acknowledgement token), ``"dgram"`` / ``"dack"`` (the unordered
    datagram mode used by quorum protocols) or ``"loop"`` (intra-node
    bypass).  The
    ``cost``/``src``/``dst`` surface lets a frame travel through
    :class:`~repro.sim.channel.Network` like any message.  ``epoch`` is
    the sender's view-change epoch (:meth:`ReliableNetwork.advance_epoch`);
    receivers drop frames from earlier epochs so traffic voided by a crash
    recovery cannot be delivered into the new view.
    """

    kind: str
    src: int
    dst: int
    seq: int
    msg: Optional[Message] = None
    op_id: Optional[int] = None
    epoch: int = 0

    def cost(self, S: float, P: float) -> float:
        """Inter-node communication cost of this frame."""
        if self.src == self.dst:
            return 0.0
        if self.kind == "ack" or self.kind == "dack":
            return 1.0  # a bare token (no parameters ride along)
        return self.msg.cost(S, P)


class _PendingSend:
    """Sender-side state for one unacknowledged data frame."""

    __slots__ = ("frame", "S", "P", "attempts", "timer")

    def __init__(self, frame: Frame, S: float, P: float):
        self.frame = frame
        self.S = S
        self.P = P
        self.attempts = 0
        self.timer: Optional[TimerHandle] = None


class ReliableNetwork:
    """Exactly-once FIFO delivery over a (possibly faulty) :class:`Network`.

    Drop-in replacement for :class:`Network` from the protocol layer's
    point of view.  ``messages_sent`` counts *physical* frames (first
    attempts, retransmissions and acks), which is what a real wire would
    carry.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        latency: float = 1.0,
        metrics: Optional[Metrics] = None,
        faults: Optional[FaultPlan] = None,
        partitions: Optional[PartitionPlan] = None,
        config: Optional[ReliabilityConfig] = None,
    ):
        self.scheduler = scheduler
        self.latency = latency
        self.metrics = metrics
        self.config = config if config is not None else ReliabilityConfig()
        self.physical = Network(
            scheduler,
            latency=latency,
            on_cost=None,  # this layer does its own cost attribution
            faults=faults,
            partitions=partitions,
            on_fault=self._on_physical_fault,
        )
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        #: structured retry-budget exhaustions (graceful degradation)
        self.violations: List[DeliveryViolation] = []
        #: live view of quarantined node ids (shared with the cluster view);
        #: sends addressed to them are absorbed instead of retried forever
        self.quarantined: Optional[Set[int]] = None
        #: current view-change epoch; frames stamped with an older epoch
        #: are dropped on receipt (see :meth:`advance_epoch`)
        self.epoch = 0
        # sender side: dense per-channel sequence numbers + in-flight frames
        self._send_seq: Dict[Tuple[int, int], int] = {}
        self._pending: Dict[Tuple[Tuple[int, int], int], _PendingSend] = {}
        # receiver side: next expected sequence + reorder buffer per channel
        self._expected: Dict[Tuple[int, int], int] = {}
        self._reorder: Dict[Tuple[int, int], Dict[int, Message]] = {}
        # unordered datagram mode (quorum protocols): its own sequence
        # space, pending map and receiver dedup sets — no FIFO gating, so
        # an abandoned datagram never wedges the channel behind it.
        self._dgram_seq: Dict[Tuple[int, int], int] = {}
        self._dgram_pending: Dict[Tuple[Tuple[int, int], int],
                                  _PendingSend] = {}
        self._dgram_seen: Dict[Tuple[int, int], Set[int]] = {}

    def _tracer(self):
        metrics = self.metrics
        return metrics.tracer if metrics is not None else None

    # ------------------------------------------------------------------
    # Network interface
    # ------------------------------------------------------------------

    @property
    def messages_sent(self) -> int:
        """Total physical frames sent (data + retransmissions + acks)."""
        return self.physical.messages_sent

    @property
    def faults(self) -> Optional[FaultPlan]:
        """The active fault plan (``None`` on a fault-free fabric)."""
        return self.physical.faults

    @property
    def partitions(self) -> Optional[PartitionPlan]:
        """The active link-fault plan (``None`` without partitions)."""
        return self.physical.partitions

    def attach(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Register the delivery handler for a node."""
        self._handlers[node_id] = handler
        self.physical.attach(node_id, self._on_frame)

    def send(self, msg: Message, S: float, P: float) -> float:
        """Send ``msg`` reliably; returns the first-attempt cost charged."""
        if msg.src == msg.dst:
            # intra-node: free and trivially reliable; bypass the transport.
            frame = Frame("loop", msg.src, msg.dst, 0, msg=msg,
                          op_id=msg.op_id)
            return self.physical.send(frame, S, P)
        if self.quarantined and msg.dst in self.quarantined:
            # the destination is quarantined out of the cluster view:
            # absorbing the send (no cost, no retries) is the whole point
            # of quarantine — the rejoin resync replays what it missed.
            if self.metrics is not None:
                self.metrics.partition.sends_absorbed += 1
                tracer = self.metrics.tracer
                if tracer is not None:
                    tracer.op_event("absorbed", msg.op_id, src=msg.src,
                                    dst=msg.dst, detail="quarantined dst")
            return 0.0
        channel = (msg.src, msg.dst)
        seq = self._send_seq.get(channel, 0) + 1
        self._send_seq[channel] = seq
        frame = Frame("data", msg.src, msg.dst, seq, msg=msg, op_id=msg.op_id,
                      epoch=self.epoch)
        pending = _PendingSend(frame, S, P)
        self._pending[(channel, seq)] = pending
        cost = frame.cost(S, P)
        if self.metrics is not None:
            # first attempt: charged exactly like the fault-free fabric
            # (cost class + trace-signature entry).
            self.metrics.record_message(msg, cost)
        self._transmit(pending, charge=False)
        self._arm_timer(pending)
        return cost

    def send_unordered(self, msg: Message, S: float, P: float,
                       quorum: bool = False, hedge: bool = False) -> float:
        """Send ``msg`` as an at-least-once *unordered* datagram.

        Quorum-protocol transport: the datagram is retransmitted on a
        dack timeout like a data frame, but the receiver delivers it
        immediately (no FIFO gating, duplicates suppressed by sequence
        set), and when the retry budget runs out the send is **silently
        abandoned** — counted in ``ReliabilityStats.dgram_abandoned``,
        never a :class:`DeliveryViolation`: liveness toward an
        unreachable replica is owned by the protocol's quorum
        re-selection, not by the transport.  ``quorum=True`` marks a
        re-selection re-broadcast, charged to the ``quorum`` cost share
        instead of the protocol share; ``hedge=True`` marks a hedge leg
        (:mod:`repro.sim.hedge`), charged to the ``hedge`` share (in
        both cases no trace-signature entry, so signatures stay
        comparable to the fault-free runs).
        """
        if msg.src == msg.dst:
            frame = Frame("loop", msg.src, msg.dst, 0, msg=msg,
                          op_id=msg.op_id)
            return self.physical.send(frame, S, P)
        if self.quarantined and msg.dst in self.quarantined:
            if self.metrics is not None:
                self.metrics.partition.sends_absorbed += 1
                tracer = self.metrics.tracer
                if tracer is not None:
                    tracer.op_event("absorbed", msg.op_id, src=msg.src,
                                    dst=msg.dst, detail="quarantined dst")
            return 0.0
        channel = (msg.src, msg.dst)
        seq = self._dgram_seq.get(channel, 0) + 1
        self._dgram_seq[channel] = seq
        frame = Frame("dgram", msg.src, msg.dst, seq, msg=msg,
                      op_id=msg.op_id, epoch=self.epoch)
        pending = _PendingSend(frame, S, P)
        self._dgram_pending[(channel, seq)] = pending
        cost = frame.cost(S, P)
        if self.metrics is not None:
            if hedge:
                self.metrics.record_hedge_cost(msg.op_id, cost)
            elif quorum:
                self.metrics.record_quorum_cost(msg.op_id, cost)
            else:
                self.metrics.record_message(msg, cost)
        self._transmit(pending, charge=False)
        self._arm_dgram_timer(pending)
        return cost

    def cancel_dgrams(self, src: int, op_id: int) -> int:
        """Void the pending datagram retries ``src`` holds for ``op_id``.

        Hedge-loser cancellation (:mod:`repro.sim.hedge`): once a quorum
        phase finishes, the losing legs' unacknowledged datagrams stop
        retransmitting — their retry timers are cancelled and the pending
        entries dropped, so an unreachable straggler no longer costs
        retransmission traffic for a phase that already won.  Frames
        already on the wire still arrive and are dacked; their replies
        are filtered by the phase generation counter like any stale
        traffic.  Returns the number of sends cancelled.
        """
        stale = [key for key, pending in self._dgram_pending.items()
                 if key[0][0] == src and pending.frame.op_id == op_id]
        for key in stale:
            pending = self._dgram_pending.pop(key)
            if pending.timer is not None:
                pending.timer.cancel()
        return len(stale)

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------

    def _transmit(self, pending: _PendingSend, charge: bool) -> None:
        frame = pending.frame
        plan = self.physical.faults
        if plan is not None and plan.is_down(frame.src, self.scheduler.now):
            # the interface is dead: nothing leaves and nothing is charged;
            # the retry timer keeps running and tries again after recovery.
            self.physical.suppressed += 1
            self._on_physical_fault("down_src")
            return
        if charge and self.metrics is not None:
            self.metrics.record_reliability_cost(
                frame.op_id, frame.cost(pending.S, pending.P),
                kind="retransmit",
            )
        self.physical.send(frame, pending.S, pending.P)

    def _arm_timer(self, pending: _PendingSend) -> None:
        delay = backoff_delay(self.config.timeout, self.config.backoff,
                              pending.attempts)
        key = ((pending.frame.src, pending.frame.dst), pending.frame.seq)
        pending.timer = self.scheduler.schedule(
            delay, lambda: self._on_timeout(key)
        )

    def _on_timeout(self, key: Tuple[Tuple[int, int], int]) -> None:
        pending = self._pending.get(key)
        if pending is None:  # pragma: no cover - acked timers are cancelled
            return
        if pending.attempts >= self.config.max_retries:
            # retry budget exhausted: abandon the send and surface it.
            del self._pending[key]
            frame = pending.frame
            plan = self.physical.faults
            handled = (
                # abandonment toward a crashed or quarantined node is the
                # *intended* degradation — the recovery subsystem resyncs
                # the node at rejoin — so only exhaustion toward a live,
                # in-view destination is a reliability-contract violation.
                (plan is not None
                 and plan.is_down(frame.dst, self.scheduler.now))
                or (self.quarantined is not None
                    and frame.dst in self.quarantined)
            )
            if not handled:
                obj = (frame.msg.token.object_name
                       if frame.msg is not None else None)
                self.violations.append(DeliveryViolation(
                    src=frame.src, dst=frame.dst, seq=frame.seq,
                    op_id=frame.op_id, obj=obj, attempts=pending.attempts,
                    time=self.scheduler.now,
                ))
            elif self.metrics is not None:
                # expected unreachability (crashed or quarantined dst):
                # the violation is suppressed, but visibly so.
                self.metrics.partition.suppressed_violations += 1
            if self.metrics is not None:
                stats = self.metrics.reliability
                stats.delivery_failures += 1
                if frame.op_id is not None:
                    stats.failed_op_ids.append(frame.op_id)
                tracer = self.metrics.tracer
                if tracer is not None:
                    tracer.op_event(
                        "delivery_abandoned", frame.op_id,
                        src=frame.src, dst=frame.dst,
                        detail="seq %d after %d retries"
                        % (frame.seq, pending.attempts),
                    )
            return
        pending.attempts += 1
        if self.metrics is not None:
            self.metrics.reliability.retransmissions += 1
        self._transmit(pending, charge=True)
        self._arm_timer(pending)

    def _arm_dgram_timer(self, pending: _PendingSend) -> None:
        delay = backoff_delay(self.config.timeout, self.config.backoff,
                              pending.attempts)
        key = ((pending.frame.src, pending.frame.dst), pending.frame.seq)
        pending.timer = self.scheduler.schedule(
            delay, lambda: self._on_dgram_timeout(key)
        )

    def _on_dgram_timeout(self, key: Tuple[Tuple[int, int], int]) -> None:
        pending = self._dgram_pending.get(key)
        if pending is None:  # pragma: no cover - dacked timers are cancelled
            return
        if pending.attempts >= self.config.max_retries:
            # budget exhausted: abandon *silently* — the quorum layer
            # re-selects around the unreachable replica; no violation,
            # no delivery failure, no wedged channel.
            del self._dgram_pending[key]
            if self.metrics is not None:
                self.metrics.reliability.dgram_abandoned += 1
                tracer = self.metrics.tracer
                if tracer is not None:
                    frame = pending.frame
                    tracer.op_event(
                        "dgram_abandoned", frame.op_id,
                        src=frame.src, dst=frame.dst,
                        detail="seq %d after %d retries"
                        % (frame.seq, pending.attempts),
                    )
            return
        pending.attempts += 1
        if self.metrics is not None:
            self.metrics.reliability.retransmissions += 1
        self._transmit(pending, charge=True)
        self._arm_dgram_timer(pending)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------

    def _on_frame(self, frame: Frame) -> None:
        profiler = self.scheduler.profiler
        if profiler is None:
            self._handle_frame(frame)
        else:
            t0 = perf_counter()
            self._handle_frame(frame)
            profiler.add("reliable.on_frame", perf_counter() - t0)

    def _handle_frame(self, frame: Frame) -> None:
        if frame.kind == "loop":
            self._handlers[frame.dst](frame.msg)
            return
        if frame.epoch < self.epoch:
            # voided traffic from a previous view: never deliver or ack it.
            if self.metrics is not None:
                self.metrics.recovery.stale_frames_dropped += 1
                tracer = self.metrics.tracer
                if tracer is not None:
                    tracer.op_event("stale_frame_dropped", frame.op_id,
                                    src=frame.src, dst=frame.dst,
                                    detail="epoch %d < %d"
                                    % (frame.epoch, self.epoch))
            return
        if frame.kind == "ack":
            # the acked data channel is the reverse of the ack's path.
            key = ((frame.dst, frame.src), frame.seq)
            pending = self._pending.pop(key, None)
            if pending is not None and pending.timer is not None:
                pending.timer.cancel()
            return
        if frame.kind == "dack":
            key = ((frame.dst, frame.src), frame.seq)
            pending = self._dgram_pending.pop(key, None)
            if pending is not None and pending.timer is not None:
                pending.timer.cancel()
            return
        if frame.kind == "dgram":
            channel = (frame.src, frame.dst)
            # always dack, even duplicates: the previous dack may be lost.
            self._send_ack(frame, kind="dack")
            seen = self._dgram_seen.setdefault(channel, set())
            if frame.seq in seen:
                if self.metrics is not None:
                    self.metrics.reliability.duplicates_suppressed += 1
                    tracer = self.metrics.tracer
                    if tracer is not None:
                        tracer.op_event("dup_suppressed", frame.op_id,
                                        src=frame.src, dst=frame.dst)
                return
            seen.add(frame.seq)
            # unordered: deliver immediately, no FIFO gating.
            self._deliver(frame.dst, frame.msg)
            return
        channel = (frame.src, frame.dst)
        # always ack, even duplicates: the previous ack may have been lost.
        self._send_ack(frame)
        expected = self._expected.get(channel, 1)
        buffer = self._reorder.get(channel)
        if frame.seq < expected or (buffer and frame.seq in buffer):
            if self.metrics is not None:
                self.metrics.reliability.duplicates_suppressed += 1
                tracer = self.metrics.tracer
                if tracer is not None:
                    tracer.op_event("dup_suppressed", frame.op_id,
                                    src=frame.src, dst=frame.dst)
            return
        if frame.seq > expected:
            if self.metrics is not None:
                self.metrics.reliability.out_of_order_held += 1
                tracer = self.metrics.tracer
                if tracer is not None:
                    tracer.op_event("reorder_hold", frame.op_id,
                                    src=frame.src, dst=frame.dst,
                                    detail="seq %d expected %d"
                                    % (frame.seq, expected))
            self._reorder.setdefault(channel, {})[frame.seq] = frame.msg
            return
        # in order: deliver, then drain the reorder buffer behind it.
        self._deliver(frame.dst, frame.msg)
        expected += 1
        while buffer and expected in buffer:
            self._deliver(frame.dst, buffer.pop(expected))
            expected += 1
        self._expected[channel] = expected

    def _deliver(self, dst: int, msg: Message) -> None:
        tracer = self._tracer()
        if tracer is not None:
            tracer.op_event("deliver", msg.op_id, src=msg.src, dst=dst,
                            detail=msg.token.type.value)
        self._handlers[dst](msg)

    def _send_ack(self, data: Frame, kind: str = "ack") -> None:
        ack = Frame(kind, data.dst, data.src, data.seq, op_id=data.op_id,
                    epoch=self.epoch)
        if self.metrics is not None:
            self.metrics.reliability.acks += 1
            self.metrics.record_reliability_cost(ack.op_id, 1.0, kind="ack")
        # ack cost is presence-independent (a bare token), so S/P are moot.
        self.physical.send(ack, 0.0, 0.0)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _on_physical_fault(self, kind: str) -> None:
        if self.metrics is None:
            return
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event("fault." + kind)
        stats = self.metrics.reliability
        if kind == "drop" or kind == "down_dst":
            stats.drops += 1
        elif kind == "duplicate":
            stats.duplicates_injected += 1
        elif kind == "down_src":
            stats.sends_suppressed += 1

    @property
    def in_flight(self) -> int:
        """Unacknowledged data frames currently awaiting an ack or retry."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # view changes (crash recovery)
    # ------------------------------------------------------------------

    def advance_epoch(self) -> List[Frame]:
        """Start a new view: void all in-flight transport state.

        Bumps :attr:`epoch` (so frames already on the wire — including
        jitter-delayed, duplicated or retransmitted copies — are dropped on
        receipt), cancels every pending retry timer and clears the
        sequence-number, pending and reorder state of *all* channels.  The
        recovery subsystem re-drives in-flight operations from scratch in
        the new view, so exactly-once delivery is preserved end to end even
        though the transport forgets its history.

        Returns the voided undelivered data frames — the sender-side
        unacknowledged ones *and* the frames already received, acked and
        parked in a receiver's reorder buffer behind a FIFO gap (those
        were never handed to a protocol process either, and clearing them
        silently would lose a completed fire-and-forget write that was
        acked but not yet delivered).  The caller inspects them for
        completed writes whose payload must be absorbed into the recovery
        write log (they were already reported complete to the
        application, so they cannot be re-driven).  Frames are returned
        per channel in sequence order, channels sorted — so absorption
        order respects per-channel FIFO and is deterministic.
        """
        self.epoch += 1
        by_channel: Dict[Tuple[int, int], Dict[int, Frame]] = {}
        for pending in self._pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
            frame = pending.frame
            by_channel.setdefault((frame.src, frame.dst), {})[
                frame.seq] = frame
        for (src, dst), buffer in self._reorder.items():
            for seq, msg in buffer.items():
                by_channel.setdefault((src, dst), {})[seq] = Frame(
                    "data", src, dst, seq, msg=msg, op_id=msg.op_id,
                    epoch=self.epoch - 1,
                )
        voided = [
            frame
            for channel in sorted(by_channel)
            for _, frame in sorted(by_channel[channel].items())
        ]
        if self.metrics is not None:
            self.metrics.recovery.frames_voided += len(voided)
            tracer = self.metrics.tracer
            if tracer is not None:
                tracer.system_event(
                    "epoch_advance",
                    detail="epoch %d voided %d frames"
                    % (self.epoch, len(voided)),
                )
        for pending in self._dgram_pending.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending.clear()
        self._send_seq.clear()
        self._expected.clear()
        self._reorder.clear()
        self._dgram_pending.clear()
        self._dgram_seq.clear()
        self._dgram_seen.clear()
        return voided
