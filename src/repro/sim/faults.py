"""Deterministic fault injection for the simulator's message fabric.

The paper assumes "fault free communication between nodes" (Section 2); a
:class:`FaultPlan` deliberately breaks that assumption so the reliability
overhead of the coherence protocols becomes measurable (docs/faults.md).
A plan injects, reproducibly from a single seed:

* **message drops** — each inter-node transmission is lost with probability
  ``drop_rate``;
* **duplicates** — each transmission is delivered a second time with
  probability ``duplicate_rate``;
* **latency jitter** — each delivery is delayed by an extra
  ``U(0, jitter)`` on top of the channel latency (which reorders
  messages across a channel);
* **gray failures / stragglers** — during a :class:`SlowWindow` the node
  is alive and correct but persistently slow: every delivery it sends or
  receives takes ``factor``× the base latency (plus any jitter).  Unlike
  the stochastic ``jitter``, the slowdown is *multiplicative and
  deterministic* — it consumes no randomness, so layering slow windows
  onto an existing plan leaves every drop/duplicate/jitter decision of
  that plan untouched;
* **timed node crashes** — during a :class:`CrashWindow` the node's network
  interface is silent: nothing it sends leaves the node and nothing
  addressed to it is delivered.  Crashing the sequencer is allowed (and is
  the interesting case).  Each window carries a *crash semantics* knob:

  - ``"durable"`` (the default) is fail-recover with durable state:
    protocol state survives the outage, only communication is lost;
  - ``"amnesia"`` loses the node's volatile replica state on crash — the
    node rejoins empty and must resynchronize through the recovery
    subsystem (:mod:`repro.sim.recovery`) before re-entering the protocol.

Determinism: every drop/duplicate/jitter decision consumes the plan's own
``random.Random(seed)`` stream in simulation order, so two runs with the
same workload seed and the same plan seed make identical decisions.  A plan
is therefore single-use — build a fresh one per run (``replay()`` returns an
identically-configured fresh plan).

``FaultPlan.none()`` is the explicit no-fault plan; the system treats it
exactly like "no plan at all", so fault-free runs stay bit-identical to the
paper-faithful fabric (pay-for-what-you-use).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..util import reject_unknown_keys

__all__ = ["CRASH_SEMANTICS", "CrashWindow", "FaultPlan", "SlowWindow"]


#: legal values of :attr:`CrashWindow.semantics`
CRASH_SEMANTICS = ("durable", "amnesia")


@dataclass(frozen=True, slots=True)
class SlowWindow:
    """One gray-failure interval ``[start, end)``: the node stays alive
    but every delivery touching it is ``factor``× slower.

    The slowdown is deterministic (no RNG draw) and multiplicative on the
    base channel latency plus jitter, modelling a straggler — a node that
    acks heartbeats yet serves an order of magnitude slower than its
    peers — as opposed to the stochastic per-delivery ``jitter``.
    """

    node: int
    start: float
    end: float = math.inf
    factor: float = 10.0

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"slow start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"slow window must end after it starts "
                f"({self.start} .. {self.end})"
            )
        if not (self.factor > 1.0 and math.isfinite(self.factor)):
            raise ValueError(
                f"slowdown factor must be a finite number > 1 "
                f"(1 is no slowdown), got {self.factor}"
            )

    def covers(self, time: float) -> bool:
        """Whether the node is slowed at ``time``."""
        return self.start <= time < self.end


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """One node-outage interval ``[start, end)`` in simulation time.

    ``semantics`` selects what the crash destroys: ``"durable"`` keeps the
    node's protocol state across the outage (only communication is lost);
    ``"amnesia"`` wipes the volatile replica state, so the node must be
    resynchronized by the recovery subsystem when it rejoins.
    """

    node: int
    start: float
    end: float = math.inf
    semantics: str = "durable"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"crash start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"crash window must end after it starts "
                f"({self.start} .. {self.end})"
            )
        if self.semantics not in CRASH_SEMANTICS:
            raise ValueError(
                f"crash semantics must be one of {CRASH_SEMANTICS}, "
                f"got {self.semantics!r}"
            )

    def covers(self, time: float) -> bool:
        """Whether the node is down at ``time``."""
        return self.start <= time < self.end


class FaultPlan:
    """A seeded, deterministic schedule of communication faults.

    Args:
        seed: seed for the plan's private RNG stream.
        drop_rate: per-transmission loss probability, in ``[0, 1]``.
        duplicate_rate: per-transmission duplication probability, ``[0, 1]``.
        jitter: maximum extra delivery delay (uniform on ``[0, jitter]``).
        crashes: node-outage windows (:class:`CrashWindow` instances or
            ``(node, start[, end[, semantics]])`` tuples).  Windows on the
            same node must not overlap (a config-time :class:`ValueError`).
        slowdowns: gray-failure windows (:class:`SlowWindow` instances or
            ``(node, start[, end[, factor]])`` tuples).  Windows on the
            same node must not overlap.
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        jitter: float = 0.0,
        crashes: Sequence = (),
        slowdowns: Sequence = (),
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        if not 0.0 <= duplicate_rate <= 1.0:
            raise ValueError(
                f"duplicate_rate must be in [0, 1], got {duplicate_rate}"
            )
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.seed = seed
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.jitter = jitter
        self.crashes: Tuple[CrashWindow, ...] = tuple(
            w if isinstance(w, CrashWindow) else CrashWindow(*w)
            for w in crashes
        )
        self.slowdowns: Tuple[SlowWindow, ...] = tuple(
            w if isinstance(w, SlowWindow) else SlowWindow(*w)
            for w in slowdowns
        )
        self._check_window_overlap(self.crashes, "crash")
        self._check_window_overlap(self.slowdowns, "slow")
        self._rng = random.Random(seed)

    @staticmethod
    def _check_window_overlap(windows: Sequence, label: str) -> None:
        """Reject overlapping windows on the same node at config time.

        Two simultaneous outages (or slowdowns) of one node have no
        sensible meaning (is the second crash edge a crash or a no-op?
        do the factors stack?) and would mis-drive the recovery
        subsystem's crash/rejoin events.  Adjacent windows
        (``prev.end == next.start``) are allowed; windows on *different*
        nodes may overlap freely.
        """
        last_end: dict = {}
        for w in sorted(windows, key=lambda w: (w.node, w.start)):
            prev = last_end.get(w.node)
            if prev is not None and w.start < prev:
                raise ValueError(
                    f"overlapping {label} windows for node {w.node}: a "
                    f"window starting at {w.start:g} begins before the "
                    f"previous one ends at {prev:g}"
                )
            last_end[w.node] = w.end

    def validate_nodes(self, num_nodes: int) -> None:
        """Reject windows naming nodes outside ``1 .. num_nodes``.

        Called with ``N + 1`` by :class:`~repro.sim.system.DSMSystem` (and
        by the CLI) so a typo'd node index fails loudly at configuration
        time instead of silently never firing.
        """
        for label, windows in (("crash", self.crashes),
                               ("slow", self.slowdowns)):
            for w in windows:
                if not 1 <= w.node <= num_nodes:
                    raise ValueError(
                        f"{label} window names node {w.node}, but the "
                        f"system has nodes 1 .. {num_nodes} (clients 1 .. "
                        f"{num_nodes - 1}, sequencer {num_nodes})"
                    )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The explicit no-fault plan (identical to running without one)."""
        return cls()

    def replay(self) -> "FaultPlan":
        """A fresh plan with the same configuration and a rewound RNG."""
        return FaultPlan(
            seed=self.seed,
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            jitter=self.jitter,
            crashes=self.crashes,
            slowdowns=self.slowdowns,
        )

    @property
    def is_none(self) -> bool:
        """Whether this plan injects no faults at all."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.jitter == 0.0
            and not self.crashes
            and not self.slowdowns
        )

    @property
    def has_amnesia(self) -> bool:
        """Whether any crash window loses node state (needs recovery)."""
        return any(w.semantics == "amnesia" for w in self.crashes)

    @property
    def has_slowdowns(self) -> bool:
        """Whether any gray-failure window is scheduled."""
        return bool(self.slowdowns)

    # ------------------------------------------------------------------
    # configuration identity and serialization
    # ------------------------------------------------------------------

    def config_key(self) -> tuple:
        """The plan's configuration (RNG state excluded).

        Two plans with the same key make identical fault decisions when
        driven from a fresh state; this is the identity used by
        :meth:`__eq__` and by the sweep engine's result cache.
        """
        return (
            self.seed,
            self.drop_rate,
            self.duplicate_rate,
            self.jitter,
            tuple((w.node, w.start, w.end, w.semantics)
                  for w in self.crashes),
            tuple((w.node, w.start, w.end, w.factor)
                  for w in self.slowdowns),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.config_key() == other.config_key()

    def __hash__(self) -> int:
        return hash(self.config_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.describe()})"

    def to_dict(self) -> dict:
        """A plain-JSON dict of the configuration (``inf`` ends → None)."""
        data = {
            "seed": int(self.seed),
            "drop_rate": float(self.drop_rate),
            "duplicate_rate": float(self.duplicate_rate),
            "jitter": float(self.jitter),
            "crashes": [
                # durable windows keep the historical 3-element shape so
                # serialized durable-only plans stay canonical.
                [int(w.node), float(w.start),
                 None if math.isinf(w.end) else float(w.end)]
                + ([] if w.semantics == "durable" else [w.semantics])
                for w in self.crashes
            ],
        }
        # pay-for-what-you-use: the slowdown key appears only when gray
        # failures are scheduled, so every pre-existing plan — and every
        # cell id and cache key hashed from it — stays byte-identical.
        if self.slowdowns:
            data["slowdowns"] = [
                [int(w.node), float(w.start),
                 None if math.isinf(w.end) else float(w.end),
                 float(w.factor)]
                for w in self.slowdowns
            ]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a fresh (rewound) plan from :meth:`to_dict` output.

        Accepts both the historical 3-element crash entries
        (``[node, start, end]``, durable) and the 4-element form carrying
        an explicit semantics tag.  Unknown keys raise ``ValueError``
        instead of being silently dropped.
        """
        reject_unknown_keys(
            data,
            ("seed", "drop_rate", "duplicate_rate", "jitter", "crashes",
             "slowdowns"),
            "FaultPlan",
        )
        crashes = [
            CrashWindow(int(entry[0]), float(entry[1]),
                        math.inf if entry[2] is None else float(entry[2]),
                        str(entry[3]) if len(entry) > 3 else "durable")
            for entry in data.get("crashes", ())
        ]
        slowdowns = [
            SlowWindow(int(entry[0]), float(entry[1]),
                       math.inf if entry[2] is None else float(entry[2]),
                       float(entry[3]))
            for entry in data.get("slowdowns", ())
        ]
        return cls(
            seed=int(data.get("seed", 0)),
            drop_rate=float(data.get("drop_rate", 0.0)),
            duplicate_rate=float(data.get("duplicate_rate", 0.0)),
            jitter=float(data.get("jitter", 0.0)),
            crashes=crashes,
            slowdowns=slowdowns,
        )

    # ------------------------------------------------------------------
    # per-transmission decisions (consume the RNG stream in call order)
    # ------------------------------------------------------------------

    def should_drop(self, src: int, dst: int) -> bool:
        """Decide whether this transmission on ``src -> dst`` is lost."""
        if self.drop_rate == 0.0:
            return False
        return self._rng.random() < self.drop_rate

    def should_duplicate(self, src: int, dst: int) -> bool:
        """Decide whether this transmission is delivered twice."""
        if self.duplicate_rate == 0.0:
            return False
        return self._rng.random() < self.duplicate_rate

    def jitter_for(self, src: int, dst: int) -> float:
        """Extra delivery delay for one delivery on ``src -> dst``."""
        if self.jitter == 0.0:
            return 0.0
        return self._rng.uniform(0.0, self.jitter)

    # ------------------------------------------------------------------
    # gray-failure schedule (deterministic: no RNG is ever consumed, so
    # layering slowdowns onto a plan leaves its decision stream intact)
    # ------------------------------------------------------------------

    def slowdown_for(self, node: int, time: float) -> float:
        """The node's service slowdown factor at ``time`` (>= 1.0)."""
        for window in self.slowdowns:
            if window.node == node and window.covers(time):
                return window.factor
        return 1.0

    def link_slowdown(self, src: int, dst: int, time: float) -> float:
        """The delivery slowdown on ``src -> dst`` at ``time``.

        A link is as slow as its slowest endpoint: the straggler is slow
        both to emit and to service arriving messages.
        """
        if not self.slowdowns:
            return 1.0
        return max(self.slowdown_for(src, time),
                   self.slowdown_for(dst, time))

    def slowdown_edges(self) -> List[Tuple[float, int, str]]:
        """Sorted ``(time, node, "slow"|"restore")`` bookkeeping events.

        Restore edges at ``inf`` (a node that never speeds back up) are
        omitted.
        """
        edges: List[Tuple[float, int, str]] = []
        for w in self.slowdowns:
            edges.append((w.start, w.node, "slow"))
            if math.isfinite(w.end):
                edges.append((w.end, w.node, "restore"))
        edges.sort()
        return edges

    # ------------------------------------------------------------------
    # crash schedule
    # ------------------------------------------------------------------

    def is_down(self, node: int, time: float) -> bool:
        """Whether ``node``'s network interface is dead at ``time``."""
        for window in self.crashes:
            if window.node == node and window.covers(time):
                return True
        return False

    def crash_edges(self) -> List[Tuple[float, int, str]]:
        """Sorted ``(time, node, "crash"|"recover")`` bookkeeping events.

        Recovery edges at ``inf`` (a node that never comes back) are
        omitted.
        """
        edges: List[Tuple[float, int, str]] = []
        for w in self.crashes:
            edges.append((w.start, w.node, "crash"))
            if math.isfinite(w.end):
                edges.append((w.end, w.node, "recover"))
        edges.sort()
        return edges

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        if self.is_none:
            return "no faults"
        parts = [f"seed={self.seed}"]
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.jitter:
            parts.append(f"jitter<={self.jitter:g}")
        # group windows sharing (start, end, semantics) into node lists so
        # dumps of wide schedules (chaos repros) stay human-readable.
        groups: dict = {}
        for w in self.crashes:
            groups.setdefault((w.start, w.end, w.semantics), []).append(w.node)
        for (start, end_t, semantics), nodes in groups.items():
            end = "∞" if math.isinf(end_t) else f"{end_t:g}"
            label = (f"node {nodes[0]}" if len(nodes) == 1
                     else "nodes " + ",".join(str(n) for n in sorted(nodes)))
            parts.append(f"crash({label}: {start:g}..{end}, {semantics})")
        slow_groups: dict = {}
        for w in self.slowdowns:
            slow_groups.setdefault((w.start, w.end, w.factor), []).append(
                w.node)
        for (start, end_t, factor), nodes in slow_groups.items():
            end = "∞" if math.isinf(end_t) else f"{end_t:g}"
            label = (f"node {nodes[0]}" if len(nodes) == 1
                     else "nodes " + ",".join(str(n) for n in sorted(nodes)))
            parts.append(f"slow({label}: {start:g}..{end}, x{factor:g})")
        return ", ".join(parts)
