"""Deterministic fault injection for the simulator's message fabric.

The paper assumes "fault free communication between nodes" (Section 2); a
:class:`FaultPlan` deliberately breaks that assumption so the reliability
overhead of the coherence protocols becomes measurable (docs/faults.md).
A plan injects, reproducibly from a single seed:

* **message drops** — each inter-node transmission is lost with probability
  ``drop_rate``;
* **duplicates** — each transmission is delivered a second time with
  probability ``duplicate_rate``;
* **latency jitter** — each delivery is delayed by an extra
  ``U(0, jitter)`` on top of the channel latency (which reorders
  messages across a channel);
* **timed node crashes** — during a :class:`CrashWindow` the node's network
  interface is silent: nothing it sends leaves the node and nothing
  addressed to it is delivered.  Crashing the sequencer is allowed (and is
  the interesting case).  Each window carries a *crash semantics* knob:

  - ``"durable"`` (the default) is fail-recover with durable state:
    protocol state survives the outage, only communication is lost;
  - ``"amnesia"`` loses the node's volatile replica state on crash — the
    node rejoins empty and must resynchronize through the recovery
    subsystem (:mod:`repro.sim.recovery`) before re-entering the protocol.

Determinism: every drop/duplicate/jitter decision consumes the plan's own
``random.Random(seed)`` stream in simulation order, so two runs with the
same workload seed and the same plan seed make identical decisions.  A plan
is therefore single-use — build a fresh one per run (``replay()`` returns an
identically-configured fresh plan).

``FaultPlan.none()`` is the explicit no-fault plan; the system treats it
exactly like "no plan at all", so fault-free runs stay bit-identical to the
paper-faithful fabric (pay-for-what-you-use).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..util import reject_unknown_keys

__all__ = ["CRASH_SEMANTICS", "CrashWindow", "FaultPlan"]


#: legal values of :attr:`CrashWindow.semantics`
CRASH_SEMANTICS = ("durable", "amnesia")


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """One node-outage interval ``[start, end)`` in simulation time.

    ``semantics`` selects what the crash destroys: ``"durable"`` keeps the
    node's protocol state across the outage (only communication is lost);
    ``"amnesia"`` wipes the volatile replica state, so the node must be
    resynchronized by the recovery subsystem when it rejoins.
    """

    node: int
    start: float
    end: float = math.inf
    semantics: str = "durable"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"crash start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"crash window must end after it starts "
                f"({self.start} .. {self.end})"
            )
        if self.semantics not in CRASH_SEMANTICS:
            raise ValueError(
                f"crash semantics must be one of {CRASH_SEMANTICS}, "
                f"got {self.semantics!r}"
            )

    def covers(self, time: float) -> bool:
        """Whether the node is down at ``time``."""
        return self.start <= time < self.end


class FaultPlan:
    """A seeded, deterministic schedule of communication faults.

    Args:
        seed: seed for the plan's private RNG stream.
        drop_rate: per-transmission loss probability, in ``[0, 1]``.
        duplicate_rate: per-transmission duplication probability, ``[0, 1]``.
        jitter: maximum extra delivery delay (uniform on ``[0, jitter]``).
        crashes: node-outage windows (:class:`CrashWindow` instances or
            ``(node, start[, end[, semantics]])`` tuples).  Windows on the
            same node must not overlap (a config-time :class:`ValueError`).
    """

    def __init__(
        self,
        seed: int = 0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        jitter: float = 0.0,
        crashes: Sequence = (),
    ) -> None:
        if not 0.0 <= drop_rate <= 1.0:
            raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
        if not 0.0 <= duplicate_rate <= 1.0:
            raise ValueError(
                f"duplicate_rate must be in [0, 1], got {duplicate_rate}"
            )
        if jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {jitter}")
        self.seed = seed
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.jitter = jitter
        self.crashes: Tuple[CrashWindow, ...] = tuple(
            w if isinstance(w, CrashWindow) else CrashWindow(*w)
            for w in crashes
        )
        self._check_window_overlap()
        self._rng = random.Random(seed)

    def _check_window_overlap(self) -> None:
        """Reject overlapping windows on the same node at config time.

        Two simultaneous outages of one node have no sensible meaning (is
        the second crash edge a crash or a no-op?) and would mis-drive the
        recovery subsystem's crash/rejoin events.  Adjacent windows
        (``prev.end == next.start``) are allowed; windows on *different*
        nodes may overlap freely.
        """
        last_end: dict = {}
        for w in sorted(self.crashes, key=lambda w: (w.node, w.start)):
            prev = last_end.get(w.node)
            if prev is not None and w.start < prev:
                raise ValueError(
                    f"overlapping crash windows for node {w.node}: a window "
                    f"starting at {w.start:g} begins before the previous one "
                    f"ends at {prev:g}"
                )
            last_end[w.node] = w.end

    def validate_nodes(self, num_nodes: int) -> None:
        """Reject crash windows naming nodes outside ``1 .. num_nodes``.

        Called with ``N + 1`` by :class:`~repro.sim.system.DSMSystem` (and
        by the CLI) so a typo'd node index fails loudly at configuration
        time instead of silently never firing.
        """
        for w in self.crashes:
            if not 1 <= w.node <= num_nodes:
                raise ValueError(
                    f"crash window names node {w.node}, but the system has "
                    f"nodes 1 .. {num_nodes} (clients 1 .. {num_nodes - 1}, "
                    f"sequencer {num_nodes})"
                )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The explicit no-fault plan (identical to running without one)."""
        return cls()

    def replay(self) -> "FaultPlan":
        """A fresh plan with the same configuration and a rewound RNG."""
        return FaultPlan(
            seed=self.seed,
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            jitter=self.jitter,
            crashes=self.crashes,
        )

    @property
    def is_none(self) -> bool:
        """Whether this plan injects no faults at all."""
        return (
            self.drop_rate == 0.0
            and self.duplicate_rate == 0.0
            and self.jitter == 0.0
            and not self.crashes
        )

    @property
    def has_amnesia(self) -> bool:
        """Whether any crash window loses node state (needs recovery)."""
        return any(w.semantics == "amnesia" for w in self.crashes)

    # ------------------------------------------------------------------
    # configuration identity and serialization
    # ------------------------------------------------------------------

    def config_key(self) -> tuple:
        """The plan's configuration (RNG state excluded).

        Two plans with the same key make identical fault decisions when
        driven from a fresh state; this is the identity used by
        :meth:`__eq__` and by the sweep engine's result cache.
        """
        return (
            self.seed,
            self.drop_rate,
            self.duplicate_rate,
            self.jitter,
            tuple((w.node, w.start, w.end, w.semantics)
                  for w in self.crashes),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.config_key() == other.config_key()

    def __hash__(self) -> int:
        return hash(self.config_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.describe()})"

    def to_dict(self) -> dict:
        """A plain-JSON dict of the configuration (``inf`` ends → None)."""
        return {
            "seed": int(self.seed),
            "drop_rate": float(self.drop_rate),
            "duplicate_rate": float(self.duplicate_rate),
            "jitter": float(self.jitter),
            "crashes": [
                # durable windows keep the historical 3-element shape so
                # serialized durable-only plans stay canonical.
                [int(w.node), float(w.start),
                 None if math.isinf(w.end) else float(w.end)]
                + ([] if w.semantics == "durable" else [w.semantics])
                for w in self.crashes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild a fresh (rewound) plan from :meth:`to_dict` output.

        Accepts both the historical 3-element crash entries
        (``[node, start, end]``, durable) and the 4-element form carrying
        an explicit semantics tag.  Unknown keys raise ``ValueError``
        instead of being silently dropped.
        """
        reject_unknown_keys(
            data,
            ("seed", "drop_rate", "duplicate_rate", "jitter", "crashes"),
            "FaultPlan",
        )
        crashes = [
            CrashWindow(int(entry[0]), float(entry[1]),
                        math.inf if entry[2] is None else float(entry[2]),
                        str(entry[3]) if len(entry) > 3 else "durable")
            for entry in data.get("crashes", ())
        ]
        return cls(
            seed=int(data.get("seed", 0)),
            drop_rate=float(data.get("drop_rate", 0.0)),
            duplicate_rate=float(data.get("duplicate_rate", 0.0)),
            jitter=float(data.get("jitter", 0.0)),
            crashes=crashes,
        )

    # ------------------------------------------------------------------
    # per-transmission decisions (consume the RNG stream in call order)
    # ------------------------------------------------------------------

    def should_drop(self, src: int, dst: int) -> bool:
        """Decide whether this transmission on ``src -> dst`` is lost."""
        if self.drop_rate == 0.0:
            return False
        return self._rng.random() < self.drop_rate

    def should_duplicate(self, src: int, dst: int) -> bool:
        """Decide whether this transmission is delivered twice."""
        if self.duplicate_rate == 0.0:
            return False
        return self._rng.random() < self.duplicate_rate

    def jitter_for(self, src: int, dst: int) -> float:
        """Extra delivery delay for one delivery on ``src -> dst``."""
        if self.jitter == 0.0:
            return 0.0
        return self._rng.uniform(0.0, self.jitter)

    # ------------------------------------------------------------------
    # crash schedule
    # ------------------------------------------------------------------

    def is_down(self, node: int, time: float) -> bool:
        """Whether ``node``'s network interface is dead at ``time``."""
        for window in self.crashes:
            if window.node == node and window.covers(time):
                return True
        return False

    def crash_edges(self) -> List[Tuple[float, int, str]]:
        """Sorted ``(time, node, "crash"|"recover")`` bookkeeping events.

        Recovery edges at ``inf`` (a node that never comes back) are
        omitted.
        """
        edges: List[Tuple[float, int, str]] = []
        for w in self.crashes:
            edges.append((w.start, w.node, "crash"))
            if math.isfinite(w.end):
                edges.append((w.end, w.node, "recover"))
        edges.sort()
        return edges

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        if self.is_none:
            return "no faults"
        parts = [f"seed={self.seed}"]
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.jitter:
            parts.append(f"jitter<={self.jitter:g}")
        # group windows sharing (start, end, semantics) into node lists so
        # dumps of wide schedules (chaos repros) stay human-readable.
        groups: dict = {}
        for w in self.crashes:
            groups.setdefault((w.start, w.end, w.semantics), []).append(w.node)
        for (start, end_t, semantics), nodes in groups.items():
            end = "∞" if math.isinf(end_t) else f"{end_t:g}"
            label = (f"node {nodes[0]}" if len(nodes) == 1
                     else "nodes " + ",".join(str(n) for n in sorted(nodes)))
            parts.append(f"crash({label}: {start:g}..{end}, {semantics})")
        return ", ".join(parts)
