"""FIFO message fabric (paper Section 2), optionally made faulty.

The paper assumes "fault free communication between nodes and the
implementation of the message passing mechanism through channels that
behave like first-in/first-out queues.  Thus, every message sent is
delivered and not corrupted."

:class:`Network` models one logical FIFO channel per ordered node pair with
a constant per-message latency.  Constant latency plus the scheduler's
schedule-order tie-breaking yields exact FIFO delivery per channel; a
per-channel sequence check enforces (and tests assert) the invariant.

With a :class:`~repro.sim.faults.FaultPlan` attached the fabric becomes the
*physical* layer of the fault model (docs/faults.md): transmissions may be
dropped, duplicated, or delayed by jitter, and nothing is sent by or
delivered to a crashed node.  Jitter can reorder deliveries, so the strict
FIFO invariant is waived in fault mode — the reliable-delivery layer
(:mod:`repro.sim.reliable`) restores exactly-once FIFO order above it.

Message costs (Section 4.1) are charged at send time through the attached
:class:`~repro.sim.metrics.Metrics` sink: 1 for a bare token, ``S + 1`` with
user information, ``P + 1`` with write parameters.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..machines.message import Message
from .engine import EventScheduler
from .faults import FaultPlan
from .partition import PartitionPlan

__all__ = ["Network"]


class Network:
    """Full-mesh FIFO fabric over an event scheduler.

    The star usage restriction (clients talk only to the sequencer/owner) is
    a property of the protocols, not of the fabric; modelling a full mesh
    lets the migrating-owner protocols (Berkeley, Dragon) address any node.

    Args:
        scheduler: the discrete-event engine.
        latency: constant per-hop delay (must be positive).
        on_cost: cost sink, called as ``on_cost(msg, cost)`` for every
            charged (inter-node) send.
        faults: optional fault plan; ``None`` or :meth:`FaultPlan.none`
            keeps the paper-faithful fault-free fabric.
        partitions: optional link-fault plan
            (:class:`~repro.sim.partition.PartitionPlan`); per-link
            drop/duplicate/jitter decisions are layered over the global
            plan's (a transmission is lost if *either* says so).
        on_fault: optional observer, called with ``"drop"``,
            ``"duplicate"``, ``"down_src"`` or ``"down_dst"`` for every
            injected fault event.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        latency: float = 1.0,
        on_cost: Optional[Callable[[Message, float], None]] = None,
        faults: Optional[FaultPlan] = None,
        partitions: Optional[PartitionPlan] = None,
        on_fault: Optional[Callable[[str], None]] = None,
    ):
        if latency <= 0:
            raise ValueError("latency must be positive for causal delivery")
        self.scheduler = scheduler
        self.latency = latency
        self.on_cost = on_cost
        # a no-fault plan is normalized away: the fault-free path below is
        # then byte-for-byte the paper's fabric (pay-for-what-you-use).
        self.faults = faults if faults is not None and not faults.is_none else None
        self.partitions = (partitions
                           if partitions is not None and not partitions.is_none
                           else None)
        self.on_fault = on_fault
        #: optional :class:`repro.obs.Tracer`.  On a plain fabric the
        #: deliver hook emits per-operation "deliver" events; under a
        #: :class:`~repro.sim.reliable.ReliableNetwork` the tracer is
        #: attached to the reliable layer instead (protocol-level
        #: deliveries), never to the physical fabric beneath it.
        self.tracer = None
        self._deliver_to: Dict[int, Callable[[Message], None]] = {}
        # FIFO bookkeeping: per-channel send / delivery counters.  True
        # per-channel counters (not a shared global) make the invariant
        # check — and the reliable layer's duplicate suppression, which
        # reuses the same numbering idea — meaningful per channel.
        self._sent_seq: Dict[Tuple[int, int], int] = {}
        self._delivered_seq: Dict[Tuple[int, int], int] = {}
        #: total messages sent (all cost classes)
        self.messages_sent = 0
        #: transmissions lost to the fault plan (drops + dead receivers)
        self.dropped = 0
        #: extra deliveries injected by the fault plan
        self.duplicated = 0
        #: sends swallowed because the source node was down
        self.suppressed = 0

    def attach(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Register the delivery handler for a node."""
        self._deliver_to[node_id] = handler

    def _fault_event(self, kind: str) -> None:
        if self.on_fault is not None:
            self.on_fault(kind)
        if self.tracer is not None:
            self.tracer.system_event("fault." + kind)

    def send(self, msg: Message, S: float, P: float) -> float:
        """Send ``msg``; charge its cost; schedule delivery.

        Returns the communication cost charged (0 for self-sends, which the
        paper counts as intra-node actions, and 0 for sends suppressed
        because the source node is crashed).

        Raises:
            RuntimeError: if ``msg.dst`` was never attached to the fabric.
        """
        if msg.dst not in self._deliver_to:
            raise RuntimeError(
                f"cannot send {type(msg).__name__} from node {msg.src}: "
                f"destination node {msg.dst} is not attached to the network"
            )
        faulty = ((self.faults is not None or self.partitions is not None)
                  and msg.src != msg.dst)
        if (faulty and self.faults is not None
                and self.faults.is_down(msg.src, self.scheduler.now)):
            # the source's interface is dead: nothing leaves the node and
            # nothing is charged (the message was never emitted).
            self.suppressed += 1
            self._fault_event("down_src")
            return 0.0
        cost = msg.cost(S, P)
        if self.on_cost is not None and cost > 0.0:
            self.on_cost(msg, cost)
        self.messages_sent += 1
        channel = (msg.src, msg.dst)
        seq = self._sent_seq.get(channel, 0) + 1
        self._sent_seq[channel] = seq

        if not faulty:

            def deliver() -> None:
                # FIFO invariant: per channel, delivery follows send order.
                last = self._delivered_seq.get(channel, 0)
                if seq < last:  # pragma: no cover - would indicate an engine bug
                    raise RuntimeError(f"FIFO violation on channel {channel}")
                self._delivered_seq[channel] = seq
                tracer = self.tracer
                if tracer is not None:
                    tracer.op_event("deliver", msg.op_id, src=msg.src,
                                    dst=msg.dst, detail=msg.token.type.value)
                self._deliver_to[msg.dst](msg)

            self.scheduler.schedule(self.latency, deliver)
            return cost

        # ---- fault path: drops, duplicates, jitter, dead receivers ----
        plan = self.faults
        parts = self.partitions
        now = self.scheduler.now

        def deliver_faulty() -> None:
            if plan is not None and plan.is_down(msg.dst, self.scheduler.now):
                # the receiver is crashed: the transmission is lost.
                self.dropped += 1
                self._fault_event("down_dst")
                return
            # jitter reorders deliveries, so no strict FIFO check here;
            # track the high-water mark for observability only.
            last = self._delivered_seq.get(channel, 0)
            if seq > last:
                self._delivered_seq[channel] = seq
            tracer = self.tracer
            if tracer is not None:
                token = getattr(msg, "token", None)
                tracer.op_event(
                    "deliver", msg.op_id, src=msg.src, dst=msg.dst,
                    detail=(token.type.value if token is not None
                            else getattr(msg, "kind", None)),
                )
            self._deliver_to[msg.dst](msg)

        def jittered_delay() -> float:
            delay = self.latency
            if plan is not None:
                delay += plan.jitter_for(msg.src, msg.dst)
            if parts is not None:
                delay += parts.jitter_for(msg.src, msg.dst, now)
            if plan is not None and plan.slowdowns:
                # gray failure: a straggler endpoint stretches the whole
                # delivery multiplicatively.  Deterministic (no RNG), and
                # exactly 1.0 without slow windows, so plans predating
                # the straggler model keep byte-identical delays.
                delay *= plan.link_slowdown(msg.src, msg.dst, now)
            return delay

        # the global plan rolls first; a loss there short-circuits the
        # link roll (both streams are private, so this stays deterministic)
        dropped = ((plan is not None and plan.should_drop(msg.src, msg.dst))
                   or (parts is not None
                       and parts.should_drop(msg.src, msg.dst, now)))
        if dropped:
            self.dropped += 1
            self._fault_event("drop")
        else:
            self.scheduler.schedule(jittered_delay(), deliver_faulty)
        duplicated = ((plan is not None
                       and plan.should_duplicate(msg.src, msg.dst))
                      or (parts is not None
                          and parts.should_duplicate(msg.src, msg.dst, now)))
        if duplicated:
            self.duplicated += 1
            self._fault_event("duplicate")
            self.scheduler.schedule(jittered_delay(), deliver_faulty)
        return cost

