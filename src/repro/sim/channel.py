"""Fault-free FIFO message fabric (paper Section 2).

The paper assumes "fault free communication between nodes and the
implementation of the message passing mechanism through channels that
behave like first-in/first-out queues.  Thus, every message sent is
delivered and not corrupted."

:class:`Network` models one logical FIFO channel per ordered node pair with
a constant per-message latency.  Constant latency plus the scheduler's
schedule-order tie-breaking yields exact FIFO delivery per channel; a
per-channel sequence check enforces (and tests assert) the invariant.

Message costs (Section 4.1) are charged at send time through the attached
:class:`~repro.sim.metrics.Metrics` sink: 1 for a bare token, ``S + 1`` with
user information, ``P + 1`` with write parameters.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..machines.message import Message
from .engine import EventScheduler

__all__ = ["Network"]


class Network:
    """Full-mesh fault-free FIFO fabric over an event scheduler.

    The star usage restriction (clients talk only to the sequencer/owner) is
    a property of the protocols, not of the fabric; modelling a full mesh
    lets the migrating-owner protocols (Berkeley, Dragon) address any node.
    """

    def __init__(
        self,
        scheduler: EventScheduler,
        latency: float = 1.0,
        on_cost: Optional[Callable[[Message, float], None]] = None,
    ):
        if latency <= 0:
            raise ValueError("latency must be positive for causal delivery")
        self.scheduler = scheduler
        self.latency = latency
        self.on_cost = on_cost
        self._deliver_to: Dict[int, Callable[[Message], None]] = {}
        # FIFO bookkeeping: last sent / last delivered sequence per channel.
        self._sent_seq: Dict[Tuple[int, int], int] = {}
        self._delivered_seq: Dict[Tuple[int, int], int] = {}
        self._next_seq = 0
        #: total messages sent (all cost classes)
        self.messages_sent = 0

    def attach(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Register the delivery handler for a node."""
        self._deliver_to[node_id] = handler

    def send(self, msg: Message, S: float, P: float) -> float:
        """Send ``msg``; charge its cost; schedule FIFO delivery.

        Returns the communication cost charged (0 for self-sends, which the
        paper counts as intra-node actions).
        """
        cost = msg.cost(S, P)
        if self.on_cost is not None and cost > 0.0:
            self.on_cost(msg, cost)
        self.messages_sent += 1
        channel = (msg.src, msg.dst)
        self._next_seq += 1
        seq = self._next_seq
        self._sent_seq[channel] = seq

        def deliver() -> None:
            # FIFO invariant: per channel, delivery follows send order.
            last = self._delivered_seq.get(channel, 0)
            if seq < last:  # pragma: no cover - would indicate an engine bug
                raise RuntimeError(f"FIFO violation on channel {channel}")
            self._delivered_seq[channel] = seq
            self._deliver_to[msg.dst](msg)

        self.scheduler.schedule(self.latency, deliver)
        return cost
