"""Synchronization operations: per-object locks (paper Section 6 outlook).

The paper proposes extending the model "to include other types of
operations (... synchronization operation)".  This module adds the
canonical one: a FIFO mutual-exclusion lock per shared object, managed by
the sequencer node (the natural serialization point).

Costs, in the paper's units:

* ``acquire`` — ``LK-REQ`` token (1) plus ``LK-GNT`` token (1) = **2**,
  regardless of contention (waiting costs time, not messages);
* ``release`` — ``UNLK`` token (1) = **1** (the manager's grant to the
  next waiter is charged to *that waiter's* acquire).

Locks are orthogonal to the coherence protocols: they guard application
critical sections (e.g. read-modify-write sequences) while the protocol
keeps the data coherent; the examples demonstrate lost-update prevention.
A node acquiring or releasing at the manager's own node does it locally at
zero cost.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from ..machines.message import Message, MessageToken, MsgType, ParamPresence, QueueTag
from ..protocols.base import ACQUIRE, Operation, RELEASE

__all__ = ["LOCK_MESSAGE_TYPES", "LockClient", "LockManager"]

#: message types routed to the lock subsystem instead of the protocols
LOCK_MESSAGE_TYPES = frozenset(
    {MsgType.LK_REQ, MsgType.LK_GNT, MsgType.UNLK}
)


class LockClient:
    """Per-node lock stub: forwards acquire/release to the manager."""

    def __init__(self, node):
        self._node = node
        #: pending acquire per object
        self._waiting: Dict[int, Operation] = {}

    def on_request(self, op: Operation) -> None:
        """Handle an acquire/release issued by the local application."""
        if self._node.node_id == self._node.sequencer_id:
            # local fast path at the manager's node.
            self._node.lock_manager.local_request(op)
            return
        if op.kind == ACQUIRE:
            if op.obj in self._waiting:
                raise RuntimeError(
                    f"node {self._node.node_id} already waits for lock "
                    f"{op.obj}"
                )
            self._waiting[op.obj] = op
            self._send(MsgType.LK_REQ, op)
        elif op.kind == RELEASE:
            self._send(MsgType.UNLK, op)
            self._complete(op)
        else:  # pragma: no cover - routing error
            raise ValueError(f"lock client: unexpected kind {op.kind}")

    def on_message(self, msg: Message) -> None:
        """A grant arrived: the blocked acquire completes."""
        if msg.token.type is not MsgType.LK_GNT:  # pragma: no cover
            raise ValueError(f"lock client: unexpected {msg.token.type}")
        op = self._waiting.pop(msg.token.object_name)
        self._complete(op)

    def _send(self, mtype: MsgType, op: Operation) -> None:
        token = MessageToken(mtype, self._node.node_id, op.obj,
                             QueueTag.DISTRIBUTED, ParamPresence.NONE)
        self._node.network.send(
            Message(token, self._node.node_id, self._node.sequencer_id,
                    op_id=op.op_id),
            self._node.S, self._node.P,
        )

    def _complete(self, op: Operation) -> None:
        op.complete_time = self._node.scheduler.now
        self._node.metrics.record_complete(op.op_id, op.complete_time)
        if self._node.on_complete is not None:
            self._node.on_complete(op)
        if op.callback is not None:
            op.callback(op)


class LockManager:
    """FIFO lock manager at the sequencer node: one lock per object."""

    def __init__(self, node):
        self._node = node
        #: object -> current holder node (None = free)
        self.holder: Dict[int, Optional[int]] = {}
        #: object -> FIFO of (waiter node, op_id)
        self._queue: Dict[int, Deque[Tuple[int, int]]] = {}
        #: local acquires blocked at the manager's own node
        self._local_waiting: Dict[int, Operation] = {}

    def on_message(self, msg: Message) -> None:
        obj = msg.token.object_name
        if msg.token.type is MsgType.LK_REQ:
            self._acquire(obj, msg.src, msg.op_id)
        elif msg.token.type is MsgType.UNLK:
            self._release(obj, msg.src, msg.op_id)
        else:  # pragma: no cover - routing error
            raise ValueError(f"lock manager: unexpected {msg.token.type}")

    def local_request(self, op: Operation) -> None:
        """Acquire/release issued by the manager's own application."""
        if op.kind == ACQUIRE:
            if self.holder.get(op.obj) is None:
                self.holder[op.obj] = self._node.node_id
                self._complete_local(op)
            else:
                self._local_waiting[op.obj] = op
                self._queue.setdefault(op.obj, deque()).append(
                    (self._node.node_id, op.op_id)
                )
        else:
            self._release(op.obj, self._node.node_id, op.op_id)
            self._complete_local(op)

    # ------------------------------------------------------------------

    def _acquire(self, obj: int, waiter: int, op_id: int) -> None:
        if self.holder.get(obj) is None:
            self.holder[obj] = waiter
            self._grant(obj, waiter, op_id)
        else:
            self._queue.setdefault(obj, deque()).append((waiter, op_id))

    def _release(self, obj: int, releaser: int, op_id: int) -> None:
        if self.holder.get(obj) != releaser:
            raise RuntimeError(
                f"node {releaser} released lock {obj} held by "
                f"{self.holder.get(obj)}"
            )
        queue = self._queue.get(obj)
        if queue:
            waiter, waiter_op = queue.popleft()
            self.holder[obj] = waiter
            if waiter == self._node.node_id:
                op = self._local_waiting.pop(obj)
                self._complete_local(op)
            else:
                self._grant(obj, waiter, waiter_op)
        else:
            self.holder[obj] = None

    def _grant(self, obj: int, waiter: int, op_id: int) -> None:
        token = MessageToken(MsgType.LK_GNT, waiter, obj,
                             QueueTag.DISTRIBUTED, ParamPresence.NONE)
        self._node.network.send(
            Message(token, self._node.node_id, waiter, op_id=op_id),
            self._node.S, self._node.P,
        )

    def _complete_local(self, op: Operation) -> None:
        op.complete_time = self._node.scheduler.now
        self._node.metrics.record_complete(op.op_id, op.complete_time)
        if self._node.on_complete is not None:
            self._node.on_complete(op)
        if op.callback is not None:
            op.callback(op)
