"""Runtime consistency monitor: convergence and sequential consistency.

An opt-in observer (``DSMSystem(monitor=True)``) that records every
node's completed read/write history and, at quiescence, checks the two
guarantees the replicated-memory model promises even across crashes and
failovers:

* **replica convergence** — every copy that serves local reads equals the
  authoritative serialized value (per-object version vectors of install
  counts are kept for the diagnosis);
* **sequential consistency** of the merged completed history, checked
  per object — matching the system's consistency unit: each shared
  object has its own serialization point (sequencer or owner), so the
  guarantee the protocols provide is per-object sequential consistency
  (coherence).  The checker searches for a *witness*: one interleaving
  of the per-node program-order histories in which every read returns
  the most recently written value (initially 0).  The search is a greedy
  read-closure (taking an enabled read never forecloses a witness, so
  they are consumed eagerly) plus depth-first branching over the
  possible write orders, memoized on the search state.

Crash-awareness: a write that was *issued but never completed* (lost in
flight, or re-driven traffic observed by some replica before a crash) may
legitimately be observed by completed reads.  Such **phantom writes** may
be materialized at any single point of the witness; this direction can
only make the checker more permissive — violations are never reported
against a history a crash can explain (no false positives; at worst a
missed violation).

Graceful degradation: the checker never raises.  A history with no
witness produces a structured :class:`ConsistencyViolation`; a search
that exhausts its step budget counts as *inconclusive* (reported on the
monitor, not as a violation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..protocols.base import READ, WRITE, Operation

__all__ = ["ConsistencyViolation", "ConsistencyMonitor"]


@dataclass(frozen=True)
class ConsistencyViolation:
    """One structured consistency finding (never an exception).

    Attributes:
        kind: ``"divergence"`` (a readable replica disagrees with the
            authoritative value) or ``"sequential_consistency"`` (the
            merged completed history admits no legal interleaving).
        obj: the shared object concerned.
        detail: human-readable diagnosis.
        history: a bounded slice of the per-node completed histories that
            exhibit the problem, as ``(node, kind, value)`` triples.
    """

    kind: str
    obj: int
    detail: str
    history: Tuple[Tuple[int, str, object], ...] = field(default=())


class _BudgetExhausted(Exception):
    pass


class ConsistencyMonitor:
    """Records completed operation histories and checks them at quiescence.

    Attach through ``DSMSystem(monitor=True)``; the monitor only ever
    *observes* (submit/complete/install hooks) — it cannot perturb the
    simulation, and all checking happens after the run.
    """

    #: cap on violation history slices (keep reports readable)
    HISTORY_SLICE = 40

    def __init__(self, step_budget: int = 200_000) -> None:
        if step_budget < 1:
            raise ValueError("step_budget must be positive")
        self.step_budget = step_budget
        #: SC witness searches abandoned at the step budget (not violations)
        self.inconclusive = 0
        # obj -> node -> completed (kind, value) in program order
        self._history: Dict[int, Dict[int, List[Tuple[str, object]]]] = {}
        # issued writes not (yet) completed are phantom candidates
        self._issued_writes: Dict[int, Operation] = {}
        self._completed_ids: Set[int] = set()
        # version vectors: (node, obj) -> install count
        self._installs: Dict[Tuple[int, int], int] = {}
        #: reads served from a stale replica under partition degraded mode
        self.stale_reads = 0
        # op ids of those reads: flagged before completion, so
        # on_complete can keep them out of the SC witness history
        self._degraded: Set[int] = set()

    # ------------------------------------------------------------------
    # observer hooks
    # ------------------------------------------------------------------

    def on_submit(self, op: Operation) -> None:
        """An application issued ``op`` (phantom-write bookkeeping)."""
        if op.kind == WRITE:
            self._issued_writes[op.op_id] = op

    def on_complete(self, op: Operation) -> None:
        """``op`` completed: append it to its node's per-object history."""
        if op.kind not in (READ, WRITE):
            return
        self._completed_ids.add(op.op_id)
        if op.op_id in self._degraded:
            # a stale read served under partition degraded mode: the
            # policy *advertises* weaker-than-SC semantics for it, so it
            # is counted (``stale_reads``) but excluded from the witness
            # search — including it would report the staleness the user
            # opted into as a sequential-consistency violation.
            return
        value = op.result if op.kind == READ else op.params
        self._history.setdefault(op.obj, {}).setdefault(
            op.node, []
        ).append((op.kind, value))

    def on_degraded_read(self, op: Operation) -> None:
        """Flag ``op`` as a stale read about to be served degraded."""
        self.stale_reads += 1
        self._degraded.add(op.op_id)

    def on_install(self, node: int, obj: int, value: object,
                   time: float) -> None:
        """A replica installed a value (version-vector bookkeeping)."""
        self._installs[(node, obj)] = self._installs.get((node, obj), 0) + 1

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------

    def version_vector(self, obj: int) -> Dict[int, int]:
        """Install counts per node for ``obj`` (diagnostic)."""
        return {
            node: count
            for (node, o), count in sorted(self._installs.items())
            if o == obj
        }

    def objects(self) -> List[int]:
        """Objects with recorded history."""
        return sorted(self._history)

    def check_convergence(
        self,
        obj: int,
        truth: object,
        replicas: Iterable[Tuple[int, str, object, bool]],
    ) -> List[ConsistencyViolation]:
        """Compare readable replicas of ``obj`` against ``truth``.

        ``replicas`` yields ``(node, state, value, readable)``; only
        readable copies participate (an INVALID copy is allowed to hold
        anything).  The system excludes nodes that are down at the end of
        the run — a dead replica cannot serve reads.
        """
        violations = []
        for node, state, value, readable in replicas:
            if readable and value != truth:
                violations.append(ConsistencyViolation(
                    kind="divergence",
                    obj=obj,
                    detail=(
                        f"node {node} holds {value!r} in readable state "
                        f"{state} but the authoritative value is {truth!r} "
                        f"(version vector {self.version_vector(obj)})"
                    ),
                ))
        return violations

    def check_object(self, obj: int) -> Optional[ConsistencyViolation]:
        """Search for a sequential-consistency witness for ``obj``.

        Returns a violation when no witness exists, ``None`` when one is
        found *or* when the search budget runs out (counted in
        :attr:`inconclusive` — degradation, never a false positive).
        """
        per_node = self._history.get(obj, {})
        nodes = sorted(per_node)
        sequences = [tuple(per_node[n]) for n in nodes]
        if not sequences:
            return None
        phantoms = tuple(
            op.params for op in self._issued_writes.values()
            if op.obj == obj and op.op_id not in self._completed_ids
        )
        try:
            if self._witness(sequences, phantoms):
                return None
        except _BudgetExhausted:
            self.inconclusive += 1
            return None
        return ConsistencyViolation(
            kind="sequential_consistency",
            obj=obj,
            detail=(
                f"no legal interleaving of the completed history exists "
                f"for object {obj} ({sum(map(len, sequences))} ops across "
                f"{len(nodes)} nodes, {len(phantoms)} phantom writes "
                f"considered)"
            ),
            history=self._history_slice(obj),
        )

    def check(
        self,
        authoritative: Dict[int, object],
        replicas: Dict[int, List[Tuple[int, str, object, bool]]],
    ) -> List[ConsistencyViolation]:
        """Run every check; returns all violations (empty when clean)."""
        violations: List[ConsistencyViolation] = []
        for obj in sorted(set(self.objects()) | set(authoritative)):
            if obj in authoritative:
                violations.extend(self.check_convergence(
                    obj, authoritative[obj], replicas.get(obj, ())
                ))
            sc = self.check_object(obj)
            if sc is not None:
                violations.append(sc)
        return violations

    # ------------------------------------------------------------------
    # witness search
    # ------------------------------------------------------------------

    def _witness(
        self,
        sequences: List[Tuple[Tuple[str, object], ...]],
        phantoms: Tuple[object, ...],
    ) -> bool:
        budget = self.step_budget
        seen: Set[Tuple] = set()
        n = len(sequences)
        lengths = tuple(len(s) for s in sequences)

        def closure(pos: Tuple[int, ...], current: object) -> Tuple[int, ...]:
            # consume every read satisfied by the current value: reads do
            # not change the memory, so taking them never loses witnesses.
            out = list(pos)
            for i in range(n):
                while out[i] < lengths[i]:
                    kind, value = sequences[i][out[i]]
                    if kind == READ and value == current:
                        out[i] += 1
                    else:
                        break
            return tuple(out)

        def search(pos: Tuple[int, ...], current: object,
                   used: int) -> bool:
            nonlocal budget
            budget -= 1
            if budget <= 0:
                raise _BudgetExhausted
            pos = closure(pos, current)
            if all(pos[i] == lengths[i] for i in range(n)):
                return True
            key = (pos, current, used)
            if key in seen:
                return False
            seen.add(key)
            for i in range(n):
                if pos[i] >= lengths[i]:
                    continue
                kind, value = sequences[i][pos[i]]
                if kind == WRITE:
                    nxt = pos[:i] + (pos[i] + 1,) + pos[i + 1:]
                    if search(nxt, value, used):
                        return True
                else:
                    # a blocked read: it may be explained by materializing
                    # an unused phantom write just before it.
                    for j, phantom in enumerate(phantoms):
                        if used & (1 << j) or phantom != value:
                            continue
                        nxt = pos[:i] + (pos[i] + 1,) + pos[i + 1:]
                        if search(nxt, phantom, used | (1 << j)):
                            return True
            return False

        return search(tuple(0 for _ in sequences), 0, 0)

    def _history_slice(self, obj: int) -> Tuple[Tuple[int, str, object], ...]:
        entries: List[Tuple[int, str, object]] = []
        for node, ops in sorted(self._history.get(obj, {}).items()):
            for kind, value in ops[-self.HISTORY_SLICE:]:
                entries.append((node, kind, value))
            if len(entries) >= self.HISTORY_SLICE:
                break
        return tuple(entries[:self.HISTORY_SLICE])
