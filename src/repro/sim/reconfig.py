"""Online replica-set reconfiguration: epoch-based membership change.

The paper (and every robustness layer built on it so far) assumes a fixed
set of ``N + 1`` replicas for the lifetime of a run.  This module lets a
run *change* the replica set of the sequencer-less quorum family
(:mod:`repro.protocols.sc_abd`) while client operations keep flowing:

* a :class:`ReconfigPlan` — a seeded, validated value object exactly like
  :class:`~repro.sim.faults.FaultPlan` — schedules
  :class:`MembershipChange` events (joins and leaves at a point in
  simulation time);
* at each change the system enters a **joint mode** in which every SC-ABD
  quorum phase must intersect a majority of *both* the old and the new
  replica set (:class:`MembershipView` owns the geometry, including the
  optional per-node vote weights of the weighted-majority extension);
* joining nodes catch up via a **versioned state transfer** priced with
  the :class:`~repro.sim.recovery.RecoveryManager` snapshot model (a
  one-token version probe per object plus the cheaper of an ordered
  catch-up at ``P + 1`` per missed write and a whole-copy transfer at
  ``S + 1``), retried with bounded exponential backoff when the donors
  are unreachable — the same discipline the unordered-datagram transport
  applies to its frames;
* the epoch **commits only when transfer settles**: the authoritative
  state is first established at a live majority of the new set (so every
  post-commit read quorum intersects a holder even after multi-node
  leaves), then the transport epoch is bumped
  (:meth:`~repro.sim.reliable.ReliableNetwork.advance_epoch` voids the
  old view's in-flight quorum traffic) and ops in flight across the
  boundary are **re-driven exactly once** (a fresh-generation phase
  restart; the operation still completes exactly once end to end);
* a transition whose transfer cannot settle within the retry budget is
  **aborted** — the view rolls back to the old membership, which is
  always safe because joint-mode writes reached a majority of the old
  set too.  Availability is never held hostage by a stuck transfer.

Costs are charged through
:meth:`~repro.sim.metrics.Metrics.record_reconfig_cost` and amortized as
the ``reconfig`` share of
:meth:`~repro.sim.metrics.Metrics.average_cost_breakdown`.

Pay-for-what-you-use: a plan that schedules no changes is normalized to
``None`` by :class:`~repro.sim.config.RunConfig` and
:class:`~repro.sim.system.DSMSystem`, so such runs stay bit-identical to
the static-membership simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..util import reject_unknown_keys
from ..util import backoff_delay
from .engine import EventScheduler
from .faults import FaultPlan
from .metrics import Metrics
from .reliable import ReliabilityConfig, ReliableNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import ClusterView, SimNode

__all__ = [
    "TRANSFER_DELAY_CAP",
    "MembershipChange",
    "MembershipView",
    "ReconfigPlan",
    "ReconfigManager",
]

#: ceiling on the state-transfer retry backoff (mirrors the quorum
#: re-selection delay cap: beyond this, longer waits add latency without
#: adding safety)
TRANSFER_DELAY_CAP = 400.0


@dataclass(frozen=True, slots=True)
class MembershipChange:
    """One scheduled membership change: joins and leaves at time ``at``.

    ``joins`` and ``leaves`` are node indices; they must be disjoint and
    at least one of them non-empty (a change that changes nothing has no
    sensible meaning).  Whether the named nodes are legal joins/leaves
    depends on the membership at that point of the schedule and is
    checked by :meth:`ReconfigPlan.validate_membership`.
    """

    at: float
    joins: Tuple[int, ...] = ()
    leaves: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not (self.at >= 0.0 and math.isfinite(self.at)):
            raise ValueError(
                f"change time must be finite and >= 0, got {self.at}"
            )
        joins = tuple(sorted(set(int(n) for n in self.joins)))
        leaves = tuple(sorted(set(int(n) for n in self.leaves)))
        object.__setattr__(self, "joins", joins)
        object.__setattr__(self, "leaves", leaves)
        if not joins and not leaves:
            raise ValueError(
                "a membership change must join or leave at least one node"
            )
        overlap = set(joins) & set(leaves)
        if overlap:
            raise ValueError(
                f"nodes {sorted(overlap)} cannot join and leave in the "
                f"same membership change"
            )
        for node in joins + leaves:
            if node < 1:
                raise ValueError(f"node indices must be >= 1, got {node}")


class ReconfigPlan:
    """A seeded, deterministic schedule of membership changes.

    Args:
        seed: seed identifying the schedule (part of the configuration
            identity, like :class:`~repro.sim.faults.FaultPlan`'s).
        changes: :class:`MembershipChange` instances or
            ``(at, joins, leaves)`` tuples.  Changes are kept sorted by
            time; two changes at the same instant are rejected (their
            relative order would be undefined).
    """

    def __init__(self, seed: int = 0, changes: Sequence = ()) -> None:
        self.seed = seed
        self.changes: Tuple[MembershipChange, ...] = tuple(sorted(
            (c if isinstance(c, MembershipChange) else MembershipChange(*c)
             for c in changes),
            key=lambda c: c.at,
        ))
        for prev, cur in zip(self.changes, self.changes[1:]):
            if cur.at == prev.at:
                raise ValueError(
                    f"two membership changes at the same time "
                    f"({cur.at:g}); merge them into one change"
                )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def max_node(self) -> int:
        """The highest node index named anywhere in the schedule."""
        nodes = [n for c in self.changes for n in c.joins + c.leaves]
        return max(nodes) if nodes else 0

    def validate_membership(self, num_nodes: int) -> None:
        """Walk the schedule from the initial membership ``1 .. num_nodes``.

        Rejects joins of current members, leaves of non-members, and any
        change that would shrink the replica set below two members (a
        single replica has no majority-intersection story to tell).
        Called with ``N + 1`` by :class:`~repro.sim.system.DSMSystem`.
        """
        members = set(range(1, num_nodes + 1))
        for change in self.changes:
            rejoin = set(change.joins) & members
            if rejoin:
                raise ValueError(
                    f"change at {change.at:g} joins nodes "
                    f"{sorted(rejoin)} that are already replica-set "
                    f"members"
                )
            missing = set(change.leaves) - members
            if missing:
                raise ValueError(
                    f"change at {change.at:g} removes nodes "
                    f"{sorted(missing)} that are not replica-set members"
                )
            members = (members - set(change.leaves)) | set(change.joins)
            if len(members) < 2:
                raise ValueError(
                    f"change at {change.at:g} leaves fewer than two "
                    f"replicas ({sorted(members)}); majority quorums "
                    f"need at least two members"
                )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "ReconfigPlan":
        """The explicit no-change plan (identical to running without one)."""
        return cls()

    def replay(self) -> "ReconfigPlan":
        """A fresh plan with the same configuration."""
        return ReconfigPlan(seed=self.seed, changes=self.changes)

    @property
    def is_none(self) -> bool:
        """Whether this plan schedules no membership change at all."""
        return not self.changes

    # ------------------------------------------------------------------
    # configuration identity and serialization
    # ------------------------------------------------------------------

    def config_key(self) -> tuple:
        """The plan's configuration (identity for ``__eq__`` and caches)."""
        return (
            self.seed,
            tuple((c.at, c.joins, c.leaves) for c in self.changes),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ReconfigPlan):
            return NotImplemented
        return self.config_key() == other.config_key()

    def __hash__(self) -> int:
        return hash(self.config_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReconfigPlan({self.describe()})"

    def to_dict(self) -> dict:
        """A plain-JSON dict of the configuration."""
        return {
            "seed": int(self.seed),
            "changes": [
                [float(c.at), [int(n) for n in c.joins],
                 [int(n) for n in c.leaves]]
                for c in self.changes
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReconfigPlan":
        """Rebuild a plan from :meth:`to_dict` output (strict keys)."""
        reject_unknown_keys(data, ("seed", "changes"), "ReconfigPlan")
        changes = [
            MembershipChange(float(entry[0]),
                             tuple(int(n) for n in entry[1]),
                             tuple(int(n) for n in entry[2]))
            for entry in data.get("changes", ())
        ]
        return cls(seed=int(data.get("seed", 0)), changes=changes)

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        if self.is_none:
            return "no reconfiguration"
        parts = [f"seed={self.seed}"]
        for c in self.changes:
            bits = []
            if c.joins:
                bits.append("+" + ",".join(str(n) for n in c.joins))
            if c.leaves:
                bits.append("-" + ",".join(str(n) for n in c.leaves))
            parts.append(f"change(@{c.at:g}: {' '.join(bits)})")
        return ", ".join(parts)


class MembershipView:
    """The quorum geometry shared by every SC-ABD port of one system.

    Owns the committed member set, the joint ``(old, new)`` overlap
    during a transition, and the optional per-node vote weights.  A
    quorum phase is satisfied when its responders carry a weight
    majority of the committed set *and*, during a transition, of the old
    set too — the joint-consensus overlap rule that keeps any two
    quorums intersecting across the epoch boundary.

    Unweighted systems are the ``weight = 1`` special case: a weight sum
    strictly above half the member count is exactly the familiar
    ``n // 2 + 1`` majority, and the weighted core of ``1 .. n`` is the
    lowest-index majority prefix — so the static-membership fast path in
    :mod:`repro.protocols.sc_abd` (no view at all) remains bit-identical.
    """

    __slots__ = ("committed", "joint_old", "weights")

    def __init__(
        self,
        members: Sequence[int],
        weights: Optional[Dict[int, float]] = None,
    ) -> None:
        self.committed: Tuple[int, ...] = tuple(sorted(members))
        #: the previous membership while a transition is pending
        self.joint_old: Optional[Tuple[int, ...]] = None
        self.weights: Optional[Dict[int, float]] = (
            dict(weights) if weights else None
        )

    def weight(self, node: int) -> float:
        """The vote weight of ``node`` (1 unless overridden)."""
        if self.weights is None:
            return 1.0
        return float(self.weights.get(node, 1.0))

    @property
    def in_transition(self) -> bool:
        return self.joint_old is not None

    # ------------------------------------------------------------------
    # quorum geometry
    # ------------------------------------------------------------------

    def ranked(self, members: Sequence[int]) -> List[int]:
        """Members by descending weight, index-ascending within ties."""
        return sorted(members, key=lambda n: (-self.weight(n), n))

    def quorum_prefix(
        self, candidates: Sequence[int], of_members: Sequence[int]
    ) -> Tuple[int, ...]:
        """The cheapest ``candidates`` prefix holding a majority of
        ``of_members``'s total weight (empty when unreachable)."""
        total = sum(self.weight(n) for n in of_members)
        got = 0.0
        prefix: List[int] = []
        for node in self.ranked(candidates):
            prefix.append(node)
            got += self.weight(node)
            if got > total / 2.0:
                return tuple(sorted(prefix))
        return ()

    def core_of(self, members: Sequence[int]) -> Tuple[int, ...]:
        """The fault-free core quorum of ``members``."""
        return self.quorum_prefix(members, members)

    def core(self) -> Tuple[int, ...]:
        """The phase target set in fault-free operation.

        During a transition this is the union of both cores, so one
        phase fan-out can satisfy both majorities at once.
        """
        core = set(self.core_of(self.committed))
        if self.joint_old is not None:
            core |= set(self.core_of(self.joint_old))
        return tuple(sorted(core))

    def broadcast(self) -> Tuple[int, ...]:
        """Every node a re-selection re-broadcast may target."""
        if self.joint_old is None:
            return self.committed
        return tuple(sorted(set(self.committed) | set(self.joint_old)))

    def majority_of(self, responders, members: Sequence[int]) -> bool:
        """Whether ``responders`` hold a weight majority of ``members``."""
        total = sum(self.weight(n) for n in members)
        got = sum(self.weight(n) for n in set(responders) & set(members))
        return got > total / 2.0

    def satisfied(self, responders) -> bool:
        """Whether a quorum phase with these responders may complete."""
        if not self.majority_of(responders, self.committed):
            return False
        if self.joint_old is not None:
            return self.majority_of(responders, self.joint_old)
        return True


class ReconfigManager:
    """Drives the membership-change schedule of one system.

    Built by :class:`~repro.sim.system.DSMSystem` when a non-trivial
    :class:`ReconfigPlan` is configured (quorum protocols only).  Every
    change is scheduled at construction time, so the transitions are
    deterministic with respect to the workload.
    """

    def __init__(
        self,
        plan: ReconfigPlan,
        view: MembershipView,
        nodes: Dict[int, "SimNode"],
        cluster: "ClusterView",
        scheduler: EventScheduler,
        network: ReliableNetwork,
        metrics: Metrics,
        faults: Optional[FaultPlan],
        reliability: ReliabilityConfig,
        S: float,
        P: float,
        latency: float,
    ) -> None:
        self.plan = plan
        self.view = view
        self.nodes = nodes
        self.cluster = cluster
        self.scheduler = scheduler
        self.network = network
        self.metrics = metrics
        self.faults = faults
        self.S = S
        self.P = P
        self.latency = latency
        #: state-transfer retry policy: the transport's datagram
        #: discipline applied to the snapshot fetch
        self.retry_timeout = reliability.timeout
        self.retry_backoff = reliability.backoff
        self.max_retries = reliability.max_retries
        #: joiners whose state transfer has not settled yet
        self._pending_joins: Set[int] = set()
        #: changes that fired while an earlier transition was pending
        self._deferred: List[MembershipChange] = []
        self._joint_started = 0.0
        for change in plan.changes:
            self.scheduler.schedule_at(
                change.at, (lambda c=change: self._begin(c))
            )

    # ------------------------------------------------------------------
    # transition begin: enter joint mode
    # ------------------------------------------------------------------

    def _begin(self, change: MembershipChange) -> None:
        if self.view.in_transition:
            # one transition at a time: quorum overlap is only proven
            # between adjacent memberships.  Later changes wait for the
            # pending commit (or abort) and run back to back.
            self._deferred.append(change)
            return
        stats = self.metrics.reconfig
        stats.transitions += 1
        stats.joins += len(change.joins)
        stats.leaves += len(change.leaves)
        old = self.view.committed
        new = tuple(sorted(
            (set(old) - set(change.leaves)) | set(change.joins)
        ))
        self.view.joint_old = old
        self.view.committed = new
        self._joint_started = self.scheduler.now
        union = set(old) | set(new)
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event(
                "reconfig_begin",
                detail="joint mode %s -> %s" % (list(old), list(new)),
            )
        # change announcement: one bare token to every other participant.
        self.metrics.record_reconfig_cost(float(len(union) - 1),
                                          kind="announce")
        # ops in flight keep flowing, but their phases must now satisfy
        # both majorities: restart them against the joint targets instead
        # of stalling until the re-selection timer notices.
        stats.ops_redriven += self._restart_inflight()
        self._pending_joins = set(change.joins)
        if self._pending_joins:
            for joiner in sorted(self._pending_joins):
                self._transfer(joiner, 0)
        else:
            # leave-only change: one announce round trip, then settle.
            self.scheduler.schedule(
                2.0 * self.latency, (lambda: self._try_commit(0))
            )

    # ------------------------------------------------------------------
    # versioned state transfer (joiner catch-up)
    # ------------------------------------------------------------------

    def _transfer(self, joiner: int, attempt: int) -> None:
        if not self.view.in_transition:
            return  # the transition was aborted meanwhile
        if self._transfer_ok(joiner):
            # probe the donors, fetch the snapshot: one round trip.
            self.scheduler.schedule(
                2.0 * self.latency,
                (lambda: self._finish_transfer(joiner, attempt)),
            )
        else:
            self._retry_transfer(joiner, attempt)

    def _transfer_ok(self, joiner: int) -> bool:
        """Whether the snapshot fetch can succeed right now: the joiner
        is up and a majority of the old set is live to serve it."""
        old = self.view.joint_old
        if old is None:
            return False
        return (self._is_live(joiner)
                and self.view.majority_of(self._live(old), old))

    def _finish_transfer(self, joiner: int, attempt: int) -> None:
        if not self.view.in_transition:
            return
        if joiner not in self._pending_joins:
            return  # a racing retry already settled this joiner
        if not self._transfer_ok(joiner):
            # the donors (or the joiner) died during the round trip.
            self._retry_transfer(joiner, attempt)
            return
        old = self.view.joint_old
        donors = self._live(old)
        node = self.nodes[joiner]
        stats = self.metrics.reconfig
        cost = 0.0
        for obj, port in node.ports.items():
            cost += 1.0  # version probe: a bare token to the donors
            ts, value = self._authoritative(obj, donors)
            missed = max(0, ts[0] - port.process.ts[0])
            if missed and port.process.absorb_snapshot(ts, value):
                # cheaper of ordered catch-up and whole-copy transfer
                cost += min(missed * (self.P + 1.0), self.S + 1.0)
                stats.transfer_objects += 1
        stats.transfer_cost += cost
        self.metrics.record_reconfig_cost(cost, kind="transfer")
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event(
                "reconfig_transfer", dst=joiner,
                detail="node %d caught up (attempt %d)" % (joiner, attempt),
            )
        self._pending_joins.discard(joiner)
        if not self._pending_joins:
            self._try_commit(0)

    def _retry_transfer(self, joiner: int, attempt: int) -> None:
        stats = self.metrics.reconfig
        if attempt >= self.max_retries:
            stats.transfers_failed += 1
            self._abort("state transfer to node %d exhausted its retries"
                        % joiner)
            return
        stats.transfer_retries += 1
        self.scheduler.schedule(
            self._retry_delay(attempt),
            (lambda: self._transfer(joiner, attempt + 1)),
        )

    def _retry_delay(self, attempt: int) -> float:
        return backoff_delay(self.retry_timeout, self.retry_backoff,
                             attempt, cap=TRANSFER_DELAY_CAP)

    # ------------------------------------------------------------------
    # commit: establish the new quorum, bump the epoch, re-drive
    # ------------------------------------------------------------------

    def _try_commit(self, attempt: int) -> None:
        if not self.view.in_transition:
            return
        old = self.view.joint_old
        new = self.view.committed
        live_old = self._live(old)
        live_new = self._live(new)
        if (self.view.majority_of(live_old, old)
                and self.view.majority_of(live_new, new)):
            self._sync_new_quorum(live_old, live_new)
            self._commit()
            return
        stats = self.metrics.reconfig
        if attempt >= self.max_retries:
            stats.transfers_failed += 1
            self._abort("no live majority to commit against")
            return
        stats.transfer_retries += 1
        self.scheduler.schedule(
            self._retry_delay(attempt),
            (lambda: self._try_commit(attempt + 1)),
        )

    def _sync_new_quorum(self, live_old: List[int],
                         live_new: List[int]) -> None:
        """Establish the authoritative state at a majority of the new set.

        Required for safety beyond the joiners' own catch-up: after a
        multi-node leave, a post-commit read quorum of the new set could
        otherwise miss every holder of a write that predates the
        transition (its quorum only intersected the *old* majority).
        Installing the snapshot at a weight majority of the new set
        restores the invariant that any two quorums share a holder.
        """
        targets = self.view.quorum_prefix(live_new, self.view.committed)
        donors = sorted(set(live_old) | set(live_new))
        stats = self.metrics.reconfig
        cost = 0.0
        for member in targets:
            node = self.nodes[member]
            for obj, port in node.ports.items():
                ts, value = self._authoritative(obj, donors)
                missed = max(0, ts[0] - port.process.ts[0])
                if missed and port.process.absorb_snapshot(ts, value):
                    cost += 1.0 + min(missed * (self.P + 1.0),
                                      self.S + 1.0)
                    stats.transfer_objects += 1
        if cost:
            stats.transfer_cost += cost
            self.metrics.record_reconfig_cost(cost, kind="sync")

    def _commit(self) -> None:
        stats = self.metrics.reconfig
        stats.commits += 1
        stats.joint_time += self.scheduler.now - self._joint_started
        old = self.view.joint_old
        new = self.view.committed
        union = set(old) | set(new)
        self.view.joint_old = None
        # the epoch boundary: void the joint mode's in-flight quorum
        # traffic so no stale phase frame leaks into the new view.  The
        # quorum family keeps no FIFO write propagation, so the voided
        # data frames need no write-log absorption here.
        self.cluster.epoch += 1
        self.network.advance_epoch()
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event(
                "reconfig_commit",
                detail="epoch %d, members %s"
                % (self.cluster.epoch, list(new)),
            )
        self.metrics.record_reconfig_cost(float(len(union) - 1),
                                          kind="epoch_announce")
        # exactly-once re-drive: every in-flight op restarts its current
        # phase under a fresh generation in the new epoch; it completes
        # once, and its voided old-epoch traffic can never complete it.
        stats.ops_redriven += self._restart_inflight()
        if self._deferred:
            self._begin(self._deferred.pop(0))

    def _abort(self, why: str) -> None:
        """Roll the pending transition back to the old membership.

        Always safe: joint-mode quorums intersected a majority of the
        old set, so the old membership alone still holds every committed
        write.  Keeps a stuck transfer from wedging the run in joint
        mode forever.
        """
        stats = self.metrics.reconfig
        stats.aborts += 1
        stats.joint_time += self.scheduler.now - self._joint_started
        old = self.view.joint_old
        new = self.view.committed
        union = set(old) | set(new)
        self.view.committed = old
        self.view.joint_old = None
        self._pending_joins.clear()
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event("reconfig_abort", detail=why)
        self.metrics.record_reconfig_cost(float(len(union) - 1),
                                          kind="announce")
        stats.ops_redriven += self._restart_inflight()
        if self._deferred:
            self._begin(self._deferred.pop(0))

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _is_live(self, node: int) -> bool:
        if node in self.cluster.quarantined:
            return False
        return (self.faults is None
                or not self.faults.is_down(node, self.scheduler.now))

    def _live(self, members) -> List[int]:
        return [n for n in members if self._is_live(n)]

    def _authoritative(self, obj: int, members) -> Tuple[tuple, object]:
        """The max-timestamp ``(ts, value)`` of ``obj`` across ``members``."""
        best = max(
            (self.nodes[n].process_for(obj) for n in members),
            key=lambda proc: proc.ts,
        )
        return tuple(best.ts), best.value

    def _restart_inflight(self) -> int:
        redriven = 0
        for node_id in sorted(self.nodes):
            for port in self.nodes[node_id].ports.values():
                restart = getattr(port.process, "restart_inflight", None)
                if restart is not None and restart():
                    redriven += 1
        return redriven
