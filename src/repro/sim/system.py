"""The distributed shared-memory system facade (paper Section 2).

:class:`DSMSystem` assembles the full substrate — ``N + 1`` nodes, the
fault-free FIFO fabric, per-object protocol processes with local/distributed
queues, cost accounting — and runs stochastic workloads against it the way
the paper's Ada simulator did (Section 5.2): operations arrive as a Poisson
stream whose event mix equals the workload's trial distribution, the first
``warmup`` completions are discarded, and ``acc`` is measured over the
steady-state window.

The class also exposes the whole-system invariants the test suite checks:
FIFO delivery (enforced inside :class:`~repro.sim.channel.Network`),
quiescent coherence (every locally readable copy equals the authoritative
serialized value) and conservation of cost attribution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..protocols.base import (
    READ,
    WRITE,
    Operation,
    ProtocolSpec,
)
from ..obs.trace import TraceConfig, Tracer
from ..protocols.registry import get_protocol
from ..workloads.base import Workload
from .cache import CacheConfig
from .channel import Network
from .config import RunConfig
from .engine import EventScheduler
from .faults import FaultPlan
from .hedge import HedgeConfig
from .metrics import Metrics
from .monitor import ConsistencyMonitor, ConsistencyViolation
from .node import ClusterView, SimNode
from .partition import FailureDetector, PartitionPlan
from .reconfig import MembershipView, ReconfigManager, ReconfigPlan
from .recovery import RecoveryManager, WriteLog
from .reliable import ReliabilityConfig, ReliableNetwork

__all__ = ["DSMSystem", "SimulationResult"]

#: per-protocol states in which a local read hits (client or owner side)
_HIT_STATES: Dict[str, frozenset] = {
    "write_through": frozenset({"VALID"}),
    "write_through_dir": frozenset({"VALID"}),
    "write_through_v": frozenset({"VALID"}),
    "write_once": frozenset({"VALID", "RESERVED", "DIRTY"}),
    "synapse": frozenset({"VALID", "DIRTY"}),
    "illinois": frozenset({"VALID", "DIRTY"}),
    "berkeley": frozenset({"VALID", "DIRTY", "SHARED-DIRTY"}),
    "dragon": frozenset({"SHARED-CLEAN", "SHARED-DIRTY"}),
    "firefly": frozenset({"SHARED", "VALID"}),
    # quorum family: no state ever serves a local read (every read is a
    # distributed quorum round), so nothing is checkable as a "hit" copy
    "sc_abd": frozenset(),
}

#: owner-role states for authoritative-value lookup
_OWNER_STATES: Dict[str, frozenset] = {
    "berkeley": frozenset({"DIRTY", "SHARED-DIRTY"}),
    "dragon": frozenset({"SHARED-DIRTY"}),
}


def _normalize_weights(weights) -> Optional[Dict[int, float]]:
    """Canonicalize quorum vote weights to ``{node: weight}`` (or ``None``).

    Accepts a mapping or ``(node, weight)`` pairs.  All-default weights
    (every named node weighing 1) normalize to ``None`` — they *are* the
    unweighted count majority, and collapsing them keeps such runs
    bit-identical to systems built without the argument.
    """
    if weights is None:
        return None
    items = weights.items() if hasattr(weights, "items") else weights
    out: Dict[int, float] = {}
    for node, weight in items:
        node = int(node)
        weight = float(weight)
        if node in out:
            raise ValueError(f"duplicate quorum weight for node {node}")
        if not (weight > 0 and math.isfinite(weight)):
            raise ValueError(
                f"quorum weight for node {node} must be a positive "
                f"finite number, got {weight}"
            )
        out[node] = weight
    if not out or all(w == 1.0 for w in out.values()):
        return None
    return out


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    protocol: str
    total_ops: int
    warmup: int
    measured: int
    #: steady-state average communication cost per operation
    acc: float
    #: total simulated messages
    messages: int
    #: final simulation time
    end_time: float
    metrics: Metrics
    #: operations that never completed because a message's retry budget
    #: ran out, an amnesia crash killed their node, or a partition
    #: quarantine stalled them (graceful degradation under faults); 0 on
    #: a healthy run
    incomplete_ops: int = 0
    #: structured findings: every retry-budget exhaustion as a
    #: :class:`~repro.sim.reliable.DeliveryViolation`, plus — when the
    #: system was built with ``monitor=True`` and the run had no delivery
    #: failures — the consistency monitor's
    #: :class:`ConsistencyViolation` records; empty on a clean run
    violations: Tuple = field(default=())
    #: the structured tracer (``None`` unless the system was built with
    #: ``tracing=``); export with :func:`repro.obs.write_chrome_trace`
    tracer: Optional[Tracer] = None


class _Observer:
    """Fans node-level run events out to the write log and the monitor.

    Attached to the nodes only when recovery or monitoring is active
    (pay-for-what-you-use: otherwise the hooks stay ``None`` and the hot
    paths skip them entirely).
    """

    __slots__ = ("write_log", "monitor")

    def __init__(self, write_log: Optional[WriteLog],
                 monitor: Optional[ConsistencyMonitor]):
        self.write_log = write_log
        self.monitor = monitor

    def on_submit(self, op: Operation) -> None:
        if self.monitor is not None:
            self.monitor.on_submit(op)

    def on_complete(self, op: Operation) -> None:
        if self.monitor is not None:
            self.monitor.on_complete(op)

    def on_install(self, node: int, obj: int, value, time: float) -> None:
        if self.write_log is not None:
            self.write_log.on_install(node, obj, value, time)
        if self.monitor is not None:
            self.monitor.on_install(node, obj, value, time)

    def on_degraded_read(self, op: Operation) -> None:
        if self.monitor is not None:
            self.monitor.on_degraded_read(op)


class DSMSystem:
    """``N`` clients plus a sequencer running one coherence protocol.

    Args:
        protocol: a :class:`ProtocolSpec` or registry name.
        N: number of clients (nodes ``1 .. N``; the sequencer is ``N + 1``).
        M: number of shared objects.
        S: user-information transfer cost parameter.
        P: write-parameter transfer cost parameter.
        latency: channel latency (time units per hop).
        faults: optional :class:`FaultPlan`; ``None`` (or
            ``FaultPlan.none()``) keeps the paper-faithful fault-free
            fabric, bit-identical to a system built without the argument.
            A real plan implies the reliable-delivery layer.
        partitions: optional :class:`PartitionPlan` of link-level faults
            layered over ``faults``, plus the sequencer-side heartbeat
            failure detector that quarantines unreachable clients through
            the recovery subsystem and rejoins them when the partition
            heals.  A real plan implies the reliable-delivery layer and
            the recovery subsystem.
        reliability: optional :class:`ReliabilityConfig`; defaults are used
            when a fault plan is given without one.  Passing a config with
            no fault plan runs the reliable layer over a fault-free fabric
            (pure acknowledgement overhead).
        failover: enable sequencer failover — when the current sequencer
            crashes, a deterministic standby election promotes the live
            node with the lowest index under a new epoch (the failed
            sequencer rejoins as a client; no failback).  Requires a
            fault plan to have any effect.
        monitor: attach the runtime consistency monitor
            (:mod:`repro.sim.monitor`); :meth:`run_workload` then checks
            replica convergence and per-object sequential consistency at
            quiescence and reports findings on
            :attr:`SimulationResult.violations`.
        tracing: optional :class:`~repro.obs.TraceConfig`; attaches a
            structured :class:`~repro.obs.Tracer` recording per-operation
            spans and system events in simulated time.  Tracing observes
            but never perturbs the run: with ``tracing=None`` every hook
            point is a single ``is not None`` check.
        profiler: optional :class:`~repro.obs.Profiler`; times simulator
            hot paths (event dispatch, protocol transitions,
            reliable-delivery bookkeeping) in wall-clock time.
        reconfig: optional :class:`~repro.sim.reconfig.ReconfigPlan`
            scheduling online replica-set membership changes (quorum
            protocols only).  ``None`` (or a plan with no changes) keeps
            the static membership, bit-identical to a system built
            without the argument.  A real plan implies the
            reliable-delivery layer (epoch commits void the old view's
            in-flight frames through the transport).
        quorum_weights: optional per-node vote weights for the quorum
            family (``{node: weight}`` or ``(node, weight)`` pairs;
            unnamed nodes weigh 1).  Quorums are then *weight*
            majorities: any responder set carrying more than half the
            membership's total weight.  ``None`` (or all-equal weights
            of 1) keeps the classic count majority bit-identical.
        hedge: optional :class:`~repro.sim.hedge.HedgeConfig` enabling
            hedged quorum requests (quorum protocols only): phases that
            miss the latency budget launch extra legs to backup
            replicas, charged to the ``hedge`` cost share.  Implies the
            reliable-delivery layer (hedge legs ride the unordered
            datagram transport and losers are cancelled through it).
            ``None`` keeps the unhedged phase machine bit-identical.
        cache: optional :class:`~repro.sim.cache.CacheConfig` bounding
            each client to ``capacity`` resident replica copies under a
            pluggable eviction policy (partial replication).  Star
            protocols evict through their own ``EJECT`` operations
            (write-backs and directory notices priced per protocol) and
            capacity-missed reads are re-fetched at protocol price,
            charged to the ``cache`` cost share; the quorum family runs
            the cache as free-eviction overlay bookkeeping (quorum
            replicas are load-bearing).  ``None`` keeps the paper's full
            replication bit-identical.  Mutually exclusive with the
            legacy ``capacity=`` replica pool.
    """

    def __init__(
        self,
        protocol,
        N: int,
        M: int = 1,
        S: float = 100.0,
        P: float = 30.0,
        latency: float = 1.0,
        capacity: Optional[int] = None,
        faults: Optional[FaultPlan] = None,
        partitions: Optional[PartitionPlan] = None,
        reliability: Optional[ReliabilityConfig] = None,
        failover: bool = False,
        monitor: bool = False,
        tracing: Optional[TraceConfig] = None,
        profiler=None,
        reconfig: Optional[ReconfigPlan] = None,
        quorum_weights=None,
        hedge: Optional[HedgeConfig] = None,
        cache: Optional[CacheConfig] = None,
    ):
        self.spec: ProtocolSpec = (
            protocol if isinstance(protocol, ProtocolSpec) else get_protocol(protocol)
        )
        if N < 1:
            raise ValueError("need at least one client")
        if M < 1:
            raise ValueError("need at least one shared object")
        if self.spec.quorum_based:
            # the quorum family has no sequencer: the recovery/failover
            # subsystems (sequencer-anchored) and the replica pool (which
            # assumes a home node holding every copy) do not apply, and a
            # quorum replica must be durable across crashes — refuse the
            # combinations loudly rather than mis-simulate.
            if capacity is not None:
                raise ValueError(
                    f"{self.spec.name} replicas are quorum members; a "
                    "finite replica pool (capacity=) is not supported"
                )
            if failover:
                raise ValueError(
                    f"{self.spec.name} has no sequencer to fail over; "
                    "drop failover=True (a majority of replicas is "
                    "sufficient for liveness)"
                )
            if faults is not None and faults.has_amnesia:
                raise ValueError(
                    f"{self.spec.name} requires durable replicas: "
                    "amnesia crash semantics would forget quorum-"
                    "acknowledged state; use crash_semantics='durable'"
                )
        # a no-change plan is treated exactly like no plan (pay-for-what-
        # you-use: static-membership runs stay bit-identical).
        self.reconfig_plan: Optional[ReconfigPlan] = (
            reconfig if reconfig is not None and not reconfig.is_none
            else None
        )
        self.quorum_weights = _normalize_weights(quorum_weights)
        if hedge is not None and not isinstance(hedge, HedgeConfig):
            raise TypeError(
                f"hedge must be a HedgeConfig or None, "
                f"got {type(hedge).__name__}"
            )
        self.hedge = hedge
        if cache is not None and not isinstance(cache, CacheConfig):
            raise TypeError(
                f"cache must be a CacheConfig or None, "
                f"got {type(cache).__name__}"
            )
        if cache is not None and capacity is not None:
            raise ValueError(
                "cache= (bounded replica caches) and capacity= (the "
                "legacy replica pool) are both eviction drivers; "
                "configure at most one"
            )
        self.cache_config = cache
        if not self.spec.quorum_based:
            if self.reconfig_plan is not None:
                raise ValueError(
                    f"{self.spec.name} has a fixed star membership; online "
                    "reconfiguration (reconfig=) needs a quorum protocol"
                )
            if self.quorum_weights is not None:
                raise ValueError(
                    f"{self.spec.name} has no quorums to weight; "
                    "quorum_weights= needs a quorum protocol"
                )
            if self.hedge is not None:
                raise ValueError(
                    f"{self.spec.name} has no quorum phases to hedge; "
                    "hedge= needs a quorum protocol"
                )
        # the node universe: the initial members 1..N+1 plus any nodes the
        # reconfiguration plan will join later (they exist from the start
        # as empty replicas, but are not members until their epoch commits).
        universe = N + 1
        if self.reconfig_plan is not None:
            self.reconfig_plan.validate_membership(N + 1)
            universe = max(universe, self.reconfig_plan.max_node())
        if self.quorum_weights is not None:
            bad = sorted(n for n in self.quorum_weights
                         if not 1 <= n <= universe)
            if bad:
                raise ValueError(
                    f"quorum_weights name unknown nodes {bad} "
                    f"(the node universe is 1..{universe})"
                )
        self.N = N
        self.M = M
        self.S = float(S)
        self.P = float(P)
        self.scheduler = EventScheduler()
        self.metrics = Metrics()
        #: structured tracer (pay-for-what-you-use: None keeps every hook
        #: point a single attribute check)
        self.tracing = tracing
        self.tracer: Optional[Tracer] = (
            Tracer(tracing, clock=self.scheduler) if tracing is not None
            else None
        )
        self.metrics.tracer = self.tracer
        #: wall-clock profiler for simulator hot paths
        self.profiler = profiler
        self.scheduler.profiler = profiler
        # a no-fault plan is treated exactly like no plan (pay-for-what-
        # you-use: fault-free runs use the paper's fabric unchanged).
        self.faults = (
            faults if faults is not None and not faults.is_none else None
        )
        self.partitions = (
            partitions
            if partitions is not None and not partitions.is_none else None
        )
        if ((self.faults is not None or self.partitions is not None
                or self.reconfig_plan is not None
                or self.hedge is not None)
                and reliability is None):
            # reconfiguration needs the reliable transport too: the epoch
            # commit voids the old view's in-flight frames through it —
            # as does hedging (legs ride the datagram transport and the
            # losers are cancelled through it).
            reliability = ReliabilityConfig()
        self.reliability = reliability
        if reliability is not None:
            self.network = ReliableNetwork(
                self.scheduler,
                latency=latency,
                metrics=self.metrics,
                faults=self.faults,
                partitions=self.partitions,
                config=reliability,
            )
        else:
            self.network = Network(
                self.scheduler, latency=latency,
                on_cost=self.metrics.record_message,
            )
            # delivery events for the plain fabric come from the channel
            # itself; a ReliableNetwork reaches the tracer via metrics and
            # traces protocol-level deliveries instead.
            self.network.tracer = self.tracer
        if self.faults is not None:
            self.faults.validate_nodes(universe)
            self._schedule_crash_markers()
        if self.partitions is not None:
            self.partitions.validate_nodes(universe)
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1 replica")
        self.capacity = capacity
        self.latency = float(latency)
        self.failover = bool(failover)
        #: shared, mutable sequencer-role view (reassigned by failover)
        self.cluster = ClusterView(N + 1)
        self.all_nodes: Tuple[int, ...] = tuple(range(1, universe + 1))
        self._next_op_id = 0
        self.nodes: Dict[int, SimNode] = {
            node_id: SimNode(
                node_id,
                self.spec,
                M,
                self.scheduler,
                self.network,
                self.metrics,
                self.S,
                self.P,
                self.all_nodes,
                self.cluster,
                capacity=capacity,
                new_op=self._make_internal_op,
                cache=cache,
                cache_overlay=self.spec.quorum_based,
            )
            for node_id in self.all_nodes
        }
        # membership view and reconfiguration driver (quorum family only;
        # without a plan or weights the view stays None and every quorum
        # phase takes the static fixed-majority fast path).
        self.membership: Optional[MembershipView] = None
        if self.reconfig_plan is not None or self.quorum_weights is not None:
            self.membership = MembershipView(
                tuple(range(1, N + 2)), self.quorum_weights
            )
            for node in self.nodes.values():
                for port in node.ports.values():
                    port.membership = self.membership
        if self.hedge is not None:
            for node in self.nodes.values():
                for port in node.ports.values():
                    port.hedge = self.hedge
        self.reconfig: Optional[ReconfigManager] = None
        if self.reconfig_plan is not None:
            self.reconfig = ReconfigManager(
                plan=self.reconfig_plan,
                view=self.membership,
                nodes=self.nodes,
                cluster=self.cluster,
                scheduler=self.scheduler,
                network=self.network,
                metrics=self.metrics,
                faults=self.faults,
                reliability=self.reliability,
                S=self.S,
                P=self.P,
                latency=self.latency,
            )
        # crash recovery and consistency monitoring (both opt-in; without
        # them the hooks stay None and runs are bit-identical to a system
        # built before these subsystems existed).
        self.monitor: Optional[ConsistencyMonitor] = (
            ConsistencyMonitor() if monitor else None
        )
        self.write_log: Optional[WriteLog] = None
        self.recovery: Optional[RecoveryManager] = None
        if (not self.spec.quorum_based
                and (self.partitions is not None
                     or (self.faults is not None
                         and (self.failover or self.faults.has_amnesia)))):
            self.write_log = WriteLog()
            self.recovery = RecoveryManager(
                nodes=self.nodes,
                cluster=self.cluster,
                scheduler=self.scheduler,
                network=self.network,
                metrics=self.metrics,
                spec=self.spec,
                plan=(self.faults if self.faults is not None
                      else FaultPlan.none()),
                log=self.write_log,
                hit_states=_HIT_STATES[self.spec.name],
                S=self.S,
                P=self.P,
                latency=self.latency,
                failover=self.failover,
            )
        #: sequencer-side heartbeat failure detector (partition plans only;
        #: the quorum family needs no detector or quarantine for *liveness*
        #: — that comes from quorum re-selection, so partitions only act at
        #: the link level and every node stays in the view.  Gray failures
        #: are different: when slow windows or hedging are configured, the
        #: quorum family gets a demote-only detector (recovery=None, so it
        #: can never quarantine) whose latency scoring feeds the
        #: demotion-aware quorum selection and hedge targeting)
        self.detector: Optional[FailureDetector] = None
        if self.partitions is not None and not self.spec.quorum_based:
            # the transport absorbs traffic to quarantined nodes instead
            # of retrying into a severed link forever.
            self.network.quarantined = self.cluster.quarantined
            if self.partitions.detect:
                self.detector = FailureDetector(
                    plan=self.partitions,
                    cluster=self.cluster,
                    scheduler=self.scheduler,
                    metrics=self.metrics,
                    recovery=self.recovery,
                    faults=self.faults,
                    all_nodes=self.all_nodes,
                    latency=self.latency,
                )
                self.detector.start()
        elif (self.spec.quorum_based
                and (self.hedge is not None
                     or (self.faults is not None
                         and self.faults.has_slowdowns))):
            # knobs come from the partition plan when one is present;
            # otherwise a links-free local plan supplies the defaults
            # (never stored as self.partitions — a plan without links is
            # no partition plan, and the plan-equality fabric checks
            # must keep seeing None).
            knobs = (self.partitions if self.partitions is not None
                     else PartitionPlan())
            if knobs.detect:
                self.detector = FailureDetector(
                    plan=knobs,
                    cluster=self.cluster,
                    scheduler=self.scheduler,
                    metrics=self.metrics,
                    recovery=None,
                    faults=self.faults,
                    all_nodes=self.all_nodes,
                    latency=self.latency,
                )
                self.detector.start()
        if self.monitor is not None or self.write_log is not None:
            observer = _Observer(self.write_log, self.monitor)
            for node in self.nodes.values():
                node.observer = observer
                node.recovery = self.recovery

    @classmethod
    def from_config(
        cls,
        protocol,
        params,
        config,
        M: int = 1,
        *,
        capacity: Optional[int] = None,
        profiler=None,
        replay_plans: bool = False,
    ) -> "DSMSystem":
        """Build a system for a workload point from a :class:`RunConfig`.

        The one construction path shared by the CLI, the sweep engine and
        the scenario runner — historically each copied the same
        eight-argument ``DSMSystem(...)`` block.

        Args:
            protocol: registry name or :class:`ProtocolSpec`.
            params: a :class:`~repro.core.parameters.WorkloadParams`
                (supplies ``N``, ``S`` and ``P``).
            config: the :class:`~repro.sim.config.RunConfig` whose fault,
                partition, reliability, failover, monitor and tracing
                settings drive the system.
            M: number of shared objects.
            capacity: optional finite replica pool per client.
            profiler: optional wall-clock :class:`~repro.obs.Profiler`.
            replay_plans: rebuild the fault/partition plans with rewound
                RNG streams (``plan.replay()``) instead of consuming the
                config's own instances — what a sweep worker needs when a
                plan object may already have been driven once.
        """
        faults = config.faults
        partitions = config.partitions
        reconfig = config.reconfig
        if replay_plans:
            faults = None if faults is None else faults.replay()
            partitions = None if partitions is None else partitions.replay()
            reconfig = None if reconfig is None else reconfig.replay()
        return cls(
            protocol,
            N=params.N,
            M=M,
            S=params.S,
            P=params.P,
            capacity=capacity,
            faults=faults,
            partitions=partitions,
            reliability=config.reliability,
            failover=config.failover,
            monitor=config.monitor,
            tracing=config.tracing,
            profiler=profiler,
            reconfig=reconfig,
            quorum_weights=config.quorum_weights,
            hedge=config.hedge,
            cache=config.cache,
        )

    @property
    def sequencer_id(self) -> int:
        """The node currently acting as sequencer (dynamic under failover)."""
        return self.cluster.sequencer_id

    def _make_internal_op(self, kind: str, node: int, obj: int) -> Operation:
        """Factory for system-generated operations (pool evictions)."""
        self._next_op_id += 1
        return Operation(op_id=self._next_op_id, node=node, kind=kind,
                         obj=obj)

    def _schedule_crash_markers(self) -> None:
        """Count crash/recovery edges in metrics as simulation time passes.

        The marker events only touch counters — they cannot perturb the
        simulation itself (relative scheduling order of all other events
        is preserved).
        """
        stats = self.metrics.reliability

        def bump(node: int, edge_kind: str) -> None:
            if edge_kind == "crash":
                stats.crashes += 1
            else:
                stats.recoveries += 1
            tracer = self.metrics.tracer
            if tracer is not None:
                tracer.system_event(edge_kind, src=node,
                                    detail=f"node {node}")

        for time, node, edge_kind in self.faults.crash_edges():
            self.scheduler.schedule_at(
                time, (lambda n=node, k=edge_kind: bump(n, k))
            )

    def _check_run_config_fabric(self, config: RunConfig) -> None:
        """Reject a :class:`RunConfig` whose fault/reliability settings
        contradict the fabric this system was built with.

        The network (fault injection, reliable delivery) is assembled in
        ``__init__`` and cannot be swapped per run; silently ignoring the
        config's settings would mis-measure, so mismatches are errors.
        ``None`` in the config means "inherit the system's fabric" and is
        always accepted.
        """
        if config.faults is not None and config.faults != self.faults:
            raise ValueError(
                "RunConfig.faults does not match the FaultPlan this "
                "DSMSystem was constructed with; pass faults= to "
                "DSMSystem(...) or run the cell through repro.exp"
            )
        if (config.partitions is not None
                and config.partitions != self.partitions):
            raise ValueError(
                "RunConfig.partitions does not match the PartitionPlan "
                "this DSMSystem was constructed with; pass partitions= to "
                "DSMSystem(...) or run the cell through repro.exp"
            )
        if (config.reliability is not None
                and config.reliability != self.reliability):
            raise ValueError(
                "RunConfig.reliability does not match the "
                "ReliabilityConfig this DSMSystem was constructed with; "
                "pass reliability= to DSMSystem(...) or use repro.exp"
            )
        if config.failover != self.failover:
            raise ValueError(
                "RunConfig.failover does not match this DSMSystem "
                "(failover is wired at construction); pass failover= to "
                "DSMSystem(...) or run the cell through repro.exp"
            )
        if config.monitor != (self.monitor is not None):
            raise ValueError(
                "RunConfig.monitor does not match this DSMSystem "
                "(the monitor is attached at construction); pass "
                "monitor= to DSMSystem(...) or run the cell through "
                "repro.exp"
            )
        if config.tracing is not None and config.tracing != self.tracing:
            raise ValueError(
                "RunConfig.tracing does not match the TraceConfig this "
                "DSMSystem was constructed with; pass tracing= to "
                "DSMSystem(...) or run the cell through repro.exp"
            )
        if (config.reconfig is not None
                and config.reconfig != self.reconfig_plan):
            raise ValueError(
                "RunConfig.reconfig does not match the ReconfigPlan this "
                "DSMSystem was constructed with; pass reconfig= to "
                "DSMSystem(...) or run the cell through repro.exp"
            )
        if (config.quorum_weights is not None
                and _normalize_weights(config.quorum_weights)
                != self.quorum_weights):
            raise ValueError(
                "RunConfig.quorum_weights does not match the vote weights "
                "this DSMSystem was constructed with; pass quorum_weights= "
                "to DSMSystem(...) or run the cell through repro.exp"
            )
        if config.hedge is not None and config.hedge != self.hedge:
            raise ValueError(
                "RunConfig.hedge does not match the HedgeConfig this "
                "DSMSystem was constructed with; pass hedge= to "
                "DSMSystem(...) or run the cell through repro.exp"
            )
        if config.cache is not None and config.cache != self.cache_config:
            raise ValueError(
                "RunConfig.cache does not match the CacheConfig this "
                "DSMSystem was constructed with; pass cache= to "
                "DSMSystem(...) or run the cell through repro.exp"
            )

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------

    def submit(self, node: int, kind: str, obj: int = 1,
               params: Optional[int] = None, callback=None) -> Operation:
        """Submit one operation right now (manual driving, examples/tests).

        ``kind`` may also be ``"eject"`` (drop the node's replica),
        ``"acquire"`` or ``"release"`` (the per-object lock, Section 6
        extensions).  ``callback(op)`` fires on completion, which lets
        examples chain closed-loop sequences such as lock-protected
        read-modify-write critical sections.
        """
        self._next_op_id += 1
        op = Operation(
            op_id=self._next_op_id,
            node=node,
            kind=kind,
            obj=obj,
            params=params if params is not None else self._next_op_id,
            callback=callback,
        )
        self.nodes[node].submit(op)
        return op

    def settle(self, max_events: int = 10_000_000) -> None:
        """Run the event list dry (all in-flight work drains)."""
        self.scheduler.run(max_events=max_events)
        if len(self.scheduler):  # pragma: no cover - safety net
            raise RuntimeError("simulation did not quiesce within max_events")

    def run_workload(
        self,
        workload: Workload,
        config: Optional[RunConfig] = None,
    ) -> SimulationResult:
        """Run a stochastic workload and measure steady-state ``acc``.

        Operations arrive as a Poisson stream (exponential gaps with mean
        ``config.mean_gap``) whose ``(node, kind, object)`` mix is the
        workload's trial distribution; per-node order is preserved by the
        local queues.  ``acc`` is averaged over the operations completed
        after the first ``config.warmup`` (paper Section 5.2: 500 warm-up
        operations, about 1500 measured).

        Args:
            workload: the operation source.
            config: a :class:`~repro.sim.config.RunConfig` carrying
                ops/warmup/seed/mean_gap/max_events.  Fault, reliability,
                failover and monitor settings in the config must match
                the ones this system was constructed with (the fabric is
                fixed at construction); pass them to :class:`DSMSystem`
                or use :mod:`repro.exp`, which builds the system from the
                config for you.

        The pre-1.2 positional forms (``run_workload(w, 4000, 500)``,
        ``run_workload(w, num_ops=4000)``) were removed; they now raise
        :class:`TypeError`.
        """
        if not isinstance(config, RunConfig):
            raise TypeError(
                "run_workload takes a RunConfig, got "
                f"{type(config).__name__}; the pre-1.2 "
                "num_ops/warmup/seed arguments were removed — pass "
                "config=RunConfig(ops=4000, warmup=500, seed=0)"
            )
        self._check_run_config_fabric(config)
        num_ops = config.ops
        warmup = config.resolved_warmup
        if workload.M > self.M:
            raise ValueError(
                f"workload uses {workload.M} objects, system has {self.M}"
            )
        rng = np.random.default_rng(config.seed)
        ops = workload.sample(rng, num_ops)
        gaps = rng.exponential(config.mean_gap, size=num_ops)
        t = 0.0
        for (node, kind, obj), gap in zip(ops, gaps):
            t += gap
            self._next_op_id += 1
            op = Operation(
                op_id=self._next_op_id,
                node=node,
                kind=kind,
                obj=obj,
                params=self._next_op_id,
            )
            self.scheduler.schedule_at(
                t, (lambda o=op: self.nodes[o.node].submit(o))
            )
        self.scheduler.run(max_events=config.max_events)
        incomplete = max(0, num_ops - self.metrics.completed_count)
        lost = self.metrics.recovery.ops_lost
        if self.spec.quorum_based:
            # parked quorum operations (re-selection exhausted inside an
            # unhealed partition) stay in their port's in-flight table,
            # with program-order successors queued behind the closed
            # gate: both are stalled, not deadlocked.
            stalled = sum(
                len(port.local_queue) + len(port.inflight)
                for node in self.nodes.values()
                for port in node.ports.values()
            )
        else:
            stalled = (self.recovery.stalled_ops()
                       if self.recovery is not None else 0)
        self.metrics.partition.ops_stalled = stalled
        if (incomplete > lost + stalled
                and self.metrics.reliability.delivery_failures == 0):
            # nothing was abandoned, no node died with its operations and
            # nothing is stalled behind a partition quarantine, so this
            # is a genuine protocol hang, not fault degradation.
            raise RuntimeError(  # pragma: no cover
                f"only {self.metrics.completed_count}/{num_ops} operations "
                "completed — protocol deadlock?"
            )
        # under graceful degradation (a retry budget ran out, wedging the
        # affected channel, or an amnesia crash killed submissions) the
        # loss is reported instead of hanging; with no completions left
        # in the window, acc degrades to NaN.
        if self.metrics.completed_count > warmup:
            acc = self.metrics.average_cost(skip=warmup)
        else:
            acc = float("nan")
        measured = max(0, min(num_ops, self.metrics.completed_count) - warmup)
        # retry-budget exhaustions are always surfaced as structured
        # DeliveryViolation records (satellite of the degradation story:
        # a wedged channel is a reliability-contract violation, not just
        # a counter).
        violations: Tuple = tuple(getattr(self.network, "violations", ()))
        if (self.monitor is not None
                and self.metrics.reliability.delivery_failures == 0):
            # with a wedged channel the protocols legitimately cannot keep
            # replicas consistent; the monitor only judges runs the
            # reliability layer carried through.
            violations += tuple(self.consistency_report())
        return SimulationResult(
            protocol=self.spec.name,
            total_ops=num_ops,
            warmup=warmup,
            measured=measured,
            acc=acc,
            messages=self.network.messages_sent,
            end_time=self.scheduler.now,
            metrics=self.metrics,
            incomplete_ops=incomplete,
            violations=violations,
            tracer=self.tracer,
        )

    # ------------------------------------------------------------------
    # inspection / invariants
    # ------------------------------------------------------------------

    def copy_state(self, node: int, obj: int = 1) -> str:
        """The copy state of ``obj`` at ``node``."""
        return self.nodes[node].process_for(obj).state

    def copy_value(self, node: int, obj: int = 1):
        """The simulated user-information content of a copy."""
        return self.nodes[node].process_for(obj).value

    def authoritative_value(self, obj: int = 1):
        """The value the protocol's serialization point holds for ``obj``.

        For the fixed-home protocols this is the sequencer's copy (recalled
        from the dirty owner if the sequencer is INVALID); for the
        migrating-owner protocols it is the owner's copy.
        """
        name = self.spec.name
        if self.spec.quorum_based:
            # the serialization point is the logical timestamp order: the
            # authoritative value is the one held with the maximum
            # timestamp across the replicas (any majority is guaranteed
            # to contain it once the writing operation completed).
            best = max(
                (self.nodes[n].process_for(obj) for n in self.all_nodes),
                key=lambda proc: proc.ts,
            )
            return best.value
        if name in _OWNER_STATES:
            # a partition-quarantined node keeps its (stale) replica for
            # degraded serving, so it may still look like an owner; the
            # epoch reset at quarantine re-canonicalized ownership among
            # the reachable nodes, and only those count.
            quarantined = self.cluster.quarantined
            owners = [
                n for n in self.all_nodes
                if n not in quarantined
                and self.copy_state(n, obj) in _OWNER_STATES[name]
            ]
            if len(owners) != 1:
                raise AssertionError(
                    f"{name}: expected exactly one owner for object {obj}, "
                    f"found {owners} (system not quiescent?)"
                )
            return self.copy_value(owners[0], obj)
        seq = self.nodes[self.sequencer_id].process_for(obj)
        if seq.state == "VALID":
            return seq.value
        owner = getattr(seq, "owner", None)
        if owner is None:
            raise AssertionError(
                f"{name}: sequencer INVALID without an owner for {obj}"
            )
        return self.copy_value(owner, obj)

    def _down_nodes(self) -> set:
        """Nodes whose crash window covers the current simulation time."""
        if self.faults is None:
            return set()
        now = self.scheduler.now
        return {n for n in self.all_nodes if self.faults.is_down(n, now)}

    def _excluded_nodes(self) -> set:
        """Nodes whose replicas the quiescence checks must skip.

        Down nodes cannot serve reads; partition-quarantined nodes hold
        deliberately stale replicas (their staleness is the quarantine's
        *accounted* degradation, not a coherence bug).
        """
        return self._down_nodes() | self.cluster.quarantined

    def check_coherence(self) -> None:
        """Assert quiescent coherence for every object.

        Every copy whose state serves local reads must equal the
        authoritative value.  Call only after :meth:`settle` (or a
        completed :meth:`run_workload`) — in-flight updates legitimately
        make copies differ transiently.  Nodes still inside a crash
        window are skipped: a dead replica cannot serve reads, and its
        pending invalidations are legitimately undelivered.
        """
        hit_states = _HIT_STATES[self.spec.name]
        excluded = self._excluded_nodes()
        for obj in range(1, self.M + 1):
            truth = self.authoritative_value(obj)
            for node in self.all_nodes:
                if node in excluded:
                    continue
                proc = self.nodes[node].process_for(obj)
                if proc.state in hit_states and proc.value != truth:
                    raise AssertionError(
                        f"{self.spec.name}: node {node} object {obj} state "
                        f"{proc.state} holds {proc.value!r}, expected {truth!r}"
                    )

    def consistency_report(self) -> List[ConsistencyViolation]:
        """Run the consistency monitor's quiescence checks.

        Returns all findings (empty on a clean run); never raises on a
        violation — degraded runs produce structured reports.  Requires
        the system to have been built with ``monitor=True`` and to be
        quiescent (:meth:`settle` or a finished :meth:`run_workload`).
        """
        if self.monitor is None:
            raise ValueError(
                "consistency monitoring is off; build "
                "DSMSystem(..., monitor=True)"
            )
        hit_states = _HIT_STATES[self.spec.name]
        excluded = self._excluded_nodes()
        violations: List[ConsistencyViolation] = []
        authoritative: Dict[int, object] = {}
        replicas: Dict[int, List[Tuple[int, str, object, bool]]] = {}
        for obj in range(1, self.M + 1):
            try:
                truth = self.authoritative_value(obj)
            except AssertionError as exc:
                violations.append(ConsistencyViolation(
                    kind="divergence",
                    obj=obj,
                    detail=f"no authoritative value: {exc}",
                ))
                continue
            authoritative[obj] = truth
            replicas[obj] = [
                (node, proc.state, proc.value, proc.state in hit_states)
                for node in self.all_nodes
                if node not in excluded
                for proc in (self.nodes[node].process_for(obj),)
            ]
        violations.extend(self.monitor.check(authoritative, replicas))
        return violations

    def data_cost_rate(self, skip: int = 0) -> float:
        """Total communication cost per *data* operation.

        With a finite replica pool the system issues internal eject
        operations; this measure charges their traffic (write-backs,
        directory notices) and the induced re-fetch misses to the
        application's read/write operations: total cost of every completed
        operation after ``skip``, divided by the number of reads+writes.
        """
        recs = self.metrics.records(skip)
        data_ops = sum(1 for r in recs if r.kind in (READ, WRITE))
        if not data_ops:
            raise ValueError("no data operations in the window")
        return sum(r.cost for r in recs) / data_ops

    def total_attributed_cost(self) -> float:
        """Sum of per-operation costs (must equal total message cost)."""
        return sum(r.cost for r in self.metrics.records())

    def publish_metrics(self, registry, skip: int = 0,
                        take: Optional[int] = None,
                        window: Optional[int] = None) -> None:
        """Publish a full snapshot into a :class:`repro.obs.MetricsRegistry`.

        Combines :meth:`Metrics.publish` (latency/cost histograms, ``acc``
        shares, subsystem counters) with system-level gauges: scheduler
        progress, local-queue depths, transport in-flight frames and the
        quarantine census.
        """
        self.metrics.publish(registry, skip=skip, take=take, window=window)
        registry.gauge("sim.events_executed",
                       "events executed by the scheduler").set(
            self.scheduler.executed)
        registry.gauge("sim.events_pending",
                       "live events still scheduled").set(len(self.scheduler))
        depths = [
            len(port.local_queue)
            for node in self.nodes.values()
            for port in node.ports.values()
        ]
        registry.gauge("sim.queue_depth.total",
                       "queued local requests across all ports").set(
            sum(depths))
        registry.gauge("sim.queue_depth.max",
                       "deepest local queue").set(max(depths) if depths else 0)
        in_flight = getattr(self.network, "in_flight", None)
        if in_flight is not None:
            registry.gauge("sim.transport.in_flight",
                           "unacknowledged data frames").set(in_flight)
        registry.gauge("sim.quarantined",
                       "nodes currently out of the view").set(
            len(self.cluster.quarantined))
