"""Link-level network partitions and the heartbeat failure detector.

The fault model of :mod:`repro.sim.faults` knows *global* loss rates and
whole-node crashes; it cannot express the most interesting degraded
regimes of a replication-based DSM — a severed or asymmetric **link**.
A :class:`PartitionPlan` layers timed per-link faults over the global
:class:`~repro.sim.faults.FaultPlan`:

* a :class:`LinkFault` applies to one *directed* channel ``src -> dst``
  during ``[start, end)``.  ``drop_rate=1`` (the default) severs the
  link; lower rates model a degraded link, and per-link
  ``duplicate_rate``/``jitter`` override the plan's quiet defaults.
  Symmetric cuts are two mirrored link faults (:func:`cut`);
* a message is lost if *either* the global plan or an active link fault
  says so; effective rates on a link are the maximum over its active
  faults.  A full cut (``rate >= 1``) consumes no randomness, so cut
  schedules are deterministic independent of traffic.

A severed link alone would leave the reliable layer retrying forever
(or until its budget dies).  The plan therefore also configures a
**heartbeat failure detector** (:class:`FailureDetector`) that runs on
the sequencer: every ``heartbeat_interval`` it probes each client (one
bare token per probe, one per reply — priced into ``acc`` like any
other token via the ``detector`` breakdown share), and after
``suspect_after`` consecutive missed beats the client is **quarantined**
through the recovery subsystem — evicted from the cluster view, its
traffic absorbed instead of retried, its local operations stalled (or,
under ``policy="serve_local_reads"``, its queue-head reads served from
the stale local replica with monitor-visible staleness accounting).
When heartbeats flow again the detector drives the node through the
standard resync rejoin.

Determinism mirrors :class:`~repro.sim.faults.FaultPlan`: per-link
probabilistic decisions consume the plan's private ``random.Random``
stream in simulation order, the detector rolls probe losses on its own
derived stream (never perturbing the fabric's), and ``replay()``
returns a fresh rewound plan.  A plan with no link faults is normalized
away entirely (pay-for-what-you-use).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..util import reject_unknown_keys
from .engine import EventScheduler
from .faults import FaultPlan
from .metrics import Metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import ClusterView
    from .recovery import RecoveryManager

__all__ = [
    "DEMOTE_AFTER",
    "DEMOTE_PHI",
    "PARTITION_POLICIES",
    "LinkFault",
    "PartitionPlan",
    "FailureDetector",
    "cut",
    "isolate",
]

#: legal values of :attr:`PartitionPlan.policy` — what a quarantined
#: client does with its local operations while partitioned
PARTITION_POLICIES = ("stall", "serve_local_reads")


@dataclass(frozen=True, slots=True)
class LinkFault:
    """One directed link fault on channel ``src -> dst`` over ``[start, end)``.

    The default ``drop_rate=1`` severs the link (every transmission
    lost); rates below 1 model a degraded link.  ``duplicate_rate`` and
    ``jitter`` are per-link overrides layered over the global fault
    plan's values (the effective rate is the maximum of the two).
    """

    src: int
    dst: int
    start: float = 0.0
    end: float = math.inf
    drop_rate: float = 1.0
    duplicate_rate: float = 0.0
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(
                f"a link fault needs two distinct nodes, got {self.src}"
            )
        if self.start < 0:
            raise ValueError(f"link fault start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"link fault must end after it starts "
                f"({self.start} .. {self.end})"
            )
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError(
                f"drop_rate must be in [0, 1], got {self.drop_rate}"
            )
        if not 0.0 <= self.duplicate_rate <= 1.0:
            raise ValueError(
                f"duplicate_rate must be in [0, 1], got {self.duplicate_rate}"
            )
        if self.jitter < 0.0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")

    def covers(self, time: float) -> bool:
        """Whether this fault is active at ``time``."""
        return self.start <= time < self.end

    @property
    def is_cut(self) -> bool:
        """Whether the link is fully severed while active."""
        return self.drop_rate >= 1.0


def cut(a: int, b: int, start: float = 0.0,
        end: float = math.inf) -> List[LinkFault]:
    """A symmetric cut between ``a`` and ``b`` (both directions severed)."""
    return [LinkFault(a, b, start, end), LinkFault(b, a, start, end)]


def isolate(node: int, peers: Sequence[int], start: float = 0.0,
            end: float = math.inf) -> List[LinkFault]:
    """Sever every link between ``node`` and each of ``peers``."""
    links: List[LinkFault] = []
    for peer in peers:
        links.extend(cut(node, peer, start, end))
    return links


class PartitionPlan:
    """A seeded, deterministic schedule of link faults plus detector knobs.

    Args:
        seed: seed of the plan's private RNG stream (probabilistic
            per-link decisions) and of the detector's derived stream.
        links: :class:`LinkFault` instances or
            ``(src, dst[, start[, end]])`` tuples.
        heartbeat_interval: time between detector probe rounds.
        suspect_after: consecutive missed beats before quarantine.
        policy: degraded-mode policy for quarantined clients — one of
            :data:`PARTITION_POLICIES`.
        detect: run the failure detector at all; ``False`` leaves the
            link faults active with no quarantine (the retry-forever
            baseline the detector exists to fix).
    """

    def __init__(
        self,
        seed: int = 0,
        links: Sequence = (),
        heartbeat_interval: float = 40.0,
        suspect_after: int = 3,
        policy: str = "stall",
        detect: bool = True,
    ) -> None:
        # NaN slips past a plain `<= 0` comparison and inf past `< 1`;
        # either would silently wedge the probe scheduling, so demand
        # finite values explicitly.
        if not (heartbeat_interval > 0 and math.isfinite(heartbeat_interval)):
            raise ValueError(
                f"heartbeat_interval must be a positive finite number, "
                f"got {heartbeat_interval}"
            )
        if not (suspect_after >= 1 and math.isfinite(suspect_after)):
            raise ValueError(
                f"suspect_after must be a finite count >= 1, got "
                f"{suspect_after}"
            )
        if policy not in PARTITION_POLICIES:
            raise ValueError(
                f"policy must be one of {PARTITION_POLICIES}, got {policy!r}"
            )
        self.seed = seed
        self.links: Tuple[LinkFault, ...] = tuple(
            f if isinstance(f, LinkFault) else LinkFault(*f) for f in links
        )
        self.heartbeat_interval = float(heartbeat_interval)
        self.suspect_after = int(suspect_after)
        self.policy = policy
        self.detect = bool(detect)
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def none(cls) -> "PartitionPlan":
        """The explicit no-partition plan (identical to running without)."""
        return cls()

    def replay(self) -> "PartitionPlan":
        """A fresh plan with the same configuration and a rewound RNG."""
        return PartitionPlan(
            seed=self.seed,
            links=self.links,
            heartbeat_interval=self.heartbeat_interval,
            suspect_after=self.suspect_after,
            policy=self.policy,
            detect=self.detect,
        )

    @property
    def is_none(self) -> bool:
        """Whether the plan injects no link faults at all.

        Detector knobs alone do not make a plan — the detector rides
        along with link faults (pay-for-what-you-use).
        """
        return not self.links

    def validate_nodes(self, num_nodes: int) -> None:
        """Reject link faults naming nodes outside ``1 .. num_nodes``."""
        for f in self.links:
            for node in (f.src, f.dst):
                if not 1 <= node <= num_nodes:
                    raise ValueError(
                        f"link fault names node {node}, but the system has "
                        f"nodes 1 .. {num_nodes} (clients 1 .. "
                        f"{num_nodes - 1}, sequencer {num_nodes})"
                    )

    # ------------------------------------------------------------------
    # configuration identity and serialization
    # ------------------------------------------------------------------

    def config_key(self) -> tuple:
        """The plan's configuration (RNG state excluded)."""
        return (
            self.seed,
            self.heartbeat_interval,
            self.suspect_after,
            self.policy,
            self.detect,
            tuple(
                (f.src, f.dst, f.start, f.end, f.drop_rate,
                 f.duplicate_rate, f.jitter)
                for f in self.links
            ),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PartitionPlan):
            return NotImplemented
        return self.config_key() == other.config_key()

    def __hash__(self) -> int:
        return hash(self.config_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionPlan({self.describe()})"

    def to_dict(self) -> dict:
        """A plain-JSON dict of the configuration (``inf`` ends → None)."""
        return {
            "seed": int(self.seed),
            "heartbeat_interval": float(self.heartbeat_interval),
            "suspect_after": int(self.suspect_after),
            "policy": self.policy,
            "detect": bool(self.detect),
            "links": [
                [int(f.src), int(f.dst), float(f.start),
                 None if math.isinf(f.end) else float(f.end),
                 float(f.drop_rate), float(f.duplicate_rate),
                 float(f.jitter)]
                for f in self.links
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionPlan":
        """Rebuild a fresh (rewound) plan from :meth:`to_dict` output.

        Unknown keys raise ``ValueError`` instead of being silently
        dropped (a stale scenario file cannot half-apply).
        """
        reject_unknown_keys(
            data,
            ("seed", "heartbeat_interval", "suspect_after", "policy",
             "detect", "links"),
            "PartitionPlan",
        )
        links = [
            LinkFault(
                int(entry[0]), int(entry[1]), float(entry[2]),
                math.inf if entry[3] is None else float(entry[3]),
                float(entry[4]), float(entry[5]), float(entry[6]),
            )
            for entry in data.get("links", ())
        ]
        return cls(
            seed=int(data.get("seed", 0)),
            links=links,
            heartbeat_interval=float(data.get("heartbeat_interval", 40.0)),
            suspect_after=int(data.get("suspect_after", 3)),
            policy=str(data.get("policy", "stall")),
            detect=bool(data.get("detect", True)),
        )

    def describe(self) -> str:
        """One-line human-readable summary (CLI output, chaos repros)."""
        if self.is_none:
            return "no partitions"
        parts = [f"seed={self.seed}"]
        if self.detect:
            parts.append(
                f"detector(interval={self.heartbeat_interval:g}, "
                f"suspect_after={self.suspect_after}, policy={self.policy})"
            )
        else:
            parts.append("detector=off")
        consumed = [False] * len(self.links)
        for i, f in enumerate(self.links):
            if consumed[i]:
                continue
            mirror = None
            for j in range(i + 1, len(self.links)):
                g = self.links[j]
                if (not consumed[j] and g.src == f.dst and g.dst == f.src
                        and g.start == f.start and g.end == f.end
                        and g.drop_rate == f.drop_rate
                        and g.duplicate_rate == f.duplicate_rate
                        and g.jitter == f.jitter):
                    mirror = j
                    break
            arrow = f"{f.src}->{f.dst}"
            if mirror is not None:
                consumed[mirror] = True
                arrow = f"{f.src}<->{f.dst}"
            end = "∞" if math.isinf(f.end) else f"{f.end:g}"
            window = f"{f.start:g}..{end}"
            if f.is_cut and not f.duplicate_rate and not f.jitter:
                parts.append(f"cut({arrow}: {window})")
            else:
                extras = [f"drop={f.drop_rate:g}"]
                if f.duplicate_rate:
                    extras.append(f"dup={f.duplicate_rate:g}")
                if f.jitter:
                    extras.append(f"jitter<={f.jitter:g}")
                parts.append(f"link({arrow}: {window}, {', '.join(extras)})")
        return ", ".join(parts)

    # ------------------------------------------------------------------
    # per-transmission decisions (consume the RNG stream in call order)
    # ------------------------------------------------------------------

    def _active(self, src: int, dst: int, time: float) -> List[LinkFault]:
        return [
            f for f in self.links
            if f.src == src and f.dst == dst and f.covers(time)
        ]

    def drop_probability(self, src: int, dst: int, time: float) -> float:
        """The effective link loss rate at ``time`` (no RNG consumed)."""
        active = self._active(src, dst, time)
        return max((f.drop_rate for f in active), default=0.0)

    def is_cut(self, src: int, dst: int, time: float) -> bool:
        """Whether the directed link is fully severed at ``time``."""
        return self.drop_probability(src, dst, time) >= 1.0

    def should_drop(self, src: int, dst: int, time: float) -> bool:
        """Decide whether this transmission is lost to a link fault.

        A full cut is deterministic (consumes no randomness), so cut
        schedules stay identical whatever traffic crosses other links.
        """
        rate = self.drop_probability(src, dst, time)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self._rng.random() < rate

    def should_duplicate(self, src: int, dst: int, time: float) -> bool:
        """Decide whether this transmission is delivered twice."""
        active = self._active(src, dst, time)
        rate = max((f.duplicate_rate for f in active), default=0.0)
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def jitter_for(self, src: int, dst: int, time: float) -> float:
        """Extra delivery delay from link faults for one delivery."""
        active = self._active(src, dst, time)
        jitter = max((f.jitter for f in active), default=0.0)
        if jitter <= 0.0:
            return 0.0
        return self._rng.uniform(0.0, jitter)

    # ------------------------------------------------------------------
    # schedule bookkeeping
    # ------------------------------------------------------------------

    def edges(self) -> List[float]:
        """Sorted finite start/end times of every link fault."""
        times: List[float] = []
        for f in self.links:
            times.append(f.start)
            if math.isfinite(f.end):
                times.append(f.end)
        times.sort()
        return times


#: phi-like score a response time must exceed for a probe to count as
#: "suspiciously slow" (standard deviations above the healthy baseline)
DEMOTE_PHI = 4.0

#: consecutive suspiciously-slow probes before a node is demoted, and
#: consecutive healthy-speed probes before a demoted node is restored
DEMOTE_AFTER = 2

#: floor on the baseline's standard deviation, as a fraction of its
#: mean — a perfectly constant RTT history must not make every future
#: sample infinitely surprising
_PHI_SIGMA_FLOOR = 0.05


class FailureDetector:
    """Sequencer-side heartbeat prober feeding the recovery subsystem.

    Every ``heartbeat_interval`` the current sequencer probes each other
    node: one bare token out, one back when the probe is delivered and
    the node is alive.  Probe and reply losses are rolled against the
    *combined* loss probability of the global fault plan and the active
    link faults, on the detector's own derived RNG stream — the fabric's
    streams are never perturbed, so attaching the detector changes no
    fault decisions.  After :attr:`PartitionPlan.suspect_after`
    consecutive misses the node is quarantined
    (:meth:`RecoveryManager.quarantine_partitioned`); once probes flow
    again it is rejoined (:meth:`RecoveryManager.rejoin_partitioned`).

    **Latency-aware suspicion** (gray failures): successful probes also
    feed a phi-accrual-style score over the observed round-trip time —
    an EWMA baseline of mean and deviation, updated only by samples the
    score accepts as healthy so a straggler cannot normalize itself into
    the baseline.  A node whose RTT scores above :data:`DEMOTE_PHI` for
    :data:`DEMOTE_AFTER` consecutive probes is **demoted**: placed in
    ``cluster.demoted``, a state between healthy and suspected that
    deprioritizes the node (quorum phases prefer non-demoted replicas,
    hedged requests fire sooner) without quarantining it.  The RTT is
    the deterministic fabric delay (base latency × the fault plan's
    slowdown factor) — no RNG is consumed, so attaching the scorer
    changes no fault decisions either.

    ``recovery`` may be ``None`` (the quorum family): the detector then
    runs in demote-only mode — it never quarantines, since quorum
    liveness comes from re-selection, not eviction.

    Probing is horizon-bounded so the event list drains: rounds stop a
    few intervals after the last scheduled fault/partition/slowdown edge
    unless a quarantined node is still reachable-and-rejoining.
    """

    def __init__(
        self,
        plan: PartitionPlan,
        cluster: "ClusterView",
        scheduler: EventScheduler,
        metrics: Metrics,
        recovery: Optional["RecoveryManager"],
        faults: Optional[FaultPlan],
        all_nodes: Tuple[int, ...],
        latency: float = 1.0,
    ) -> None:
        if not (plan.heartbeat_interval > 0
                and math.isfinite(plan.heartbeat_interval)):
            raise ValueError(
                f"heartbeat_interval must be a positive finite number, "
                f"got {plan.heartbeat_interval}"
            )
        if not (plan.suspect_after >= 1
                and math.isfinite(plan.suspect_after)):
            raise ValueError(
                f"suspect_after must be a finite count >= 1, got "
                f"{plan.suspect_after}"
            )
        self.plan = plan
        self.cluster = cluster
        self.scheduler = scheduler
        self.metrics = metrics
        self.recovery = recovery
        self.faults = faults
        self.all_nodes = all_nodes
        self.latency = float(latency)
        # derived stream: deterministic, independent of the fabric's
        self._rng = random.Random(plan.seed ^ 0x9E3779B97F4A7C15)
        self._missed: Dict[int, int] = {}
        # phi-accrual state per node: healthy-baseline EWMA of the probe
        # RTT's mean and absolute deviation, plus streak counters
        self._rtt_mean: Dict[int, float] = {}
        self._rtt_dev: Dict[int, float] = {}
        self._slow_streak: Dict[int, int] = {}
        self._fast_streak: Dict[int, int] = {}
        times = plan.edges()
        if faults is not None:
            times = times + [t for t, _n, _k in faults.crash_edges()]
            times = times + [t for t, _n, _k in faults.slowdown_edges()]
        slack = (plan.suspect_after + 3) * plan.heartbeat_interval
        self._horizon = (max(times) + slack) if times else 0.0

    def start(self) -> None:
        """Schedule the first probe round (call once, at construction)."""
        if self._horizon > 0.0:
            self.scheduler.schedule(self.plan.heartbeat_interval, self._tick)

    # ------------------------------------------------------------------
    # probe rounds
    # ------------------------------------------------------------------

    def _lost(self, src: int, dst: int, now: float) -> bool:
        """Roll one heartbeat transmission against the combined loss rate."""
        p = 0.0
        if self.faults is not None:
            if self.faults.is_down(dst, now):
                return True
            p = self.faults.drop_rate
        q = self.plan.drop_probability(src, dst, now)
        combined = 1.0 - (1.0 - p) * (1.0 - q)
        if combined >= 1.0:
            return True
        if combined <= 0.0:
            return False
        return self._rng.random() < combined

    def _healable(self, node: int, now: float) -> bool:
        """Whether a probe round trip to ``node`` could ever succeed now."""
        if self.faults is not None and self.faults.is_down(node, now):
            return False
        seq = self.cluster.sequencer_id
        return (self.plan.drop_probability(seq, node, now) < 1.0
                and self.plan.drop_probability(node, seq, now) < 1.0)

    def _tick(self) -> None:
        now = self.scheduler.now
        seq = self.cluster.sequencer_id
        sequencer_up = (self.faults is None
                        or not self.faults.is_down(seq, now))
        if sequencer_up:
            self._probe_round(now, seq)
        # keep probing until the schedule's horizon, then only while a
        # quarantined node could still be driven through a rejoin.
        rejoining = self.recovery is not None and any(
            self.recovery.is_partition_quarantined(n)
            and self._healable(n, now)
            for n in self.all_nodes
        )
        if now + self.plan.heartbeat_interval <= self._horizon or rejoining:
            self.scheduler.schedule(self.plan.heartbeat_interval, self._tick)

    def _probe_round(self, now: float, seq: int) -> None:
        stats = self.metrics.partition
        for node in self.all_nodes:
            if node == seq:
                continue
            stats.heartbeats += 1
            # probe: a bare token
            self.metrics.record_detector_cost(1.0, kind="probe",
                                              src=seq, dst=node)
            reachable = False
            node_up = (self.faults is None
                       or not self.faults.is_down(node, now))
            if not self._lost(seq, node, now) and node_up:
                # the probe arrived; the node replies (another bare token)
                self.metrics.record_detector_cost(1.0, kind="probe_reply",
                                                  src=node, dst=seq)
                reachable = not self._lost(node, seq, now)
            if reachable:
                self._missed[node] = 0
                self._score_rtt(node, seq, now)
                if (self.recovery is not None
                        and self.recovery.is_partition_quarantined(node)):
                    self.recovery.rejoin_partitioned(node)
            else:
                self._missed[node] = self._missed.get(node, 0) + 1
                if (self.recovery is not None
                        and self._missed[node] >= self.plan.suspect_after
                        and not self.recovery.is_quarantined(node)):
                    stats.suspicions += 1
                    tracer = self.metrics.tracer
                    if tracer is not None:
                        tracer.system_event(
                            "suspect", src=seq, dst=node,
                            detail="node %d missed %d beats"
                            % (node, self._missed[node]),
                        )
                    self.recovery.quarantine_partitioned(
                        node, self.plan.policy
                    )

    # ------------------------------------------------------------------
    # latency-aware suspicion (phi-accrual over probe RTTs)
    # ------------------------------------------------------------------

    def _probe_rtt(self, node: int, seq: int, now: float) -> float:
        """The round trip's deterministic fabric delay.

        Two hops of base latency, stretched by the fault plan's
        slowdown factor.  Jitter is excluded on purpose: sampling it
        would consume RNG and perturb the fabric's decision stream.
        """
        factor = (self.faults.link_slowdown(seq, node, now)
                  if self.faults is not None else 1.0)
        return 2.0 * self.latency * factor

    def _score_rtt(self, node: int, seq: int, now: float) -> None:
        rtt = self._probe_rtt(node, seq, now)
        mean = self._rtt_mean.get(node)
        if mean is None:
            # first observation seeds the healthy baseline
            self._rtt_mean[node] = rtt
            self._rtt_dev[node] = 0.0
            return
        dev = self._rtt_dev[node]
        sigma = max(dev, _PHI_SIGMA_FLOOR * mean)
        phi = (rtt - mean) / sigma if sigma > 0.0 else 0.0
        if phi > DEMOTE_PHI:
            self._slow_streak[node] = self._slow_streak.get(node, 0) + 1
            self._fast_streak[node] = 0
            if (self._slow_streak[node] >= DEMOTE_AFTER
                    and node not in self.cluster.demoted):
                self._set_demoted(node, seq, True)
        else:
            # healthy sample: fold it into the baseline (EWMA) — only
            # accepted samples adapt it, so a persistent straggler can
            # never normalize its own slowness away.
            alpha = 0.2
            self._rtt_mean[node] = (1 - alpha) * mean + alpha * rtt
            self._rtt_dev[node] = ((1 - alpha) * dev
                                   + alpha * abs(rtt - mean))
            self._fast_streak[node] = self._fast_streak.get(node, 0) + 1
            self._slow_streak[node] = 0
            if (self._fast_streak[node] >= DEMOTE_AFTER
                    and node in self.cluster.demoted):
                self._set_demoted(node, seq, False)

    def _set_demoted(self, node: int, seq: int, demoted: bool) -> None:
        stats = self.metrics.partition
        tracer = self.metrics.tracer
        if demoted:
            self.cluster.demoted.add(node)
            stats.demotions += 1
            if tracer is not None:
                tracer.system_event(
                    "demote", src=seq, dst=node,
                    detail="node %d persistently slow" % node,
                )
        else:
            self.cluster.demoted.discard(node)
            stats.restorations += 1
            if tracer is not None:
                tracer.system_event(
                    "restore", src=seq, dst=node,
                    detail="node %d back to healthy speed" % node,
                )

    def state_counts(self) -> Dict[str, int]:
        """Census of detector states over the probed nodes.

        ``suspected`` counts currently-quarantined nodes, ``demoted``
        the deprioritized stragglers, ``healthy`` the rest (the probing
        sequencer itself is not counted).
        """
        seq = self.cluster.sequencer_id
        probed = [n for n in self.all_nodes if n != seq]
        suspected = sum(1 for n in probed if n in self.cluster.quarantined)
        demoted = sum(1 for n in probed
                      if n in self.cluster.demoted
                      and n not in self.cluster.quarantined)
        return {
            "healthy": len(probed) - suspected - demoted,
            "demoted": demoted,
            "suspected": suspected,
        }
