"""Cost accounting and trace classification for the simulator.

The paper's performance measure is the steady-state average communication
cost per operation (``acc``).  The simulator reproduces the measurement
procedure of Section 5.2: every message is attributed to the operation
whose trace it belongs to (messages carry the initiating operation's id);
``acc`` is computed over the operations completed after a warm-up prefix —
"to eliminate the influence of the transient period, the first 500
operations are neglected [and] approximately 1500 operations from the
steady-state period are taken into consideration".

Per-operation message sequences double as *trace signatures*: the ordered
tuple of ``(message type, parameter presence)`` pairs identifies which of
the protocol's traces the operation produced, which the integration tests
compare against the paper's trace sets (Figures 2-4).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Tuple

from ..machines.message import Message

__all__ = ["OpRecord", "PartitionStats", "ReconfigStats", "RecoveryStats",
           "ReliabilityStats", "ReplicaCacheStats", "Metrics"]


@dataclass(slots=True)
class OpRecord:
    """Everything measured about one completed (or in-flight) operation."""

    op_id: int
    node: int
    kind: str
    obj: int
    issue_time: float
    complete_time: Optional[float] = None
    #: total communication cost attributed to this operation
    cost: float = 0.0
    #: ordered (msg_type, presence) trace signature
    signature: List[Tuple[str, str]] = field(default_factory=list)
    #: portion of ``cost`` charged by the reliability layer (retransmissions
    #: and acknowledgements); 0 on the fault-free fabric
    reliability_cost: float = 0.0
    #: portion of ``cost`` charged by quorum re-selection (re-broadcast
    #: phase messages and their replies after a quorum timeout); 0 for
    #: the star protocols and for quorum runs on a fault-free fabric
    quorum_cost: float = 0.0
    #: portion of ``cost`` charged by hedged quorum legs (backup-replica
    #: phase messages launched after the hedge latency budget); 0 unless
    #: hedging is configured
    hedge_cost: float = 0.0
    #: portion of ``cost`` charged by the bounded replica cache: eviction
    #: traffic (write-backs, directory departure notices) redirected from
    #: the eject this operation triggered, plus the refetch cost of a
    #: capacity-missed read; 0 unless a cache is configured
    cache_cost: float = 0.0

    @property
    def completed(self) -> bool:
        """Whether the operation has finished."""
        return self.complete_time is not None


@dataclass(slots=True)
class ReliabilityStats:
    """Counters for the fault plan and the reliable-delivery layer.

    All zero on the paper-faithful fault-free fabric.  ``cost`` is the total
    communication cost the reliability layer added on top of the protocol's
    own messages; dividing it over the measurement window gives the
    reliability share of ``acc`` (see :meth:`Metrics.average_cost_breakdown`).
    """

    #: retransmissions triggered by acknowledgement timeouts
    retransmissions: int = 0
    #: acknowledgement frames sent by receivers
    acks: int = 0
    #: received frames discarded as duplicates (injected or retransmitted)
    duplicates_suppressed: int = 0
    #: frames parked in a reorder buffer until the FIFO gap closed
    out_of_order_held: int = 0
    #: physical transmissions lost (random drops + deliveries to dead nodes)
    drops: int = 0
    #: extra physical deliveries injected by the fault plan
    duplicates_injected: int = 0
    #: sends swallowed because the source node was crashed
    sends_suppressed: int = 0
    #: node crash / recovery edges observed during the run
    crashes: int = 0
    recoveries: int = 0
    #: sends abandoned after the retry budget ran out (graceful degradation)
    delivery_failures: int = 0
    #: unordered datagrams silently abandoned after the retry budget ran
    #: out (quorum transport; liveness is owned by quorum re-selection,
    #: so an abandoned datagram is not a delivery failure)
    dgram_abandoned: int = 0
    #: quorum re-selection attempts (phase timeouts that triggered a
    #: re-broadcast to non-responders); zero on a fault-free fabric
    quorum_reselections: int = 0
    #: hedge legs launched by quorum phases whose latency budget expired
    #: (:mod:`repro.sim.hedge`); zero unless hedging is configured
    hedges_launched: int = 0
    #: operation ids whose traffic hit a delivery failure
    failed_op_ids: List[int] = field(default_factory=list)
    #: total communication cost charged by the reliability layer
    cost: float = 0.0


@dataclass(slots=True)
class RecoveryStats:
    """Counters for the crash-recovery subsystem (:mod:`repro.sim.recovery`).

    All zero without amnesia crash windows or sequencer failover.  ``cost``
    is the total communication cost the recovery protocol charged (epoch
    announcements, standby elections, snapshot/catch-up transfers); it is
    system-level traffic not attributable to any single operation, so
    :meth:`Metrics.average_cost_breakdown` amortizes it over the
    measurement window as a separate ``recovery`` share.
    """

    #: global epoch resets (view changes) driven by crashes and rejoins
    epoch_resets: int = 0
    #: sequencer failovers (standby elections)
    failovers: int = 0
    #: operations lost to amnesia crashes (issued, never completed)
    ops_lost: int = 0
    #: in-flight operations re-driven after an epoch reset
    ops_redriven: int = 0
    #: unacknowledged transport frames voided by epoch resets
    frames_voided: int = 0
    #: received frames dropped for carrying a stale epoch
    stale_frames_dropped: int = 0
    #: replicas resynchronized at node rejoin (snapshot or catch-up)
    resync_objects: int = 0
    #: communication cost of resynchronization transfers alone
    resync_cost: float = 0.0
    #: total simulated time rejoining nodes spent quarantined
    quarantine_time: float = 0.0
    #: total communication cost charged by the recovery subsystem
    cost: float = 0.0


@dataclass(slots=True)
class PartitionStats:
    """Counters for link partitions and the heartbeat failure detector.

    All zero without a :class:`~repro.sim.partition.PartitionPlan`.
    ``cost`` is the total communication cost of detector traffic (probes
    and replies); like recovery traffic it serves the system as a whole,
    so :meth:`Metrics.average_cost_breakdown` amortizes it over the
    measurement window as a separate ``detector`` share.
    """

    #: heartbeat probes sent by the sequencer-side failure detector
    heartbeats: int = 0
    #: nodes declared suspect (``suspect_after`` consecutive missed beats)
    suspicions: int = 0
    #: nodes demoted for persistent slowness (phi-accrual score high for
    #: consecutive probes) — deprioritized, not quarantined
    demotions: int = 0
    #: demoted nodes restored to healthy after their speed recovered
    restorations: int = 0
    #: partition-quarantined nodes driven through a resync rejoin
    rejoins: int = 0
    #: reads served from a stale local replica under ``serve_local_reads``
    stale_reads_served: int = 0
    #: sends to quarantined destinations absorbed instead of retried
    sends_absorbed: int = 0
    #: local operations still gated at quarantined nodes at run end
    ops_stalled: int = 0
    #: retry-budget delivery violations suppressed because the
    #: destination was quarantined or crashed (expected unreachability,
    #: not a delivery bug) — previously invisible
    suppressed_violations: int = 0
    #: total simulated time nodes spent partition-quarantined (healed
    #: partitions only; a node still quarantined at run end is not counted)
    partition_time: float = 0.0
    #: total communication cost of detector probes and replies
    cost: float = 0.0


@dataclass(slots=True)
class ReconfigStats:
    """Counters for online replica-set reconfiguration
    (:mod:`repro.sim.reconfig`).

    All zero without a :class:`~repro.sim.reconfig.ReconfigPlan` that
    schedules membership changes.  ``cost`` is the total communication
    cost the reconfiguration protocol charged (change announcements,
    versioned state transfers, new-quorum sync, epoch announcements);
    like recovery traffic it is system-level and amortized over the
    measurement window as the ``reconfig`` share of
    :meth:`Metrics.average_cost_breakdown`.
    """

    #: membership transitions entered (joint mode begun)
    transitions: int = 0
    #: transitions committed (new membership took effect, epoch bumped)
    commits: int = 0
    #: transitions rolled back after the transfer retry budget ran out
    aborts: int = 0
    #: nodes that joined / left across all scheduled changes
    joins: int = 0
    leaves: int = 0
    #: in-flight operations re-driven at a joint-mode entry, commit or
    #: abort boundary (each still completes exactly once)
    ops_redriven: int = 0
    #: object copies installed by state transfer and new-quorum sync
    transfer_objects: int = 0
    #: state-transfer / commit attempts retried (donors unreachable)
    transfer_retries: int = 0
    #: transitions whose transfer exhausted its retries (each aborted)
    transfers_failed: int = 0
    #: communication cost of state transfers and sync alone
    transfer_cost: float = 0.0
    #: total simulated time spent in joint (two-majority) mode
    joint_time: float = 0.0
    #: total communication cost charged by the reconfiguration subsystem
    cost: float = 0.0


@dataclass(slots=True)
class ReplicaCacheStats:
    """Counters for bounded replica caches (:mod:`repro.sim.cache`).

    All zero without a :class:`~repro.sim.cache.CacheConfig`.  A *hit*
    is a data operation dispatched while its object's copy was resident;
    a *miss* is one dispatched without it; ``capacity_misses`` is the
    subset of misses on objects the issuing node's cache evicted and had
    not re-accessed since — the misses full replication would not have
    paid.  ``cost`` totals the cache's communication charges (eviction
    write-backs and departure notices plus reclassified refetches);
    dividing it over the measurement window gives the ``cache`` share of
    :meth:`Metrics.average_cost_breakdown`.
    """

    #: data operations dispatched with the object's copy resident
    hits: int = 0
    #: data operations dispatched without a resident copy
    misses: int = 0
    #: misses caused by this cache's own evictions (first re-access only)
    capacity_misses: int = 0
    #: copies evicted to enforce capacity
    evictions: int = 0
    #: evictions of dirty copies that flushed the value home (``WB``)
    writebacks: int = 0
    #: protocol refetch cost reclassified from capacity-missed reads
    refetch_cost: float = 0.0
    #: total communication cost charged to the cache share
    cost: float = 0.0


class Metrics:
    """Accumulates operation records and computes steady-state ``acc``."""

    def __init__(self) -> None:
        self._ops: Dict[int, OpRecord] = {}
        self._completed: List[int] = []  # op ids in completion order
        #: total cost of unattributed messages (op_id None); should stay 0
        self.unattributed_cost: float = 0.0
        #: optional :class:`repro.obs.Tracer`; every cost-charging method
        #: below mirrors its charge into the tracer, so span costs equal
        #: operation costs by construction
        self.tracer = None
        #: fault-injection / reliable-delivery counters (all zero without
        #: a fault plan)
        self.reliability = ReliabilityStats()
        #: crash-recovery counters (all zero without amnesia/failover)
        self.recovery = RecoveryStats()
        #: partition / failure-detector counters (all zero without a
        #: partition plan)
        self.partition = PartitionStats()
        #: replica-set reconfiguration counters (all zero without a
        #: reconfiguration plan)
        self.reconfig = ReconfigStats()
        #: bounded-replica-cache counters (all zero without a cache)
        self.cache = ReplicaCacheStats()
        #: eject op id -> data op id whose completion forced the eviction;
        #: redirected operations are never registered or counted — their
        #: traffic lands on the target's ``cache_cost``
        self._redirects: Dict[int, int] = {}
        #: read op ids classified as capacity misses at dispatch; their
        #: protocol refetch cost is reclassified into the cache share at
        #: completion
        self._capacity_miss_ops: set = set()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def register_op(self, op_id: int, node: int, kind: str, obj: int,
                    issue_time: float) -> None:
        """Register an operation when the application issues it."""
        self._ops[op_id] = OpRecord(op_id, node, kind, obj, issue_time)
        tracer = self.tracer
        if tracer is not None:
            tracer.begin_op(op_id, node, kind, obj, issue_time)

    def redirect_op(self, op_id: int, target_id: int) -> None:
        """Route one operation's charges onto another's ``cache_cost``.

        Used by the replica cache for its eject operations: the eject is
        internal bookkeeping (never an application operation), so its
        traffic is charged to the data operation whose completion forced
        the eviction, under the ``cache`` share, and the eject itself is
        excluded from completion counts and ``acc`` denominators.
        """
        self._redirects[op_id] = self._redirects.get(target_id, target_id)

    def mark_capacity_miss(self, op_id: int) -> None:
        """Flag a read whose refetch cost belongs to the ``cache`` share."""
        self._capacity_miss_ops.add(op_id)

    def record_message(self, msg: Message, cost: float) -> None:
        """Charge one message's cost to its operation (Network cost hook)."""
        tracer = self.tracer
        target = self._redirects.get(msg.op_id)
        if target is not None:
            # eviction traffic (write-back / departure notice): charge
            # the triggering data operation's cache share, but keep its
            # trace signature protocol-pure.
            rec = self._ops[target]
            rec.cost += cost
            rec.cache_cost += cost
            self.cache.cost += cost
            if tracer is not None:
                tracer.op_event("evict", target, cost=cost, src=msg.src,
                                dst=msg.dst, detail=msg.token.type.value)
            return
        if msg.op_id is None or msg.op_id not in self._ops:
            self.unattributed_cost += cost
            if tracer is not None:
                tracer.op_event("send", None, cost=cost, src=msg.src, dst=msg.dst,
                                detail=msg.token.type.value)
            return
        rec = self._ops[msg.op_id]
        rec.cost += cost
        rec.signature.append(
            (msg.token.type.value, msg.token.parameter_presence.value)
        )
        if tracer is not None:
            tracer.op_event("send", msg.op_id, cost=cost, src=msg.src, dst=msg.dst,
                            detail=msg.token.type.value)

    def record_reliability_cost(self, op_id: Optional[int], cost: float,
                                kind: str = "reliability") -> None:
        """Charge a reliability-layer message (retransmission or ack).

        The cost is attributed to the operation whose traffic needed it —
        it inflates the operation's ``cost`` (and hence ``acc``) but is
        tracked separately so the overhead of reliable delivery can be
        broken out — and is *not* appended to the trace signature, so
        trace-set comparisons against the paper stay meaningful under
        faults.  ``kind`` labels the trace event ("retransmit" / "ack").
        """
        if op_id is not None and op_id in self._redirects:
            # retransmitted eviction traffic: the reliability overhead of
            # the eject lands on the triggering data operation like any
            # other per-operation reliability charge.
            op_id = self._redirects[op_id]
        self.reliability.cost += cost
        tracer = self.tracer
        if op_id is None or op_id not in self._ops:
            self.unattributed_cost += cost
            if tracer is not None:
                tracer.op_event(kind, None, cost=cost)
            return
        rec = self._ops[op_id]
        rec.cost += cost
        rec.reliability_cost += cost
        if tracer is not None:
            tracer.op_event(kind, op_id, cost=cost)

    def record_quorum_cost(self, op_id: Optional[int], cost: float,
                           kind: str = "quorum") -> None:
        """Charge a quorum re-selection message (re-broadcast or reply).

        Like reliability overhead it inflates the operation's ``cost``
        without touching the trace signature, but it is tracked as its
        own share: re-selection traffic is the price of a quorum
        protocol's availability under faults, not of reliable delivery.
        Zero on a fault-free fabric, where no phase ever times out.
        """
        tracer = self.tracer
        if op_id is None or op_id not in self._ops:
            self.unattributed_cost += cost
            if tracer is not None:
                tracer.op_event(kind, None, cost=cost)
            return
        rec = self._ops[op_id]
        rec.cost += cost
        rec.quorum_cost += cost
        if tracer is not None:
            tracer.op_event(kind, op_id, cost=cost)

    def record_hedge_cost(self, op_id: Optional[int], cost: float,
                          kind: str = "hedge") -> None:
        """Charge a hedged quorum leg (backup-replica phase message).

        Like re-selection overhead it inflates the operation's ``cost``
        without touching the trace signature, but it is tracked as its
        own share: hedge traffic is the price of tail-latency tolerance
        under gray failures, deliberately spent *before* any timeout
        fires.  Zero unless hedging is configured.
        """
        tracer = self.tracer
        if op_id is None or op_id not in self._ops:
            self.unattributed_cost += cost
            if tracer is not None:
                tracer.op_event(kind, None, cost=cost)
            return
        rec = self._ops[op_id]
        rec.cost += cost
        rec.hedge_cost += cost
        if tracer is not None:
            tracer.op_event(kind, op_id, cost=cost)

    def record_recovery_cost(self, cost: float, kind: str = "recovery") -> None:
        """Charge recovery-subsystem traffic (elections, snapshots).

        Recovery traffic serves the system as a whole, not one operation,
        so it is never attributed to an :class:`OpRecord`; it is tracked
        in :attr:`RecoveryStats.cost` and amortized over the measurement
        window by :meth:`average_cost_breakdown`.  ``kind`` labels the
        system-level trace event ("election", "epoch_announce", "resync").
        """
        self.recovery.cost += cost
        tracer = self.tracer
        if tracer is not None:
            tracer.system_event(kind, cost=cost)

    def record_reconfig_cost(self, cost: float, kind: str = "reconfig") -> None:
        """Charge reconfiguration traffic (announcements, state transfer).

        Like recovery traffic it serves the system as a whole rather than
        one operation; it is tracked in :attr:`ReconfigStats.cost` and
        amortized over the measurement window by
        :meth:`average_cost_breakdown`.  ``kind`` labels the system-level
        trace event ("announce", "transfer", "sync", "epoch_announce").
        """
        self.reconfig.cost += cost
        tracer = self.tracer
        if tracer is not None:
            tracer.system_event(kind, cost=cost)

    def record_detector_cost(self, cost: float, kind: str = "detector",
                             src: Optional[int] = None,
                             dst: Optional[int] = None) -> None:
        """Charge failure-detector traffic (heartbeat probes and replies).

        Like recovery traffic, detector traffic serves the system as a
        whole rather than one operation; it is tracked in
        :attr:`PartitionStats.cost` and amortized over the measurement
        window by :meth:`average_cost_breakdown`.  ``kind`` labels the
        system-level trace event ("probe", "probe_reply").
        """
        self.partition.cost += cost
        tracer = self.tracer
        if tracer is not None:
            tracer.system_event(kind, cost=cost, src=src, dst=dst)

    def record_complete(self, op_id: int, time: float) -> None:
        """Mark an operation complete (in global completion order)."""
        if op_id in self._redirects:
            return  # cache ejects are bookkeeping, not operations
        rec = self._ops[op_id]
        if rec.completed:  # pragma: no cover - protocol bug guard
            raise RuntimeError(f"operation {op_id} completed twice")
        rec.complete_time = time
        self._completed.append(op_id)
        if op_id in self._capacity_miss_ops:
            # the protocol traffic this read paid was a cache-capacity
            # refetch: move it into the cache share (total unchanged).
            extra = (rec.cost - rec.reliability_cost - rec.quorum_cost
                     - rec.hedge_cost - rec.cache_cost)
            if extra > 0:
                rec.cache_cost += extra
                self.cache.refetch_cost += extra
                self.cache.cost += extra
        tracer = self.tracer
        if tracer is not None:
            tracer.end_op(op_id, time)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def completed_count(self) -> int:
        """Number of completed operations."""
        return len(self._completed)

    def records(self, skip: int = 0, take: Optional[int] = None) -> List[OpRecord]:
        """Completed operation records, in completion order, windowed."""
        ids = self._completed[skip: None if take is None else skip + take]
        return [self._ops[i] for i in ids]

    def average_cost(self, skip: int = 0, take: Optional[int] = None) -> float:
        """Steady-state average communication cost per operation.

        Args:
            skip: warm-up operations to drop (the paper drops 500).
            take: measurement window size (the paper uses about 1500).
        """
        recs = self.records(skip, take)
        if not recs:
            raise ValueError("no completed operations in the window")
        return sum(r.cost for r in recs) / len(recs)

    def average_cost_breakdown(self, skip: int = 0, take: Optional[int] = None
                               ) -> Dict[str, float]:
        """Split steady-state ``acc`` into its cost shares.

        Returns ``{"acc", "protocol", "reliability", "quorum", "hedge",
        "cache", "recovery", "detector", "reconfig"}`` where ``acc`` is
        the usual per-operation total (``protocol + reliability + quorum
        + hedge + cache``),
        ``protocol`` is the cost the coherence traces would incur on a
        fault-free fabric, ``reliability`` is the per-operation overhead
        of retransmissions and acknowledgements, ``quorum`` is the
        per-operation overhead of quorum re-selection (re-broadcast
        phase messages after quorum timeouts; SC-ABD only), ``hedge``
        is the per-operation overhead of hedged backup legs (extra
        phase fan-out after the hedge latency budget; zero unless
        hedging is configured), ``cache`` is the per-operation cost of
        bounded replica caches (eviction write-backs / departure notices
        plus capacity-miss refetches; zero unless a cache is
        configured), and ``recovery`` / ``detector`` are the crash-recovery subsystem's
        and the failure detector's system-level traffic (elections,
        epoch announcements, resynchronization transfers; heartbeat
        probes and replies) amortized over the same window — they ride
        on top of ``acc`` rather than inside it because they are not
        attributable to individual operations.  ``reconfig`` amortizes
        replica-set reconfiguration traffic (membership announcements,
        versioned state transfers, epoch announcements) the same way.
        """
        recs = self.records(skip, take)
        if not recs:
            raise ValueError("no completed operations in the window")
        total = sum(r.cost for r in recs) / len(recs)
        overhead = sum(r.reliability_cost for r in recs) / len(recs)
        quorum = sum(r.quorum_cost for r in recs) / len(recs)
        hedge = sum(r.hedge_cost for r in recs) / len(recs)
        cache = sum(r.cache_cost for r in recs) / len(recs)
        return {
            "acc": total,
            "protocol": total - overhead - quorum - hedge - cache,
            "reliability": overhead,
            "quorum": quorum,
            "hedge": hedge,
            "cache": cache,
            "recovery": self.recovery.cost / len(recs),
            "detector": self.partition.cost / len(recs),
            "reconfig": self.reconfig.cost / len(recs),
        }

    def average_cost_by(self, skip: int = 0, take: Optional[int] = None
                        ) -> Dict[Tuple[int, str], Tuple[float, int]]:
        """Per ``(node, kind)`` mean cost and count over the window."""
        groups: Dict[Tuple[int, str], List[float]] = {}
        for r in self.records(skip, take):
            groups.setdefault((r.node, r.kind), []).append(r.cost)
        return {k: (sum(v) / len(v), len(v)) for k, v in groups.items()}

    def trace_histogram(self, skip: int = 0, take: Optional[int] = None
                        ) -> Counter:
        """Counts of trace signatures over the window.

        The signature of a purely local trace (e.g. Write-Through ``tr1``)
        is the empty tuple.
        """
        return Counter(
            tuple(r.signature) for r in self.records(skip, take)
        )

    def latency_stats(self, skip: int = 0, take: Optional[int] = None
                      ) -> Dict[str, float]:
        """Completion-latency statistics over the window.

        Latency is ``complete_time - issue_time`` in simulation time units
        (local operations complete instantly; blocking distributed
        operations pay round trips plus any queueing behind earlier
        operations).  Returns mean, p50, p95, p99 and max — not a paper
        metric (the paper counts cost only) but essential for using the
        simulator as a systems substrate.
        """
        recs = self.records(skip, take)
        if not recs:
            raise ValueError("no completed operations in the window")
        lat = sorted(r.complete_time - r.issue_time for r in recs)
        n = len(lat)

        def pct(q: float) -> float:
            return lat[min(n - 1, int(q * n))]

        return {
            "mean": sum(lat) / n,
            "p50": pct(0.50),
            "p95": pct(0.95),
            "p99": pct(0.99),
            "max": lat[-1],
        }

    def op(self, op_id: int) -> OpRecord:
        """Record for one operation id."""
        return self._ops[op_id]

    # ------------------------------------------------------------------
    # registry publication
    # ------------------------------------------------------------------

    def publish(self, registry, skip: int = 0, take: Optional[int] = None,
                window: Optional[int] = None, prefix: str = "sim") -> None:
        """Publish a snapshot into a :class:`repro.obs.MetricsRegistry`.

        Per-operation latency and cost go into histograms (optionally a
        sliding window of the last ``window`` operations); the ``acc``
        cost shares and subsystem counters go into gauges.  Everything
        is namespaced under ``prefix``.
        """
        recs = self.records(skip, take)
        registry.gauge(prefix + ".ops_completed",
                       "completed operations in the window").set(len(recs))
        registry.gauge(prefix + ".unattributed_cost",
                       "cost of messages with no operation").set(self.unattributed_cost)
        lat = registry.histogram(prefix + ".op_latency",
                                 "completion latency (simulated time)",
                                 window=window)
        cost = registry.histogram(prefix + ".op_cost",
                                  "communication cost per operation (acc)",
                                  window=window)
        for r in recs:
            lat.observe(r.complete_time - r.issue_time)
            cost.observe(r.cost)
        if recs:
            for share, value in self.average_cost_breakdown(skip, take).items():
                registry.gauge(prefix + ".acc." + share,
                               "steady-state %s cost share" % share).set(value)
        suppressed = registry.counter(
            prefix + ".reliable.suppressed_violations",
            "retry-budget delivery violations suppressed because the "
            "destination was quarantined or crashed")
        delta = self.partition.suppressed_violations - suppressed.value
        if delta > 0:
            suppressed.inc(delta)
        for group, stats in (("reliability", self.reliability),
                             ("recovery", self.recovery),
                             ("partition", self.partition),
                             ("reconfig", self.reconfig),
                             ("cache", self.cache)):
            for f in fields(stats):
                value = getattr(stats, f.name)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    registry.gauge("%s.%s.%s" % (prefix, group, f.name),
                                   f.name.replace("_", " ")).set(value)
