"""Finite replica pools: the "size of the free memory pool" (Section 6).

The paper assumes every node can hold a replica of every shared object; its
conclusion asks how a *finite* free memory pool changes the picture.  This
module models it: each client node owns a :class:`ReplicaPool` with a
capacity of ``C`` resident replicas across the ``M`` objects.  Whenever a
local operation leaves more than ``C`` replicas resident, the pool evicts
the least-recently-used unpinned replica by issuing an internal ``eject``
operation through the normal local queue — so evictions serialize with the
application's operations and pay the protocol's real eject costs
(write-backs for dirty copies, directory notices, and the later re-fetch
misses).

Owner copies (Berkeley DIRTY/SHARED-DIRTY, Dragon SHARED-DIRTY) are the
object's backing store and are pinned; the sequencer node (the home of the
fixed-home protocols) has no pool.
"""

from __future__ import annotations

from typing import Callable, Dict, Set

__all__ = ["PINNED_STATES", "ReplicaPool"]

#: copy states that must not be evicted, per protocol
PINNED_STATES: Dict[str, frozenset] = {
    "berkeley": frozenset({"DIRTY", "SHARED-DIRTY"}),
    "dragon": frozenset({"SHARED-DIRTY"}),
}

#: copy states that do not occupy a pool slot
_NON_RESIDENT = frozenset({"INVALID"})


class ReplicaPool:
    """LRU replica pool for one client node.

    Args:
        capacity: maximum resident replicas (``>= 1``).
        protocol: registry name (selects the pinned states).
        request_eject: callback ``(obj) -> None`` that enqueues an eject
            operation for the object on this node.
    """

    def __init__(self, capacity: int, protocol: str,
                 request_eject: Callable[[int], None]):
        if capacity < 1:
            raise ValueError("pool capacity must be at least 1")
        self.capacity = capacity
        self.pinned_states = PINNED_STATES.get(protocol, frozenset())
        self.request_eject = request_eject
        #: object -> last-use timestamp (monotone counter)
        self._last_use: Dict[int, float] = {}
        self._clock = 0
        #: objects with an eviction already queued
        self._evicting: Set[int] = set()
        #: total evictions triggered (instrumentation)
        self.evictions = 0

    def touch(self, obj: int) -> None:
        """Record a local use of ``obj`` (LRU bookkeeping)."""
        self._clock += 1
        self._last_use[obj] = self._clock
        self._evicting.discard(obj)

    def enforce(self, states: Dict[int, str]) -> None:
        """Evict LRU replicas until at most ``capacity`` are resident.

        Args:
            states: current copy state per object at this node.
        """
        resident = [
            obj for obj, st in states.items() if st not in _NON_RESIDENT
        ]
        in_flight = sum(1 for obj in resident if obj in self._evicting)
        excess = len(resident) - in_flight - self.capacity
        if excess <= 0:
            return
        evictable = [
            obj for obj in resident
            if states[obj] not in self.pinned_states
            and obj not in self._evicting
        ]
        evictable.sort(key=lambda o: self._last_use.get(o, 0))
        for obj in evictable[:excess]:
            self._evicting.add(obj)
            self.evictions += 1
            self.request_eject(obj)
