"""Deterministic discrete-event engine for the distributed-system simulator.

A classic event-list scheduler: events are ``(time, sequence, handle)``
triples kept in a binary heap.  The monotonically increasing sequence number
breaks time ties in schedule order, which — together with constant channel
latency — preserves the first-in/first-out property the paper assumes for
every communication channel and queue (Section 2).

Scheduling returns a :class:`TimerHandle`; the reliable-delivery layer
(:mod:`repro.sim.reliable`) cancels retransmission timers through it when an
acknowledgement arrives.  Cancellation is lazy: the heap entry stays in
place and is discarded, uncounted, when it reaches the front — cancelling is
O(1) and the hot scheduling path stays allocation-light (the simulator
schedules millions of events in the Table 7 reproduction; the handle is a
single slotted object per event).
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Callable, List, Optional, Tuple

__all__ = ["EventScheduler", "TimerHandle"]


class TimerHandle:
    """Handle to one scheduled event; supports O(1) cancellation.

    A handle is *active* until its event fires or it is cancelled,
    whichever comes first.  Cancelling an inactive handle is a no-op.
    """

    __slots__ = ("_callback", "_scheduler")

    def __init__(self, scheduler: "EventScheduler",
                 callback: Callable[[], None]) -> None:
        self._scheduler = scheduler
        self._callback = callback

    def cancel(self) -> bool:
        """Cancel the event if it has not fired yet.

        Returns ``True`` if this call cancelled a still-pending event,
        ``False`` if the event already fired or was already cancelled.
        """
        if self._callback is None:
            return False
        self._callback = None
        self._scheduler._cancelled += 1
        return True

    @property
    def active(self) -> bool:
        """Whether the event is still pending (not fired, not cancelled)."""
        return self._callback is not None


class EventScheduler:
    """A minimal deterministic event scheduler.

    Events scheduled for the same simulation time fire in the order they
    were scheduled.  Time never runs backwards; scheduling into the past
    raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, TimerHandle]] = []
        self._seq = 0
        self._cancelled = 0  # cancelled entries still parked in the heap
        #: current simulation time
        self.now: float = 0.0
        #: number of events executed so far
        self.executed: int = 0
        #: optional :class:`repro.obs.Profiler`; when set, every event
        #: dispatch is timed under the ``engine.dispatch`` scope
        self.profiler = None

    def schedule(self, delay: float, callback: Callable[[], None]
                 ) -> TimerHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self._push(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]
                    ) -> TimerHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        return self._push(time, callback)

    def _push(self, time: float, callback: Callable[[], None]) -> TimerHandle:
        self._seq += 1
        handle = TimerHandle(self, callback)
        heapq.heappush(self._heap, (time, self._seq, handle))
        return handle

    def __len__(self) -> int:
        """Number of live (non-cancelled) pending events."""
        return len(self._heap) - self._cancelled

    def step(self) -> bool:
        """Execute the next live event; ``False`` when none remain.

        Cancelled entries reaching the front of the heap are discarded
        without advancing time or counting as executed.
        """
        while self._heap:
            time, _seq, handle = heapq.heappop(self._heap)
            callback = handle._callback
            if callback is None:  # cancelled: discard silently
                self._cancelled -= 1
                continue
            handle._callback = None  # fired: the handle goes inactive
            self.now = time
            self.executed += 1
            profiler = self.profiler
            if profiler is None:
                callback()
            else:
                t0 = perf_counter()
                callback()
                profiler.add("engine.dispatch", perf_counter() - t0)
            return True
        return False

    def run(
        self,
        max_events: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until the event list drains, ``max_events`` fire, or ``until()``.

        Args:
            max_events: hard cap on executed events (safety net against
                protocol livelock bugs).
            until: optional stop predicate evaluated between events.

        Returns:
            The number of events executed by this call.
        """
        start = self.executed
        while len(self):
            if max_events is not None and self.executed - start >= max_events:
                break
            if until is not None and until():
                break
            self.step()
        return self.executed - start
