"""Deterministic discrete-event engine for the distributed-system simulator.

A classic event-list scheduler: events are ``(time, sequence, callback)``
triples kept in a binary heap.  The monotonically increasing sequence number
breaks time ties in schedule order, which — together with constant channel
latency — preserves the first-in/first-out property the paper assumes for
every communication channel and queue (Section 2).

The engine is intentionally minimal and allocation-light (the simulator
schedules millions of events in the Table 7 reproduction); profiling showed
tuple-heap scheduling to be the fastest pure-Python representation.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["EventScheduler"]


class EventScheduler:
    """A minimal deterministic event scheduler.

    Events scheduled for the same simulation time fire in the order they
    were scheduled.  Time never runs backwards; scheduling into the past
    raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        #: current simulation time
        self.now: float = 0.0
        #: number of events executed so far
        self.executed: int = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before current time {self.now}"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, callback))

    def __len__(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Execute the next event; returns ``False`` when the list is empty."""
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self.now = time
        self.executed += 1
        callback()
        return True

    def run(
        self,
        max_events: Optional[int] = None,
        until: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run until the event list drains, ``max_events`` fire, or ``until()``.

        Args:
            max_events: hard cap on executed events (safety net against
                protocol livelock bugs).
            until: optional stop predicate evaluated between events.

        Returns:
            The number of events executed by this call.
        """
        start = self.executed
        while self._heap:
            if max_events is not None and self.executed - start >= max_events:
                break
            if until is not None and until():
                break
            self.step()
        return self.executed - start
