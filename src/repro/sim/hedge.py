"""Hedged quorum requests: tail-latency tolerance for gray failures.

A quorum phase normally fans out to the cheapest live majority and waits;
when one of those replicas is a straggler (a :class:`~repro.sim.faults.
SlowWindow`), the whole phase — and the operation — waits with it.  A
:class:`HedgeConfig` arms a *hedge timer* on every quorum phase: if the
quorum has not assembled within ``budget`` time units, up to ``max_legs``
extra phase messages are launched to backup replicas outside the primary
target set, seeded and deterministic.  Whichever legs lose are cancelled
(their pending retransmissions voided; their late replies ignored by the
phase generation counter) — the classic "hedged request" discipline.

The extra legs are charged to a dedicated ``hedge`` share of
:meth:`~repro.sim.metrics.Metrics.average_cost_breakdown`, so the
acc-vs-tail-latency trade is measurable: each fired hedge leg costs what
the phase message costs (``S + 2`` per read-phase leg, ``P + 4`` per
write, split across the leg's request/reply pairs), bounded by
``max_legs`` per phase.

Pay-for-what-you-use: ``HedgeConfig`` rides on
:class:`~repro.sim.config.RunConfig` under a key that is only serialized
when hedging is configured, so every pre-existing cell id, cache key and
committed baseline stays byte-identical.
"""

from __future__ import annotations

import math

from ..util import reject_unknown_keys

__all__ = ["HedgeConfig"]


class HedgeConfig:
    """Configuration of hedged quorum requests (quorum protocols only).

    Args:
        budget: latency budget in simulation time units — how long a
            quorum phase waits before launching hedge legs.  Smaller
            budgets hedge more aggressively (more extra cost, better
            tail); the budget should sit between the healthy phase
            round trip (~2 hops) and the straggler's (~2 hops x
            factor).
        max_legs: most backup replicas one phase may hedge to.
        seed: seed for the deterministic backup-ordering shuffle, part
            of the configuration identity like every plan seed.
    """

    def __init__(self, budget: float = 8.0, max_legs: int = 1,
                 seed: int = 0) -> None:
        if not (budget > 0 and math.isfinite(budget)):
            raise ValueError(
                f"hedge budget must be a positive finite number, "
                f"got {budget}"
            )
        if max_legs < 1:
            raise ValueError(f"max_legs must be >= 1, got {max_legs}")
        self.budget = float(budget)
        self.max_legs = int(max_legs)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    # configuration identity and serialization
    # ------------------------------------------------------------------

    def config_key(self) -> tuple:
        return (self.budget, self.max_legs, self.seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HedgeConfig):
            return NotImplemented
        return self.config_key() == other.config_key()

    def __hash__(self) -> int:
        return hash(self.config_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HedgeConfig({self.describe()})"

    def to_dict(self) -> dict:
        return {
            "budget": float(self.budget),
            "max_legs": int(self.max_legs),
            "seed": int(self.seed),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HedgeConfig":
        reject_unknown_keys(data, ("budget", "max_legs", "seed"),
                            "HedgeConfig")
        return cls(
            budget=float(data.get("budget", 8.0)),
            max_legs=int(data.get("max_legs", 1)),
            seed=int(data.get("seed", 0)),
        )

    def describe(self) -> str:
        """One-line human-readable summary (used by the CLI)."""
        return (f"budget={self.budget:g}, max_legs={self.max_legs}, "
                f"seed={self.seed}")
