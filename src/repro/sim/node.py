"""Simulated nodes: application interface, queues, and protocol processes.

Each node hosts, per shared object, one protocol process with the paper's
two input queues (Section 2):

* a **local queue** where the application's requests wait; it is *disabled*
  while a distributed operation awaits a response from the sequencer and
  re-enabled by the response (the paper's disable/enable mechanism), which
  preserves per-node operation order;
* a **distributed queue** for messages from other protocol processes; the
  FIFO fabric delivers them in channel order and the node consumes them
  immediately on arrival, so the arrival interleaving at the sequencer *is*
  the global serialization of distributed operations.

Requests and responses to different shared objects are independent — each
object has its own queues and protocol process, matching the paper's
"protocol processes associated with the copies of that particular data
block".
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from ..machines.message import Message, MessageToken, MsgType, ParamPresence, QueueTag
from ..protocols.base import (
    ACQUIRE,
    EJECT,
    READ,
    RELEASE,
    WRITE,
    Operation,
    ProcessContext,
    ProtocolProcess,
    ProtocolSpec,
)
from .cache import CacheConfig, ReplicaCache
from .locks import LOCK_MESSAGE_TYPES, LockClient, LockManager
from .pool import ReplicaPool
from .channel import Network
from .engine import EventScheduler
from .metrics import Metrics

__all__ = ["ClusterView", "ObjectPort", "SimNode"]


class ClusterView:
    """Mutable cluster-wide role state shared by every node of one system.

    On the paper-faithful fabric the sequencer is node ``N + 1`` forever and
    this object never changes.  Under sequencer failover the recovery
    subsystem reassigns :attr:`sequencer_id` (and bumps :attr:`epoch`), and
    because every node and port reads the role through this shared view,
    the whole system switches to the new sequencer atomically.
    """

    __slots__ = ("sequencer_id", "epoch", "quarantined", "demoted")

    def __init__(self, sequencer_id: int):
        #: the node currently acting as the sequencer
        self.sequencer_id = sequencer_id
        #: current view-change epoch (mirrors the transport's epoch)
        self.epoch = 0
        #: node ids currently evicted from the view (amnesia rejoin or
        #: partition quarantine); the transport absorbs sends to them
        self.quarantined: set[int] = set()
        #: node ids demoted by the latency-aware failure detector (gray
        #: failures): still in the view and reachable, but deprioritized
        #: when quorum protocols pick their primary target set
        self.demoted: set[int] = set()


class ObjectPort(ProcessContext):
    """The :class:`ProcessContext` a protocol process sees for one object."""

    def __init__(self, node: "SimNode", obj: int):
        self._node = node
        self.node_id = node.node_id
        self.all_nodes = node.all_nodes
        self.obj = obj
        #: the protocol process bound to this port (set by SimNode)
        self.process: Optional[ProtocolProcess] = None
        #: local request queue and its gate
        self.local_queue: Deque[Operation] = deque()
        self.local_enabled: bool = True
        #: partition degraded mode (``serve_local_reads`` policy): while
        #: the gate is closed by a partition quarantine, queue-head reads
        #: may be answered from the stale local replica
        self.degraded_reads: bool = False
        #: dispatched-but-incomplete operations (op_id -> Operation); the
        #: recovery subsystem re-drives these after an epoch reset
        self.inflight: Dict[int, Operation] = {}
        #: shared :class:`~repro.sim.reconfig.MembershipView`; attached by
        #: DSMSystem only when reconfiguration or quorum vote weights are
        #: configured (``None`` keeps the static fast path bit-identical)
        self.membership = None
        #: :class:`~repro.sim.hedge.HedgeConfig`; attached by DSMSystem
        #: only when hedged quorum requests are configured (``None`` keeps
        #: the unhedged phase machine bit-identical)
        self.hedge = None

    @property
    def demoted_nodes(self) -> "set[int]":
        """Nodes demoted by the latency-aware detector (gray failures)."""
        return self._node.cluster.demoted

    @property
    def sequencer_id(self) -> int:  # type: ignore[override]
        """The current sequencer (dynamic under failover)."""
        return self._node.sequencer_id

    # -- ProcessContext ---------------------------------------------------

    def send(
        self,
        dst: int,
        msg_type: MsgType,
        presence: ParamPresence,
        op_id: Optional[int],
        payload: Any = None,
        initiator: Optional[int] = None,
    ) -> None:
        token = MessageToken(
            type=msg_type,
            operation_initiator=self.node_id if initiator is None else initiator,
            object_name=self.obj,
            queue=QueueTag.DISTRIBUTED,
            parameter_presence=presence,
        )
        msg = Message(token=token, src=self.node_id, dst=dst,
                      payload=payload, op_id=op_id)
        self._node.network.send(msg, self._node.S, self._node.P)

    def send_unordered(
        self,
        dst: int,
        msg_type: MsgType,
        presence: ParamPresence,
        op_id: Optional[int],
        payload: Any = None,
        initiator: Optional[int] = None,
        quorum: bool = False,
        hedge: bool = False,
    ) -> None:
        network = self._node.network
        if not hasattr(network, "send_unordered"):
            # fault-free fabric: plain FIFO sends are exact (nothing is
            # ever retried or abandoned, so ordering cannot wedge).
            self.send(dst, msg_type, presence, op_id, payload, initiator)
            return
        token = MessageToken(
            type=msg_type,
            operation_initiator=self.node_id if initiator is None else initiator,
            object_name=self.obj,
            queue=QueueTag.DISTRIBUTED,
            parameter_presence=presence,
        )
        msg = Message(token=token, src=self.node_id, dst=dst,
                      payload=payload, op_id=op_id)
        network.send_unordered(msg, self._node.S, self._node.P,
                               quorum=quorum, hedge=hedge)

    def cancel_unordered(self, op_id: int) -> int:
        """Cancel this node's pending datagram retries for ``op_id``.

        Hedge-loser cancellation; a no-op (returns 0) on fabrics without
        the datagram transport.
        """
        network = self._node.network
        if not hasattr(network, "cancel_dgrams"):
            return 0
        return network.cancel_dgrams(self.node_id, op_id)

    def record_hedge_launch(self, legs: int) -> None:
        """Count hedge legs fired by a quorum phase (CLI banner stat)."""
        self._node.metrics.reliability.hedges_launched += legs

    def schedule(self, delay: float, callback: Any) -> Any:
        return self._node.scheduler.schedule(delay, callback)

    def record_quorum_reselection(self) -> None:
        self._node.metrics.reliability.quorum_reselections += 1

    def complete(self, op: Operation, value: Any = None) -> None:
        op.complete_time = self._node.scheduler.now
        op.result = value
        self.inflight.pop(op.op_id, None)
        self._node.metrics.record_complete(op.op_id, op.complete_time)
        if self._node.observer is not None:
            self._node.observer.on_complete(op)
        self._node.after_local_op(op)
        if self._node.on_complete is not None:
            self._node.on_complete(op)
        if op.callback is not None:
            op.callback(op)

    def value_installed(self, process: ProtocolProcess, value: Any) -> None:
        # constructor-time installs fire before the process is bound to the
        # port (self.process is still None or the old process), which
        # filters them out: only live protocol installs are observed.
        if process is self.process and self._node.observer is not None:
            self._node.observer.on_install(
                self.node_id, self.obj, value, self._node.scheduler.now
            )

    def disable_local_queue(self) -> None:
        self.local_enabled = False

    def enable_local_queue(self) -> None:
        self.local_enabled = True
        # draining is driven by SimNode after the handler returns.

    # -- queue pump --------------------------------------------------------

    def enqueue_request(self, op: Operation) -> None:
        """Application request arrives on the local queue."""
        self.local_queue.append(op)
        tracer = self._node.metrics.tracer
        if tracer is not None:
            tracer.op_event("enqueue", op.op_id,
                            detail="depth=%d" % len(self.local_queue))
        self.pump()

    def pump(self) -> None:
        """Service local requests while the queue gate is open."""
        node = self._node
        while self.local_enabled and self.local_queue:
            op = self.local_queue.popleft()
            self.inflight[op.op_id] = op
            if node.cache is not None:
                node.cache.on_dispatch(op, self.process.state)
            tracer = node.metrics.tracer
            if tracer is not None:
                tracer.op_event("dispatch", op.op_id)
            profiler = node.scheduler.profiler
            if profiler is None:
                self.process.on_request(op)
            else:
                t0 = perf_counter()
                self.process.on_request(op)
                profiler.add("protocol.on_request", perf_counter() - t0)
        if not self.local_enabled and self.degraded_reads:
            self._pump_degraded()

    def _pump_degraded(self) -> None:
        """Serve queue-head reads from the stale local replica.

        Only reads, only while the local copy is readable, and only up to
        the first non-read — program order is preserved; the write (and
        everything behind it) stalls until the partition heals.  Served
        reads are counted as stale and flagged to the observer *before*
        completion, so the consistency monitor can exclude them from the
        sequential-consistency witness (degraded mode is visibly weaker).
        """
        node = self._node
        while (self.local_queue and self.local_queue[0].kind == READ
               and node.recovery is not None
               and self.process.state in node.recovery.hit_states):
            op = self.local_queue.popleft()
            node.metrics.partition.stale_reads_served += 1
            tracer = node.metrics.tracer
            if tracer is not None:
                tracer.op_event("stale_read", op.op_id,
                                detail="served from quarantined replica")
            if node.observer is not None:
                node.observer.on_degraded_read(op)
            self.complete(op, self.process.value)

    def deliver(self, msg: Message) -> None:
        """A message arrives on the distributed queue."""
        profiler = self._node.scheduler.profiler
        if profiler is None:
            self.process.on_message(msg)
        else:
            t0 = perf_counter()
            self.process.on_message(msg)
            profiler.add("protocol.on_message", perf_counter() - t0)
        # a response may have re-enabled the local queue.
        self.pump()


class SimNode:
    """One node of the ``N + 1``-node system: M ports plus plumbing."""

    def __init__(
        self,
        node_id: int,
        spec: ProtocolSpec,
        num_objects: int,
        scheduler: EventScheduler,
        network: Network,
        metrics: Metrics,
        S: float,
        P: float,
        all_nodes: Tuple[int, ...],
        sequencer_id: "int | ClusterView",
        on_complete: Optional[Callable[[Operation], None]] = None,
        capacity: Optional[int] = None,
        new_op: Optional[Callable[[str, int, int], Operation]] = None,
        cache: Optional[CacheConfig] = None,
        cache_overlay: bool = False,
    ):
        self.node_id = node_id
        #: shared cluster role view; an ``int`` is wrapped for callers that
        #: build nodes directly (the role is then fixed, as in the paper)
        self.cluster = (
            sequencer_id if isinstance(sequencer_id, ClusterView)
            else ClusterView(sequencer_id)
        )
        self.all_nodes = all_nodes
        self.scheduler = scheduler
        self.network = network
        self.metrics = metrics
        self.S = S
        self.P = P
        self.on_complete = on_complete
        self.new_op = new_op
        #: run-history observer (write log / consistency monitor); attached
        #: by DSMSystem only when monitoring or recovery is on
        self.observer = None
        #: recovery manager hook (amnesia crashes, failover); set by DSMSystem
        self.recovery = None
        self.ports: Dict[int, ObjectPort] = {}
        for obj in range(1, num_objects + 1):
            port = ObjectPort(self, obj)
            port.process = spec.make_process(port)
            self.ports[obj] = port
        # synchronization subsystem (Section 6 extension); the lock manager
        # is pinned to the initial sequencer (locks do not fail over).
        self.lock_client = LockClient(self)
        self.lock_manager = (
            LockManager(self) if node_id == self.sequencer_id else None
        )
        # finite replica pool (Section 6 extension); the sequencer node is
        # the objects' home and keeps every copy.
        self.pool: Optional[ReplicaPool] = None
        if capacity is not None and node_id != self.sequencer_id:
            if new_op is None:
                raise ValueError("a replica pool needs the new_op factory")
            self.pool = ReplicaPool(capacity, spec.name, self._request_eject)
        # bounded replica cache (partial replication); built on every node
        # — enforcement no-ops while this node is the current sequencer,
        # so the cache follows the node through failover promotions.
        self.cache: Optional[ReplicaCache] = None
        if cache is not None:
            if new_op is None:
                raise ValueError("a replica cache needs the new_op factory")
            self.cache = ReplicaCache(cache, spec.name, self, S, P,
                                      overlay=cache_overlay)
        network.attach(node_id, self._on_message)

    @property
    def sequencer_id(self) -> int:
        """The current sequencer node (dynamic under failover)."""
        return self.cluster.sequencer_id

    def submit(self, op: Operation) -> None:
        """Application process issues an operation (enters the local queue)."""
        op.issue_time = self.scheduler.now
        self.metrics.register_op(op.op_id, op.node, op.kind, op.obj,
                                 op.issue_time)
        if self.recovery is not None and self.recovery.submission_lost(op):
            # the node is amnesia-crashed: the application process is dead
            # with it, so the operation is lost (counted, never completed).
            return
        if self.observer is not None:
            self.observer.on_submit(op)
        if op.kind in (ACQUIRE, RELEASE):
            self.lock_client.on_request(op)
            return
        self.ports[op.obj].enqueue_request(op)

    def after_local_op(self, op: Operation) -> None:
        """Pool / cache bookkeeping after an operation completes here."""
        if self.cache is not None:
            self.cache.after_op(op)
        if self.pool is None:
            return
        if op.kind in (READ, WRITE):
            self.pool.touch(op.obj)
        self.pool.enforce(
            {obj: port.process.state for obj, port in self.ports.items()}
        )

    def _request_eject(self, obj: int) -> None:
        op = self.new_op(EJECT, self.node_id, obj)
        self.submit(op)

    def request_cache_eject(self, obj: int, trigger_id: int) -> None:
        """Issue a cache eviction's EJECT, charged to its trigger.

        Unlike :meth:`_request_eject` (the legacy replica pool, whose
        ejects are application-visible operations), a cache eject is
        internal bookkeeping: it is never registered or counted, and all
        its traffic is redirected onto the ``cache_cost`` of the data
        operation whose completion forced the eviction.
        """
        op = self.new_op(EJECT, self.node_id, obj)
        op.issue_time = self.scheduler.now
        self.metrics.redirect_op(op.op_id, trigger_id)
        self.ports[obj].enqueue_request(op)

    def _on_message(self, msg: Message) -> None:
        if msg.token.type in LOCK_MESSAGE_TYPES:
            if msg.token.type is MsgType.LK_GNT:
                self.lock_client.on_message(msg)
            else:
                self.lock_manager.on_message(msg)
            return
        self.ports[msg.token.object_name].deliver(msg)

    def process_for(self, obj: int) -> ProtocolProcess:
        """The protocol process controlling this node's copy of ``obj``."""
        return self.ports[obj].process
