"""Crash recovery: replica resynchronization and sequencer failover.

The paper's protocols assume nodes never lose state — a crash in the
PR-2 fault model (:mod:`repro.sim.faults`) only silences a node's network
interface, and the reliable transport carries the protocols through the
outage unchanged.  This module adds the recovery subsystem for the harder
failure modes:

* **amnesia crashes** (``CrashWindow(semantics="amnesia")``) wipe the
  node's volatile replica state.  The node's in-flight and queued
  operations are lost (its application process dies with it), and at
  rejoin the node is **quarantined** — its local queues stay closed while
  it resynchronizes against the sequencer's durable ordered write log —
  before it re-enters the protocol;
* **sequencer failover** (``DSMSystem(failover=True)``): when the current
  sequencer crashes, the live node with the lowest index is elected the
  new sequencer under a bumped *epoch* number; the failed sequencer, if it
  ever returns, rejoins as an ordinary client (no failback).

Both are driven through a single primitive, the **epoch reset** (view
change), which restores the system to a canonical configuration:

1. the cluster epoch is bumped and the transport voids all in-flight
   frames (:meth:`~repro.sim.reliable.ReliableNetwork.advance_epoch`);
   frames already on the wire carry the old epoch and are dropped on
   receipt, so no stale traffic can leak into the new view;
2. completed fire-and-forget writes whose (voided) propagation never
   reached the serialization point are absorbed into the durable
   :class:`WriteLog` — a completed operation's effect is never lost;
3. every node's protocol processes are rebuilt fresh for its *current*
   role, and the authoritative value from the write log is installed
   into every fresh copy whose initial state serves reads (update
   protocols start clients readable; sequencers are always readable);
4. each live node's dispatched-but-incomplete operations are re-driven
   through its local queue ahead of the queued ones, preserving program
   order, so every surviving operation executes **exactly once** end to
   end even though the transport forgot its history.

Costs are charged through :meth:`Metrics.record_recovery_cost` — epoch
announcements (one bare token per other node), elections (one token per
live participant), standby snapshots (whole-copy transfer, ``S + 1`` per
object) and rejoin resynchronization (a one-token version probe per
object plus, for copies installed warm, the cheaper of an ordered-log
catch-up at ``P + 1`` per missed write and a whole-copy transfer at
``S + 1``).  A rejoining node that is itself the sequencer replays its
own stable log locally, which costs no communication.  Recovery traffic
serves the system rather than one operation, so it is amortized as the
separate ``recovery`` share of
:meth:`~repro.sim.metrics.Metrics.average_cost_breakdown`.

Pay-for-what-you-use: :class:`DSMSystem` builds a :class:`RecoveryManager`
only when the fault plan contains amnesia windows or failover is enabled,
so durable-only fault runs stay bit-identical to the PR-2 simulator.

**Bounded replica caches** (:mod:`repro.sim.cache`): an evicted copy is a
capacity decision, not a failure — recovery must not resurrect it.  Every
rebuild/rejoin path consults :meth:`ReplicaCache.is_evicted` and leaves
evicted copies non-resident (``INVALID``), and :meth:`_price_resync`
skips them entirely (no version probe, no transfer): a bounded rejoiner
resynchronizes only its resident set, which is exactly where partial
replication beats full replication under churn.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set

from ..machines.message import ParamPresence
from ..protocols.base import Operation, ProtocolSpec
from .engine import EventScheduler
from .faults import FaultPlan
from .metrics import Metrics
from .reliable import ReliableNetwork

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import ClusterView, SimNode

__all__ = ["WriteLog", "RecoveryManager"]


class WriteLog:
    """The sequencer's durable ordered write log (one per system).

    Records, per object, the sequence of *distinct* written values in the
    order they first became visible anywhere in the system.  Written
    values are unique per write operation (the simulator writes the
    ``op_id``), so "first install" identifies the write itself: later
    installs of the same value at other replicas are propagation, not new
    writes, and are ignored.  Under the per-object serialization every
    protocol provides, first-install order *is* the serialization order.

    The log is the recovery subsystem's ground truth: :meth:`current`
    yields the authoritative value installed into rebuilt copies at an
    epoch reset, and :meth:`version` prices ordered-log catch-up at
    rejoin.  Conceptually it lives on the sequencer's stable storage
    (ISSUE: the sequencer's ordered log survives even amnesia crashes);
    the simulator keeps one global instance fed by the observer hooks.
    """

    def __init__(self) -> None:
        self._events: Dict[int, List[object]] = {}
        self._seen: Dict[int, Set[object]] = {}

    def on_install(self, node: int, obj: int, value: object,
                   time: float) -> None:
        """Observer hook: ``node`` installed ``value`` into its copy."""
        self.absorb(obj, value)

    def absorb(self, obj: int, value: object) -> None:
        """Append ``value`` to ``obj``'s log unless already recorded.

        Also the absorption path for completed fire-and-forget writes
        whose in-flight propagation an epoch reset voided: the write is
        serialized at the reset instead (sound, because per-channel FIFO
        guarantees no read of an older value could have completed after
        the write in program order).
        """
        seen = self._seen.setdefault(obj, set())
        if value in seen:
            return
        seen.add(value)
        self._events.setdefault(obj, []).append(value)

    def current(self, obj: int) -> object:
        """The authoritative (latest serialized) value of ``obj``."""
        events = self._events.get(obj)
        return events[-1] if events else 0

    def version(self, obj: int) -> int:
        """Number of distinct writes serialized for ``obj``."""
        return len(self._events.get(obj, ()))


class RecoveryManager:
    """Drives amnesia-crash recovery, rejoin and sequencer failover.

    Built by :class:`~repro.sim.system.DSMSystem` when the fault plan has
    amnesia windows or failover is enabled; schedules its crash/rejoin
    events at construction time (the scheduler runs init-scheduled events
    before runtime-scheduled ones at the same instant, so recovery
    actions are deterministic).
    """

    def __init__(
        self,
        nodes: Dict[int, "SimNode"],
        cluster: "ClusterView",
        scheduler: EventScheduler,
        network: ReliableNetwork,
        metrics: Metrics,
        spec: ProtocolSpec,
        plan: FaultPlan,
        log: WriteLog,
        hit_states: FrozenSet[str],
        S: float,
        P: float,
        latency: float,
        failover: bool,
    ) -> None:
        self.nodes = nodes
        self.cluster = cluster
        self.scheduler = scheduler
        self.network = network
        self.metrics = metrics
        self.spec = spec
        self.plan = plan
        self.log = log
        self.hit_states = hit_states
        self.S = S
        self.P = P
        self.latency = latency
        self.failover = failover
        #: nodes currently quarantined (rejoining, local queues closed)
        self._quarantined: Set[int] = set()
        #: the subset quarantined by the failure detector (partitioned);
        #: their replicas are kept stale for degraded serving and the
        #: detector — not a crash edge — drives their rejoin
        self._partitioned: Set[int] = set()
        #: per-object write-log versions snapshotted at partition
        #: quarantine, so rejoin catch-up is priced on writes actually
        #: missed rather than the whole history
        self._partition_base: Dict[int, Dict[int, int]] = {}
        #: quarantine start times (partition_time accounting)
        self._partition_started: Dict[int, float] = {}
        #: ex-sequencers awaiting rejoin as clients (no failback)
        self._demoted: Set[int] = set()
        for w in plan.crashes:
            self.scheduler.schedule_at(w.start, (lambda w=w: self._on_crash(w)))
            if math.isfinite(w.end):
                self.scheduler.schedule_at(
                    w.end, (lambda w=w: self._on_recover(w))
                )

    # ------------------------------------------------------------------
    # crash edges
    # ------------------------------------------------------------------

    def submission_lost(self, op: Operation) -> bool:
        """Whether a submission at ``op.node`` dies with an amnesia crash.

        During a durable outage the node's application keeps running
        (only its network interface is dead), so submissions queue as
        before; during an amnesia outage the whole node is dead and the
        operation is lost (counted in ``RecoveryStats.ops_lost``).
        """
        now = self.scheduler.now
        for w in self.plan.crashes:
            if (w.node == op.node and w.semantics == "amnesia"
                    and w.covers(now)):
                self.metrics.recovery.ops_lost += 1
                return True
        return False

    def _on_crash(self, w) -> None:
        if w.node == self.cluster.sequencer_id and self.failover:
            self._failover(w)
        elif w.semantics == "amnesia":
            # the node's volatile state (and application) is gone: lose
            # its pending operations and change the view so in-flight
            # traffic involving the dead node cannot confuse the rebuilt
            # protocol processes.
            self._lose_ops(self.nodes[w.node])
            self._epoch_reset()
        # durable crash without failover: the PR-2 behavior — the
        # transport retries through the outage; nothing to do here.

    def _failover(self, w) -> None:
        old = self.cluster.sequencer_id
        now = self.scheduler.now
        live = [
            n for n in self.nodes
            if n != old and not self.plan.is_down(n, now)
            and n not in self._quarantined
        ]
        if not live:  # pragma: no cover - degenerate: nobody to elect
            return
        new = min(live)  # deterministic standby election: lowest live id
        self.metrics.recovery.failovers += 1
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event(
                "failover", src=old, dst=new,
                detail="sequencer %d -> %d (%d live)" % (old, new, len(live)),
            )
        self._demoted.add(old)
        # the sequencer role dies with the node: its pending operations
        # are lost regardless of crash semantics (it returns as a client).
        self._lose_ops(self.nodes[old])
        self.cluster.sequencer_id = new
        # election round: one token per live participant, plus the new
        # sequencer fetching the standby snapshot (whole copy per object).
        num_objects = len(self.nodes[new].ports)
        self.metrics.record_recovery_cost(
            len(live) + num_objects * (self.S + 1.0), kind="election"
        )
        self._epoch_reset()

    def _lose_ops(self, node: "SimNode") -> None:
        lost = 0
        for port in node.ports.values():
            lost += len(port.inflight) + len(port.local_queue)
            port.inflight.clear()
            port.local_queue.clear()
        self.metrics.recovery.ops_lost += lost

    # ------------------------------------------------------------------
    # partition quarantine (driven by the failure detector)
    # ------------------------------------------------------------------

    def is_quarantined(self, node_id: int) -> bool:
        """Whether ``node_id`` is quarantined (any cause)."""
        return node_id in self._quarantined

    def is_partition_quarantined(self, node_id: int) -> bool:
        """Whether ``node_id`` is quarantined by the failure detector."""
        return node_id in self._partitioned

    def stalled_ops(self) -> int:
        """Local operations gated at currently quarantined nodes.

        These are stalled, not lost: the node's application issued them
        but the partition (or an unfinished rejoin) keeps them queued.
        ``run_workload`` counts them as legal incompleteness.
        """
        total = 0
        for node_id in self._quarantined:
            for port in self.nodes[node_id].ports.values():
                total += len(port.local_queue) + len(port.inflight)
        return total

    def quarantine_partitioned(self, node_id: int, policy: str) -> None:
        """Evict an unreachable node from the view (detector suspicion).

        The node's dispatched operations are moved back to its queue head
        in program order — stalled, not killed (the node is alive, just
        unreachable) — its local gate closes, the transport starts
        absorbing traffic addressed to it, and an epoch reset
        re-canonicalizes ownership among the reachable nodes so nothing
        ever awaits the evicted node.  Its replicas are deliberately
        *not* rebuilt: under ``policy="serve_local_reads"`` queue-head
        reads are answered from the stale copies, with monitor-visible
        staleness accounting.
        """
        if node_id in self._quarantined:
            return
        node = self.nodes[node_id]
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event("quarantine", src=node_id,
                                detail="node %d partitioned (policy=%s)"
                                % (node_id, policy))
        self._quarantined.add(node_id)
        self._partitioned.add(node_id)
        self.cluster.quarantined.add(node_id)
        self._partition_started[node_id] = self.scheduler.now
        self._partition_base[node_id] = {
            obj: self.log.version(obj) for obj in node.ports
        }
        degraded = policy == "serve_local_reads"
        for port in node.ports.values():
            inflight = list(port.inflight.values())
            port.inflight.clear()
            for op in reversed(inflight):
                port.local_queue.appendleft(op)
            port.local_enabled = False
            port.degraded_reads = degraded
        self._epoch_reset()
        if degraded:
            for port in node.ports.values():
                port.pump()

    def rejoin_partitioned(self, node_id: int) -> None:
        """Drive a healed partition-quarantined node through resync rejoin.

        Called by the failure detector when probes reach the node again.
        The stale replicas are discarded and the node walks the standard
        quarantine-rejoin path (:meth:`_finish_rejoin`), with catch-up
        priced on the writes serialized since its quarantine snapshot.
        """
        if node_id not in self._partitioned:
            return
        self._partitioned.discard(node_id)
        node = self.nodes[node_id]
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event("rejoin", src=node_id,
                                detail="node %d partition healed" % node_id)
        stats = self.metrics.partition
        stats.rejoins += 1
        started = self._partition_started.pop(node_id, None)
        if started is not None:
            stats.partition_time += self.scheduler.now - started
        for obj, port in node.ports.items():
            port.degraded_reads = False
            port.local_enabled = False
            self._fresh_process(node, obj, port)
        delay = 2.0 * self.latency  # probe the log, fetch the catch-up
        self.metrics.recovery.quarantine_time += delay
        self.scheduler.schedule(
            delay, (lambda: self._finish_rejoin(node))
        )

    # ------------------------------------------------------------------
    # rejoin
    # ------------------------------------------------------------------

    def _on_recover(self, w) -> None:
        node_id = w.node
        demoted = node_id in self._demoted
        if w.semantics != "amnesia" and not demoted:
            return  # durable rejoin: state survived, retries catch it up
        self._demoted.discard(node_id)
        node = self.nodes[node_id]
        if node_id in self._partitioned:
            # the node came back from the crash cold (amnesia wiped its
            # replicas) but is still partition-quarantined: rebuild its
            # ports fresh, drop the catch-up baseline (it now needs a
            # full resync) and leave the rejoin to the failure detector.
            self._partition_base.pop(node_id, None)
            for obj, port in node.ports.items():
                port.degraded_reads = False  # the stale copy is gone
                port.local_enabled = False
                self._fresh_process(node, obj, port)
            return
        # quarantine: the node is back on the network but must not serve
        # local operations until resynchronized.  Its ports are rebuilt
        # immediately for the node's *current* role, so straggler frames
        # retried during the outage meet role-correct fresh processes.
        # Copies whose fresh state serves reads (the sequencer's always
        # does) get the authoritative value right away: straggler frames
        # arriving before the rejoin completes must never be answered
        # from the wiped initial value.
        self._quarantined.add(node_id)
        for obj, port in node.ports.items():
            port.local_enabled = False
            process = self._fresh_process(node, obj, port)
            if process.state in self.hit_states:
                process.value = self.log.current(obj)
        delay = 2.0 * self.latency  # probe the log, fetch the snapshot
        self.metrics.recovery.quarantine_time += delay
        self.scheduler.schedule(
            delay, (lambda: self._finish_rejoin(node))
        )

    def _finish_rejoin(self, node: "SimNode") -> None:
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.system_event("rejoin_complete", src=node.node_id,
                                detail="node %d back in view" % node.node_id)
        self._price_resync(node)
        self._quarantined.discard(node.node_id)
        self.cluster.quarantined.discard(node.node_id)
        warm_state = self._warm_state()
        is_client = node.node_id != self.cluster.sequencer_id
        self._epoch_reset(pump=False)
        if is_client and warm_state is not None:
            # warm rejoin: install the fetched snapshot readable.  Sound
            # only for protocols that declare it (writes reach every node
            # unconditionally — see ProtocolProcess.WARM_REJOIN_STATE).
            # Copies the node's bounded cache evicted stay non-resident:
            # eviction is a capacity decision, not damage to repair.
            for obj, port in node.ports.items():
                if node.cache is not None and node.cache.is_evicted(obj):
                    continue
                proc = port.process
                if proc.state not in self.hit_states:
                    proc.state = warm_state
                    proc.value = self.log.current(obj)
        self._pump_all()

    def _price_resync(self, node: "SimNode") -> None:
        """Charge the rejoiner's resynchronization transfers.

        The rejoining sequencer replays its own stable log — free.  A
        client probes the sequencer's log head per object (one token) and,
        for every copy it installs readable (warm rejoin, or a protocol
        whose fresh client state already serves reads), transfers the
        cheaper of an ordered-log catch-up (``P + 1`` per missed write —
        the whole history, since amnesia wiped the replica) and a whole
        copy (``S + 1``).
        """
        base = self._partition_base.pop(node.node_id, None)
        if node.node_id == self.cluster.sequencer_id:
            return
        warm_state = self._warm_state()
        cost = 0.0
        stats = self.metrics.recovery
        for obj, port in node.ports.items():
            if node.cache is not None and node.cache.is_evicted(obj):
                # a bounded rejoiner resynchronizes only its resident
                # set: evicted copies are neither probed nor transferred.
                continue
            cost += 1.0  # version probe: a bare token to the sequencer
            warm = (warm_state is not None
                    or port.process.state in self.hit_states)
            if warm:
                missed = self.log.version(obj)
                if base is not None:
                    # partition rejoin: state survived, so catch-up only
                    # covers writes serialized since the quarantine.
                    missed = max(0, missed - base.get(obj, 0))
                cost += min(missed * (self.P + 1.0), self.S + 1.0)
                stats.resync_objects += 1
        stats.resync_cost += cost
        self.metrics.record_recovery_cost(cost, kind="resync")

    def _warm_state(self) -> Optional[str]:
        """The protocol's warm-rejoin client state, if it declares one.

        ``client_factory`` may be a bare class or a closure over one, so
        the attribute is looked up defensively.
        """
        return getattr(self.spec.client_factory, "WARM_REJOIN_STATE", None)

    # ------------------------------------------------------------------
    # epoch reset (view change)
    # ------------------------------------------------------------------

    def _epoch_reset(self, pump: bool = True) -> None:
        """Restore the system to a canonical configuration (new view)."""
        metrics = self.metrics
        metrics.recovery.epoch_resets += 1
        self.cluster.epoch += 1
        tracer = metrics.tracer
        if tracer is not None:
            tracer.system_event("epoch_reset",
                                detail="epoch %d" % self.cluster.epoch)
        for frame in self.network.advance_epoch():
            self._absorb_voided(frame)
        for node in self.nodes.values():
            # partition-quarantined nodes keep their (stale) replicas for
            # degraded serving; their gate is closed and their dispatched
            # ops were already re-queued at quarantine, so skipping the
            # rebuild loses nothing.
            if node.node_id in self._partitioned:
                continue
            self._rebuild_node(node)
        # epoch announcement: one bare token to every other node.
        metrics.record_recovery_cost(float(len(self.nodes) - 1),
                                     kind="epoch_announce")
        if pump:
            self._pump_all()

    def _absorb_voided(self, frame) -> None:
        """Keep a voided completed write durable (docstring: step 2)."""
        msg = frame.msg
        if (msg is None or msg.op_id is None
                or msg.token.parameter_presence is not ParamPresence.WRITE
                or not isinstance(msg.payload, dict)
                or "value" not in msg.payload):
            return
        try:
            record = self.metrics.op(msg.op_id)
        except KeyError:  # pragma: no cover - internal ops
            return
        if record.completed:
            self.log.absorb(msg.token.object_name, msg.payload["value"])

    def _rebuild_node(self, node: "SimNode") -> None:
        stats = self.metrics.recovery
        for obj, port in node.ports.items():
            # re-drive dispatched-but-incomplete operations: back into the
            # local queue *ahead* of the queued ones (program order).
            inflight = list(port.inflight.values())
            port.inflight.clear()
            for op in reversed(inflight):
                port.local_queue.appendleft(op)
            stats.ops_redriven += len(inflight)
            process = self._fresh_process(node, obj, port)
            if process.state in self.hit_states:
                # a fresh copy that serves reads must hold the
                # authoritative value, not the initial one.
                process.value = self.log.current(obj)
            if node.node_id not in self._quarantined:
                port.local_enabled = True

    def _fresh_process(self, node: "SimNode", obj: int, port) -> object:
        """Rebuild ``port``'s protocol process for the node's current role.

        Copies the node's bounded replica cache has evicted come back
        non-resident (``INVALID``) no matter what the protocol's fresh
        state would be — an epoch reset repairs failures, it does not
        grant capacity (``is_evicted`` is ``False`` for sequencers and
        quorum overlays, so load-bearing copies are never demoted).
        """
        process = self.spec.make_process(port)
        port.process = process
        if node.cache is not None and node.cache.is_evicted(obj):
            process.state = "INVALID"
        return process

    def _pump_all(self) -> None:
        for node in self.nodes.values():
            if node.node_id in self._quarantined:
                continue
            for port in node.ports.values():
                port.pump()
