"""Mealy machines with output, as used to specify coherence protocols (Section 3).

The paper models every protocol process as a finite automaton with output,
``MM = (Q, Sigma, Omega, delta, lambda, q0)``:

* ``Q`` — the states of a shared-object copy (e.g. ``{VALID, INVALID}`` for
  the Write-Through client, ``{VALID}`` for its sequencer);
* ``Sigma`` — the input alphabet of message tokens; transitions are keyed by
  message *type* (and, where the paper's tables distinguish them, by whether
  the initiator is the local node);
* ``Omega`` — the output alphabet of output routines
  (:class:`repro.machines.routines.Routine`);
* ``delta : Q x Sigma -> Q`` — the transition function;
* ``lambda : Q x Sigma -> Omega`` — the output function;
* ``q0`` — the starting state (INVALID for clients, VALID for the
  Write-Through sequencer).

Inputs not present in the table are *errors* in the paper's terminology
("errors are not analyzed by the given protocol"); :meth:`MealyMachine.step`
raises :class:`UndefinedTransition` for them so tests catch specification
gaps immediately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Tuple

from .message import MessageToken, MsgType
from .routines import Routine, RoutineContext

__all__ = [
    "UndefinedTransition",
    "TransitionRule",
    "MealyMachine",
    "MachineInstance",
]

State = Hashable


class UndefinedTransition(KeyError):
    """Raised when ``delta`` is undefined for a ``(state, input)`` pair.

    The paper marks these table cells as *error*; a correct execution of the
    protocol never produces them.
    """


@dataclass(frozen=True)
class TransitionRule:
    """One cell of a Mealy transition table: next state plus output routine."""

    next_state: State
    output: Optional[Routine] = None
    #: human-readable note (mirrors the paper's table annotations)
    note: str = ""


class MealyMachine:
    """An immutable Mealy-machine specification.

    Transition keys are ``(state, msg_type, local)`` where ``local`` tells
    whether the consumed token's ``operation_initiator`` is the machine's own
    node — the paper's client tables treat a locally initiated request
    differently from a remote message of the same type.  A rule registered
    with ``local=None`` applies to both.
    """

    def __init__(
        self,
        name: str,
        states: Iterable[State],
        start_state: State,
        table: Mapping[Tuple[State, MsgType, Optional[bool]], TransitionRule],
    ):
        self.name = name
        self.states: FrozenSet[State] = frozenset(states)
        if start_state not in self.states:
            raise ValueError(f"start state {start_state!r} not in Q")
        self.start_state = start_state
        self._table: Dict[Tuple[State, MsgType, Optional[bool]], TransitionRule] = dict(table)
        for (state, _mt, _loc), rule in self._table.items():
            if state not in self.states:
                raise ValueError(f"table references unknown state {state!r}")
            if rule.next_state not in self.states:
                raise ValueError(
                    f"table transitions to unknown state {rule.next_state!r}"
                )

    @property
    def input_alphabet(self) -> FrozenSet[MsgType]:
        """The message types appearing in the transition table (``Sigma``)."""
        return frozenset(mt for (_s, mt, _loc) in self._table)

    def rule(self, state: State, msg_type: MsgType, local: bool) -> TransitionRule:
        """Look up ``(delta, lambda)`` for an input, preferring the exact
        ``local`` match and falling back to the ``local=None`` wildcard.

        Raises:
            UndefinedTransition: if the cell is an *error* cell.
        """
        for loc in (local, None):
            try:
                return self._table[(state, msg_type, loc)]
            except KeyError:
                continue
        raise UndefinedTransition(
            f"{self.name}: no transition from {state!r} on {msg_type.value} "
            f"(local={local})"
        )

    def defined_inputs(self, state: State) -> FrozenSet[Tuple[MsgType, Optional[bool]]]:
        """All inputs with a defined transition out of ``state``."""
        return frozenset(
            (mt, loc) for (s, mt, loc) in self._table if s == state
        )

    def instantiate(self) -> "MachineInstance":
        """Create a runnable instance starting in ``q0``."""
        return MachineInstance(self)


class MachineInstance:
    """A Mealy machine in execution: current state plus step semantics."""

    def __init__(self, machine: MealyMachine):
        self.machine = machine
        self.state = machine.start_state

    def step(self, token: MessageToken, ctx: RoutineContext, *, self_node: int) -> TransitionRule:
        """Consume one token: apply ``delta`` and execute ``lambda``'s routine.

        Args:
            token: the input message token.
            ctx: the routine execution environment.
            self_node: this machine's node index (determines ``local``).

        Returns:
            The applied rule (useful for tracing).

        Raises:
            UndefinedTransition: for error cells.
        """
        local = token.operation_initiator == self_node
        rule = self.machine.rule(self.state, token.type, local)
        self.state = rule.next_state
        if rule.output is not None:
            rule.output.execute(ctx)
        return rule

    def reset(self) -> None:
        """Return to the starting state ``q0``."""
        self.state = self.machine.start_state
