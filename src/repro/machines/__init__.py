"""Formal model of data-replication coherence protocols (paper Section 3).

Exposes the message-token five-tuple, the seven primitive output routines,
the generic Mealy machine with output, and the literal Write-Through
transition tables (Tables 1-3).
"""

from .mealy import MachineInstance, MealyMachine, TransitionRule, UndefinedTransition
from .message import (
    Message,
    MessageToken,
    MsgType,
    ParamPresence,
    QueueTag,
    token_cost,
)
from .routines import (
    Change,
    Destination,
    Disable,
    Enable,
    ExceptNodes,
    Pop,
    Push,
    RecordingContext,
    Return,
    Routine,
    RoutineContext,
    Seq,
    ToNode,
)

__all__ = [
    "MachineInstance",
    "MealyMachine",
    "TransitionRule",
    "UndefinedTransition",
    "Message",
    "MessageToken",
    "MsgType",
    "ParamPresence",
    "QueueTag",
    "token_cost",
    "Change",
    "Destination",
    "Disable",
    "Enable",
    "ExceptNodes",
    "Pop",
    "Push",
    "RecordingContext",
    "Return",
    "Routine",
    "RoutineContext",
    "Seq",
    "ToNode",
]
