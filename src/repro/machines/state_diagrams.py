"""Appendix A state-transition diagrams as structured, testable data.

The paper's appendix gives, for every protocol, the state-transition
diagram of a client's copy and of the sequencer's copy ("only the
operations that change the states of the copies are presented").  This
module transcribes those diagrams — as reconstructed in DESIGN.md — into
:class:`StateDiagram` objects: states plus edges labeled with the
triggering operation.

Edge labels:

========= ==================================================================
``r``     read by this copy's node
``w``     write by this copy's node
``or``    read by another node (as it affects this copy: recall/downgrade)
``ow``    write by another node (invalidation / ownership transfer)
``ej``    eject by this copy's node (Section 6 extension)
========= ==================================================================

The test suite *executes* every edge against the operational protocols:
for each ``(state, label, next_state)`` it builds a simulator, drives the
copy into ``state``, applies the trigger and asserts the copy lands in
``next_state`` — the appendix figures become executable specifications.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

__all__ = ["Edge", "StateDiagram", "CLIENT_DIAGRAMS", "SEQUENCER_STATES"]


@dataclass(frozen=True)
class Edge:
    """One labeled transition of a copy's state diagram."""

    src: str
    label: str
    dst: str


@dataclass(frozen=True)
class StateDiagram:
    """A copy's state-transition diagram (one appendix figure)."""

    protocol: str
    role: str
    states: Tuple[str, ...]
    start: str
    edges: Tuple[Edge, ...]

    def successors(self, state: str) -> Dict[str, str]:
        """Map trigger label to next state for one state."""
        return {e.label: e.dst for e in self.edges if e.src == state}

    def reachable(self) -> FrozenSet[str]:
        """States reachable from the start state."""
        seen = {self.start}
        frontier = [self.start]
        while frontier:
            s = frontier.pop()
            for e in self.edges:
                if e.src == s and e.dst not in seen:
                    seen.add(e.dst)
                    frontier.append(e.dst)
        return frozenset(seen)


def _d(protocol: str, states: List[str], start: str,
       edges: List[Tuple[str, str, str]]) -> StateDiagram:
    return StateDiagram(
        protocol, "client", tuple(states), start,
        tuple(Edge(s, l, t) for s, l, t in edges),
    )


#: Client-copy diagrams (appendix Figures 1, 7, 9-12), including the
#: self-loops the paper omits ("only the operations that change the
#: states ... are presented") so every (state, trigger) pair is covered.
CLIENT_DIAGRAMS: Dict[str, StateDiagram] = {
    # Figure 1: Write-Through
    "write_through": _d(
        "write_through", ["INVALID", "VALID"], "INVALID",
        [
            ("INVALID", "r", "VALID"),
            ("INVALID", "w", "INVALID"),   # write-through, no allocate
            ("INVALID", "ow", "INVALID"),
            ("INVALID", "ej", "INVALID"),
            ("VALID", "r", "VALID"),
            ("VALID", "w", "INVALID"),     # the distributed-WT signature
            ("VALID", "ow", "INVALID"),
            ("VALID", "ej", "INVALID"),
        ],
    ),
    # Figure 9: Write-Through-V
    "write_through_v": _d(
        "write_through_v", ["INVALID", "VALID"], "INVALID",
        [
            ("INVALID", "r", "VALID"),
            ("INVALID", "w", "VALID"),     # the writer keeps its copy
            ("INVALID", "ow", "INVALID"),
            ("INVALID", "ej", "INVALID"),
            ("VALID", "r", "VALID"),
            ("VALID", "w", "VALID"),
            ("VALID", "ow", "INVALID"),
            ("VALID", "ej", "INVALID"),
        ],
    ),
    # Figure 10: Write-Once
    "write_once": _d(
        "write_once", ["INVALID", "VALID", "RESERVED", "DIRTY"], "INVALID",
        [
            ("INVALID", "r", "VALID"),
            ("INVALID", "w", "DIRTY"),     # read-with-intent-to-modify
            ("INVALID", "ow", "INVALID"),
            ("VALID", "r", "VALID"),
            ("VALID", "w", "RESERVED"),    # first write: written through
            ("VALID", "ow", "INVALID"),
            ("VALID", "ej", "INVALID"),
            ("RESERVED", "r", "RESERVED"),
            ("RESERVED", "w", "DIRTY"),    # second write: local
            ("RESERVED", "or", "VALID"),   # another node read: downgrade
            ("RESERVED", "ow", "INVALID"),
            ("RESERVED", "ej", "INVALID"),
            ("DIRTY", "r", "DIRTY"),
            ("DIRTY", "w", "DIRTY"),
            ("DIRTY", "or", "VALID"),      # recall: supply, stay valid
            ("DIRTY", "ow", "INVALID"),
            ("DIRTY", "ej", "INVALID"),    # write back, then drop
        ],
    ),
    # Figure 7: Synapse
    "synapse": _d(
        "synapse", ["INVALID", "VALID", "DIRTY"], "INVALID",
        [
            ("INVALID", "r", "VALID"),
            ("INVALID", "w", "DIRTY"),
            ("INVALID", "ow", "INVALID"),
            ("VALID", "r", "VALID"),
            ("VALID", "w", "DIRTY"),       # hit treated as miss, with data
            ("VALID", "ow", "INVALID"),
            ("VALID", "ej", "INVALID"),
            ("DIRTY", "r", "DIRTY"),
            ("DIRTY", "w", "DIRTY"),
            ("DIRTY", "or", "INVALID"),    # recall: self-invalidate
            ("DIRTY", "ow", "INVALID"),
            ("DIRTY", "ej", "INVALID"),
        ],
    ),
    # Illinois: same shape as Synapse except the recall keeps the supplier
    "illinois": _d(
        "illinois", ["INVALID", "VALID", "DIRTY"], "INVALID",
        [
            ("INVALID", "r", "VALID"),
            ("INVALID", "w", "DIRTY"),
            ("INVALID", "ow", "INVALID"),
            ("VALID", "r", "VALID"),
            ("VALID", "w", "DIRTY"),       # data-less upgrade
            ("VALID", "ow", "INVALID"),
            ("VALID", "ej", "INVALID"),
            ("DIRTY", "r", "DIRTY"),
            ("DIRTY", "w", "DIRTY"),
            ("DIRTY", "or", "VALID"),      # the Illinois difference
            ("DIRTY", "ow", "INVALID"),
            ("DIRTY", "ej", "INVALID"),
        ],
    ),
    # Figure 12: Berkeley (owner states included: the role migrates)
    "berkeley": _d(
        "berkeley", ["INVALID", "VALID", "DIRTY", "SHARED-DIRTY"], "INVALID",
        [
            ("INVALID", "r", "VALID"),
            ("INVALID", "w", "DIRTY"),     # ownership transfer with data
            ("INVALID", "ow", "INVALID"),
            ("VALID", "r", "VALID"),
            ("VALID", "w", "DIRTY"),       # ownership transfer, no data
            ("VALID", "ow", "INVALID"),
            ("VALID", "ej", "INVALID"),
            ("DIRTY", "r", "DIRTY"),
            ("DIRTY", "w", "DIRTY"),
            ("DIRTY", "or", "SHARED-DIRTY"),
            ("DIRTY", "ow", "INVALID"),    # ownership taken away
            ("DIRTY", "ej", "DIRTY"),      # pinned: the backing store
            ("SHARED-DIRTY", "r", "SHARED-DIRTY"),
            ("SHARED-DIRTY", "w", "DIRTY"),
            ("SHARED-DIRTY", "or", "SHARED-DIRTY"),
            ("SHARED-DIRTY", "ow", "INVALID"),
            ("SHARED-DIRTY", "ej", "SHARED-DIRTY"),  # pinned
        ],
    ),
    # Figure 11: Dragon (single client state; INVALID only via ejects)
    "dragon": _d(
        "dragon", ["SHARED-CLEAN", "SHARED-DIRTY", "INVALID"],
        "SHARED-CLEAN",
        [
            ("SHARED-CLEAN", "r", "SHARED-CLEAN"),
            ("SHARED-CLEAN", "w", "SHARED-DIRTY"),
            ("SHARED-CLEAN", "ow", "SHARED-CLEAN"),  # update applies
            ("SHARED-CLEAN", "ej", "INVALID"),
            ("SHARED-DIRTY", "r", "SHARED-DIRTY"),
            ("SHARED-DIRTY", "w", "SHARED-DIRTY"),
            ("SHARED-DIRTY", "ow", "SHARED-CLEAN"),  # role moved on
            ("SHARED-DIRTY", "ej", "SHARED-DIRTY"),  # pinned
            ("INVALID", "r", "SHARED-CLEAN"),
            ("INVALID", "w", "SHARED-DIRTY"),
            ("INVALID", "ow", "INVALID"),
            ("INVALID", "ej", "INVALID"),
        ],
    ),
    # Firefly (single client state; INVALID only via ejects)
    "firefly": _d(
        "firefly", ["SHARED", "INVALID"], "SHARED",
        [
            ("SHARED", "r", "SHARED"),
            ("SHARED", "w", "SHARED"),
            ("SHARED", "ow", "SHARED"),
            ("SHARED", "ej", "INVALID"),
            ("INVALID", "r", "SHARED"),
            ("INVALID", "w", "SHARED"),
            ("INVALID", "ow", "INVALID"),
            ("INVALID", "ej", "INVALID"),
        ],
    ),
}

#: The sequencer copy's state set per protocol (appendix Figures 8 etc.).
SEQUENCER_STATES: Dict[str, Tuple[str, ...]] = {
    "write_through": ("VALID",),
    "write_through_v": ("VALID",),
    "write_once": ("VALID", "INVALID"),
    "synapse": ("VALID", "INVALID"),
    "illinois": ("VALID", "INVALID"),
    "berkeley": ("DIRTY", "SHARED-DIRTY"),
    "dragon": ("SHARED-DIRTY",),
    "firefly": ("VALID",),
}
