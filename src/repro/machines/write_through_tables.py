"""The literal Write-Through Mealy transition tables (paper Tables 1-3).

This module transcribes the paper's formal specification of the distributed
Write-Through protocol:

* **Table 1** — the client machine for a copy of the *j*-th shared object at
  client *i*: states ``{INVALID, VALID}`` with ``q0 = INVALID``;
* **Table 2** — the output routines, expressed with the seven primitive
  functions of :mod:`repro.machines.routines`;
* **Table 3** — the sequencer machine: the single state ``VALID``.

The operational protocol used by the simulator
(:mod:`repro.protocols.write_through`) is implemented independently; the test
suite checks that both produce identical message sequences for every trace of
Figures 2-4, which is the reproduction of Tables 1-4 and Figure 1.
"""

from __future__ import annotations

from .mealy import MealyMachine, TransitionRule
from .message import MsgType, ParamPresence
from .routines import (
    Change,
    Disable,
    Enable,
    ExceptNodes,
    Pop,
    Push,
    Return,
    Seq,
    ToNode,
)

__all__ = [
    "INVALID",
    "VALID",
    "client_machine",
    "sequencer_machine",
]

#: Copy state: the replica content may be stale; reads must fetch.
INVALID = "INVALID"
#: Copy state: the replica content is current; reads execute locally.
VALID = "VALID"


def client_machine() -> MealyMachine:
    """Build the Write-Through client machine of Table 1.

    Transitions (``local`` marks tokens whose initiator is this node):

    ========  ========  =====  ==========  ==========================================
    state     input     local  next state  output routine
    ========  ========  =====  ==========  ==========================================
    VALID     R-REQ     yes    VALID       ``pop(parameters_r); return``      (tr1)
    INVALID   R-REQ     yes    INVALID     ``pop(parameters_r); disable;``
                                           ``push(sequencer, R-PER)``         (tr2 start)
    VALID     W-REQ     yes    INVALID     ``pop(parameters_w);``
                                           ``push(sequencer, W-PER, w)``      (tr3)
    INVALID   W-REQ     yes    INVALID     same as above                      (tr4)
    INVALID   R-GNT     yes    VALID       ``pop(user_information); return;``
                                           ``enable``                         (tr2 end)
    VALID     W-INV     no     INVALID     (none)
    INVALID   W-INV     no     INVALID     (none)
    ========  ========  =====  ==========  ==========================================

    The write transition ends in ``INVALID`` — the distributed Write-Through
    client forwards the write parameters to the sequencer without updating
    its own copy, which is why in the paper's steady-state analysis a read
    following a write produces trace ``tr2`` (see Section 4.3).
    """
    table = {
        (VALID, MsgType.R_REQ, True): TransitionRule(
            VALID,
            Seq(Pop("parameters_r"), Return()),
            note="tr1: local read hit",
        ),
        (INVALID, MsgType.R_REQ, True): TransitionRule(
            INVALID,
            Seq(
                Pop("parameters_r"),
                Disable(),
                Push(ToNode("sequencer"), MsgType.R_PER),
            ),
            note="tr2: read miss, ask the sequencer",
        ),
        (VALID, MsgType.W_REQ, True): TransitionRule(
            INVALID,
            Seq(
                Pop("parameters_w"),
                Push(ToNode("sequencer"), MsgType.W_PER, ParamPresence.WRITE),
            ),
            note="tr3: write-through, give up the local copy",
        ),
        (INVALID, MsgType.W_REQ, True): TransitionRule(
            INVALID,
            Seq(
                Pop("parameters_w"),
                Push(ToNode("sequencer"), MsgType.W_PER, ParamPresence.WRITE),
            ),
            note="tr4: write-through from INVALID",
        ),
        (INVALID, MsgType.R_GNT, True): TransitionRule(
            VALID,
            Seq(Pop("user_information"), Return(), Enable()),
            note="tr2: grant received, local queue re-enabled",
        ),
        (VALID, MsgType.W_INV, None): TransitionRule(
            INVALID, None, note="remote write invalidates the copy"
        ),
        (INVALID, MsgType.W_INV, None): TransitionRule(
            INVALID, None, note="invalidation of an already invalid copy"
        ),
    }
    return MealyMachine("write_through.client", [VALID, INVALID], INVALID, table)


def sequencer_machine() -> MealyMachine:
    """Build the Write-Through sequencer machine of Table 3.

    The sequencer's copy has the single state ``VALID``.  Output routines
    (Table 2, numbered as in the paper):

    * **101** (own read, tr5): ``pop(parameters_r); return``;
    * **102** (own write, tr6): ``pop(parameters_w); change;
      push(except(N+1), W-INV)`` — invalidate all ``N`` clients;
    * **103** (client read permission): ``push(k, R-GNT, ui)``;
    * **104** (client write permission): ``pop(parameters_w); change;
      push(except(k, N+1), W-INV)`` — invalidate the ``N - 1`` clients other
      than the writer (the writer already invalidated itself).
    """
    table = {
        (VALID, MsgType.R_REQ, True): TransitionRule(
            VALID,
            Seq(Pop("parameters_r"), Return()),
            note="routine 101 / trace tr5",
        ),
        (VALID, MsgType.W_REQ, True): TransitionRule(
            VALID,
            Seq(
                Pop("parameters_w"),
                Change(),
                Push(ExceptNodes(("self",)), MsgType.W_INV),
            ),
            note="routine 102 / trace tr6",
        ),
        (VALID, MsgType.R_PER, False): TransitionRule(
            VALID,
            Push(ToNode("initiator"), MsgType.R_GNT, ParamPresence.USER_INFO),
            note="routine 103 / trace tr2 response",
        ),
        (VALID, MsgType.W_PER, False): TransitionRule(
            VALID,
            Seq(
                Pop("parameters_w"),
                Change(),
                Push(ExceptNodes(("initiator", "self")), MsgType.W_INV),
            ),
            note="routine 104 / traces tr3 and tr4 response",
        ),
    }
    return MealyMachine("write_through.sequencer", [VALID], VALID, table)
