"""The seven primitive output-routine functions of the formal model (Section 3).

The paper describes every Mealy-machine output routine as a concatenation of
simple functions:

* ``pop(variable)`` — pop the additional parameters that accompanied the
  message token into a named variable (``user_information(j)``,
  ``parameters_r(j)`` or ``parameters_w(j)``);
* ``push(destination, message_token, additional_parameters)`` — send a token
  (plus optional parameters) to the given destination's queue;
* ``except(address_list)`` — a *destination* form: send to every node except
  those listed;
* ``change(parameters_w(j), user_information(j))`` — apply buffered write
  parameters to the local user information;
* ``return(parameters_r(j), user_information(j))`` — return data to the
  local application process;
* ``disable`` / ``enable`` — gate the client's local queue while a
  distributed operation awaits the sequencer's response.

The routines here are small command objects: executing one against a
:class:`RoutineContext` performs the side effect.  The simulator binds a
context to real node state and channels; the spec-level tests bind a
recording context to assert exact message sequences (Figures 2-4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from .message import MsgType, ParamPresence, QueueTag

__all__ = [
    "Destination",
    "ToNode",
    "ExceptNodes",
    "RoutineContext",
    "Routine",
    "Pop",
    "Push",
    "Change",
    "Return",
    "Disable",
    "Enable",
    "Seq",
    "RecordingContext",
]


@dataclass(frozen=True)
class ToNode:
    """Destination: a single node index (``push(k, ...)``)."""

    node: int


@dataclass(frozen=True)
class ExceptNodes:
    """Destination: every node except the listed ones (``except(...)``).

    The paper's ``push(except(N+1), ...)`` and ``push(except(k, N+1), ...)``
    broadcast forms; indices may be symbolic resolvers (callables over the
    context) so one table entry covers every initiator.
    """

    excluded: Tuple[Union[int, str], ...]


Destination = Union[ToNode, ExceptNodes]


class RoutineContext(abc.ABC):
    """The environment a routine executes in.

    Concrete contexts supply node identity, the current message, variable
    storage (``user_information``, ``parameters_r/w``), and the message
    fabric.  ``resolve(name)`` maps the symbolic indices used by transition
    tables (``"initiator"``, ``"self"``, ``"sequencer"``) to node numbers.
    """

    @abc.abstractmethod
    def resolve(self, name: Union[int, str]) -> int:
        """Resolve a symbolic node reference to a node index."""

    @abc.abstractmethod
    def pop_variable(self, variable: str) -> None:
        """Pop the current message's additional parameters into ``variable``."""

    @abc.abstractmethod
    def send(
        self,
        destination: Destination,
        msg_type: MsgType,
        presence: ParamPresence,
        *,
        initiator: Union[int, str] = "initiator",
        queue: QueueTag = QueueTag.DISTRIBUTED,
    ) -> None:
        """Send a token (with the named parameter presence) to ``destination``."""

    @abc.abstractmethod
    def change(self) -> None:
        """Apply ``parameters_w(j)`` to the local ``user_information(j)``."""

    @abc.abstractmethod
    def return_data(self) -> None:
        """Return data selected by ``parameters_r(j)`` to the application."""

    @abc.abstractmethod
    def disable_local_queue(self) -> None:
        """Suspend servicing of the local queue (awaiting a response)."""

    @abc.abstractmethod
    def enable_local_queue(self) -> None:
        """Resume servicing of the local queue."""


class Routine(abc.ABC):
    """A primitive output routine (command object)."""

    @abc.abstractmethod
    def execute(self, ctx: RoutineContext) -> None:
        """Perform the routine's effect against ``ctx``."""


@dataclass(frozen=True)
class Pop(Routine):
    """``pop(variable)`` — buffer the message's additional parameters."""

    variable: str

    def execute(self, ctx: RoutineContext) -> None:
        ctx.pop_variable(self.variable)


@dataclass(frozen=True)
class Push(Routine):
    """``push(destination, token, parameters)`` — emit a message."""

    destination: Destination
    msg_type: MsgType
    presence: ParamPresence = ParamPresence.NONE
    initiator: Union[int, str] = "initiator"
    queue: QueueTag = QueueTag.DISTRIBUTED

    def execute(self, ctx: RoutineContext) -> None:
        ctx.send(
            self.destination,
            self.msg_type,
            self.presence,
            initiator=self.initiator,
            queue=self.queue,
        )


@dataclass(frozen=True)
class Change(Routine):
    """``change(parameters_w(j), user_information(j))``."""

    def execute(self, ctx: RoutineContext) -> None:
        ctx.change()


@dataclass(frozen=True)
class Return(Routine):
    """``return(parameters_r(j), user_information(j))``."""

    def execute(self, ctx: RoutineContext) -> None:
        ctx.return_data()


@dataclass(frozen=True)
class Disable(Routine):
    """Disable the local queue (first action of a blocking distributed op)."""

    def execute(self, ctx: RoutineContext) -> None:
        ctx.disable_local_queue()


@dataclass(frozen=True)
class Enable(Routine):
    """Enable the local queue (response message arrived)."""

    def execute(self, ctx: RoutineContext) -> None:
        ctx.enable_local_queue()


@dataclass(frozen=True)
class Seq(Routine):
    """Concatenation of routines, executed left to right."""

    routines: Tuple[Routine, ...]

    def __init__(self, *routines: Routine):
        object.__setattr__(self, "routines", tuple(routines))

    def execute(self, ctx: RoutineContext) -> None:
        for r in self.routines:
            r.execute(ctx)


class RecordingContext(RoutineContext):
    """A context that records effects instead of performing them.

    Used by the formal-model unit tests to assert that a transition emits
    exactly the message sequence of Figures 2-4 / Tables 1-4.
    """

    def __init__(self, self_node: int, sequencer: int, initiator: int, all_nodes: Sequence[int]):
        self.self_node = self_node
        self.sequencer = sequencer
        self.initiator = initiator
        self.all_nodes = list(all_nodes)
        #: chronological effect log: tuples like ("send", dst, type, presence)
        self.log: List[Tuple] = []

    def resolve(self, name: Union[int, str]) -> int:
        if isinstance(name, int):
            return name
        return {
            "self": self.self_node,
            "sequencer": self.sequencer,
            "initiator": self.initiator,
        }[name]

    def pop_variable(self, variable: str) -> None:
        self.log.append(("pop", variable))

    def send(self, destination, msg_type, presence, *, initiator="initiator",
             queue=QueueTag.DISTRIBUTED) -> None:
        if isinstance(destination, ToNode):
            targets = [self.resolve(destination.node)]
        else:
            excluded = {self.resolve(x) for x in destination.excluded}
            targets = [n for n in self.all_nodes if n not in excluded]
        for dst in targets:
            self.log.append(("send", dst, msg_type, presence))

    def change(self) -> None:
        self.log.append(("change",))

    def return_data(self) -> None:
        self.log.append(("return",))

    def disable_local_queue(self) -> None:
        self.log.append(("disable",))

    def enable_local_queue(self) -> None:
        self.log.append(("enable",))

    def sends(self) -> List[Tuple]:
        """Only the send effects, in order."""
        return [e for e in self.log if e[0] == "send"]
