"""Write-Through-V client Mealy table, in the style of paper Tables 1-2.

The paper presents the formal Mealy specification only for Write-Through
and states that it "serves as a modeling paradigm for other coherence
protocols".  This module applies the paradigm to the second distributed
Write-Through variant: the client machine of the two-phase-write protocol
(DESIGN.md), expressed with the same seven primitive routines.

Transition table (``local`` marks tokens initiated by this node):

========  ========  =====  ==========  =====================================
state     input     local  next state  output routine
========  ========  =====  ==========  =====================================
VALID     R-REQ     yes    VALID       ``pop(parameters_r); return``
INVALID   R-REQ     yes    INVALID     ``pop(parameters_r); disable;``
                                       ``push(sequencer, R-PER)``
INVALID   R-GNT     yes    VALID       ``pop(user_information); return;``
                                       ``enable``
VALID     W-REQ     yes    VALID       ``pop(parameters_w); disable;``
                                       ``push(sequencer, W-PER)``
INVALID   W-REQ     yes    INVALID     same as above
VALID     W-GNT     yes    VALID       ``change; push(sequencer, UPD, w);``
                                       ``enable``
INVALID   W-GNT     yes    VALID       ``pop(user_information); change;``
                                       ``push(sequencer, UPD, w); enable``
any       W-INV     no     INVALID     (none)
========  ========  =====  ==========  =====================================

The WTV *sequencer* is intentionally not given a pure Mealy table: its
``W-GNT`` output depends on the validity directory (a protocol-process
variable in the paper's terminology), so it is specified operationally in
:mod:`repro.protocols.write_through_v` and covered by the signature tests.
"""

from __future__ import annotations

from .mealy import MealyMachine, TransitionRule
from .message import MsgType, ParamPresence
from .routines import Change, Disable, Enable, Pop, Push, Return, Seq, ToNode

__all__ = ["INVALID", "VALID", "client_machine"]

INVALID = "INVALID"
VALID = "VALID"


def client_machine() -> MealyMachine:
    """Build the Write-Through-V client machine (see the module table)."""
    ask_read = Seq(
        Pop("parameters_r"),
        Disable(),
        Push(ToNode("sequencer"), MsgType.R_PER),
    )
    ask_write = Seq(
        Pop("parameters_w"),
        Disable(),
        Push(ToNode("sequencer"), MsgType.W_PER),
    )
    finish_write = Seq(
        Change(),
        Push(ToNode("sequencer"), MsgType.UPD, ParamPresence.WRITE),
        Enable(),
    )
    finish_write_stale = Seq(
        Pop("user_information"),
        Change(),
        Push(ToNode("sequencer"), MsgType.UPD, ParamPresence.WRITE),
        Enable(),
    )
    table = {
        (VALID, MsgType.R_REQ, True): TransitionRule(
            VALID, Seq(Pop("parameters_r"), Return()),
            note="local read hit",
        ),
        (INVALID, MsgType.R_REQ, True): TransitionRule(
            INVALID, ask_read, note="read miss: blocking fetch",
        ),
        (INVALID, MsgType.R_GNT, True): TransitionRule(
            VALID, Seq(Pop("user_information"), Return(), Enable()),
            note="grant: install, reply, re-enable",
        ),
        (VALID, MsgType.W_REQ, True): TransitionRule(
            VALID, ask_write, note="two-phase write, phase 1",
        ),
        (INVALID, MsgType.W_REQ, True): TransitionRule(
            INVALID, ask_write, note="two-phase write from a stale copy",
        ),
        (VALID, MsgType.W_GNT, True): TransitionRule(
            VALID, finish_write,
            note="phase 2: apply locally, ship the parameters",
        ),
        (INVALID, MsgType.W_GNT, True): TransitionRule(
            VALID, finish_write_stale,
            note="phase 2 with the grant's user information",
        ),
        (VALID, MsgType.W_INV, None): TransitionRule(INVALID),
        (INVALID, MsgType.W_INV, None): TransitionRule(INVALID),
    }
    return MealyMachine("write_through_v.client", [VALID, INVALID],
                        INVALID, table)
