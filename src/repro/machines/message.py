"""Message tokens of the formal coherence-protocol model (paper Section 3).

A message consists of a *message token* and optional additional parameters.
A token is the five-tuple::

    (type, operation_initiator, object_name, queue, parameter_presence)

* ``type`` — the message type.  The Write-Through protocol uses six types
  (``R-REQ``, ``W-REQ``, ``R-PER``, ``W-PER``, ``R-GNT``, ``W-INV``); the
  other protocols reconstructed in :mod:`repro.protocols` add ownership,
  recall, write-back, update and acknowledgement types.
* ``operation_initiator`` — index of the node that started the operation
  (``1 .. N+1``).
* ``object_name`` — index of the shared object (``1 .. M``).
* ``queue`` — the queue the message is (to be) enqueued on: ``'l'`` for a
  client's local queue, ``'d'`` for a distributed queue.
* ``parameter_presence`` — what, if anything, rides along with the token:
  ``'0'`` nothing, ``'r'`` read-operation parameters, ``'w'``
  write-operation parameters, ``'ui'`` a complete user-information part of a
  copy.

The communication cost of sending a token inter-node is determined solely by
``parameter_presence`` (Section 4.1): ``1`` for ``'0'``/``'r'``, ``P + 1``
for ``'w'`` and ``S + 1`` for ``'ui'``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Optional

__all__ = [
    "MsgType",
    "QueueTag",
    "ParamPresence",
    "MessageToken",
    "Message",
    "token_cost",
]


class MsgType(Enum):
    """Message types across all eight reconstructed protocols.

    The first six are exactly the Write-Through types of Section 3; the rest
    are introduced by the protocol reconstructions documented in DESIGN.md.
    """

    # --- Write-Through core types (paper Section 3) ---
    R_REQ = "R-REQ"  #: read request from an application process
    W_REQ = "W-REQ"  #: write request from an application process
    R_PER = "R-PER"  #: read permission-asking message (client -> sequencer)
    W_PER = "W-PER"  #: write permission-asking message (client -> sequencer)
    R_GNT = "R-GNT"  #: read grant carrying user information (sequencer -> client)
    W_INV = "W-INV"  #: invalidation (sequencer/owner -> clients)

    # --- additional types used by the reconstructed protocols ---
    W_GNT = "W-GNT"  #: write grant / serialization point (two-phase writes)
    O_PER = "O-PER"  #: ownership permission-asking (Synapse/Illinois/Berkeley)
    O_GNT = "O-GNT"  #: ownership grant, possibly with user information
    RCL = "RCL"      #: recall/write-back request to a dirty owner
    WB = "WB"        #: write-back carrying user information (owner -> sequencer)
    D_NOT = "D-NOT"  #: dirty-upgrade request (Write-Once RESERVED -> DIRTY)
    D_GNT = "D-GNT"  #: dirty-upgrade grant (Write-Once)
    D_NACK = "D-NACK"  #: dirty-upgrade refusal (reserved status was lost)
    DGR = "DGR"      #: downgrade token (Write-Once RESERVED -> VALID)
    UPD = "UPD"      #: update carrying write parameters (Dragon/Firefly)
    ACK = "ACK"      #: completion acknowledgement token (Firefly)
    RETRY = "RETRY"  #: retry token (Synapse read miss on a dirty copy)

    # --- Section 6 extensions: eject and synchronization operations ---
    EJ = "EJ"        #: eject notice (a client dropped its valid copy)
    LK_REQ = "LK-REQ"  #: lock acquire request (synchronization operation)
    LK_GNT = "LK-GNT"  #: lock grant
    UNLK = "UNLK"      #: lock release

    # --- SC-ABD quorum family (no sequencer; repro.protocols.sc_abd) ---
    Q_RD = "Q-RD"    #: quorum read query (bare token)
    Q_RR = "Q-RR"    #: quorum read reply carrying timestamp + user info
    Q_TS = "Q-TS"    #: quorum timestamp query (write phase 1, bare token)
    Q_TR = "Q-TR"    #: quorum timestamp reply (bare token)
    Q_UPD = "Q-UPD"  #: quorum update carrying write parameters (phase 2)
    Q_WB = "Q-WB"    #: read-repair write-back carrying write parameters
    Q_ACK = "Q-ACK"  #: quorum update/write-back acknowledgement token

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class QueueTag(Enum):
    """Which queue a message travels to: local (``'l'``) or distributed (``'d'``)."""

    LOCAL = "l"
    DISTRIBUTED = "d"


class ParamPresence(Enum):
    """The ``parameter_presence`` field of a token (paper Section 3)."""

    NONE = "0"       #: no additional parameters
    READ = "r"       #: read-operation parameters
    WRITE = "w"      #: write-operation parameters
    USER_INFO = "ui"  #: complete user-information part of a copy


@dataclass(frozen=True, slots=True)
class MessageToken:
    """The five-tuple message token of Section 3."""

    type: MsgType
    operation_initiator: int
    object_name: int
    queue: QueueTag
    parameter_presence: ParamPresence

    def describe(self) -> str:
        """Paper-style rendering, e.g. ``(R-GNT, k, j, d, ui)``."""
        return (
            f"({self.type.value}, {self.operation_initiator}, "
            f"{self.object_name}, {self.queue.value}, "
            f"{self.parameter_presence.value})"
        )


def token_cost(presence: ParamPresence, S: float, P: float) -> float:
    """Communication cost of sending a token inter-node (Section 4.1).

    ``1`` for a bare token, ``S + 1`` with user information, ``P + 1`` with
    write parameters.  Read parameters (``'r'``) only ever appear on local
    queues in the paper's protocols; if such a message were sent inter-node
    it would cost ``1`` (the parameters select data, they do not carry it).
    """
    if presence is ParamPresence.USER_INFO:
        return S + 1.0
    if presence is ParamPresence.WRITE:
        return P + 1.0
    return 1.0


@dataclass(frozen=True, slots=True)
class Message:
    """A token plus its payload and addressing, as carried by a channel.

    ``payload`` carries simulated user information or write parameters (the
    version-vector values used by the simulator's coherence checker);
    ``op_id`` attributes every message to the application operation whose
    trace it belongs to, which is how the simulator accounts trace costs.
    """

    token: MessageToken
    src: int
    dst: int
    payload: Any = None
    op_id: Optional[int] = None

    def cost(self, S: float, P: float) -> float:
        """Inter-node communication cost of this message."""
        if self.src == self.dst:
            return 0.0
        return token_cost(self.token.parameter_presence, S, P)
