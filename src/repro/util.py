"""Small shared helpers with no dependencies on the rest of the package.

The one that matters is :func:`reject_unknown_keys`: every ``from_dict``
constructor in the configuration layer (:class:`~repro.sim.config.RunConfig`,
:class:`~repro.sim.faults.FaultPlan`,
:class:`~repro.sim.partition.PartitionPlan`,
:class:`~repro.sim.reliable.ReliabilityConfig`, ...) and the scenario
parser (:mod:`repro.scenarios`) call it so a stale or typo'd key fails
loudly with a did-you-mean suggestion instead of being silently dropped —
a half-applied configuration is the worst possible failure mode for a
reproducibility tool.
"""

from __future__ import annotations

import difflib
import math
from typing import Iterable, Mapping

__all__ = ["backoff_delay", "did_you_mean", "reject_unknown_keys"]


def did_you_mean(name: str, candidates: Iterable[str]) -> str:
    """A `` (did you mean 'x'?)`` suffix, or ``""`` with no close match."""
    matches = difflib.get_close_matches(name, list(candidates), n=1,
                                        cutoff=0.6)
    return f" (did you mean {matches[0]!r}?)" if matches else ""


def reject_unknown_keys(
    data: Mapping, allowed: Iterable[str], context: str
) -> None:
    """Raise ``ValueError`` when ``data`` carries keys not in ``allowed``.

    Args:
        data: the mapping being deserialized.
        allowed: every key the consumer understands.
        context: what is being parsed, for the error message
            (e.g. ``"RunConfig"`` or ``"scenario 'table7'"``).
    """
    allowed = list(allowed)
    unknown = [k for k in data if k not in allowed]
    if not unknown:
        return
    hints = "".join(
        f"\n  {key!r} is not a valid key{did_you_mean(str(key), allowed)}"
        for key in sorted(map(str, unknown))
    )
    raise ValueError(
        f"unknown key{'s' if len(unknown) > 1 else ''} in {context}: "
        f"{', '.join(sorted(map(repr, unknown)))}{hints}\n"
        f"  valid keys: {', '.join(allowed)}"
    )


def backoff_delay(base: float, factor: float, attempt: int,
                  cap: float = math.inf) -> float:
    """The delay before retry number ``attempt`` (0-based).

    Bounded exponential backoff, shared by every retry discipline: the
    reliable transport's frame retransmissions
    (:mod:`repro.sim.reliable`), the reconfiguration manager's
    state-transfer attempts (:mod:`repro.sim.reconfig`) and the quorum
    family's phase re-selection (:mod:`repro.protocols.sc_abd`) all
    retry with the same ``base * factor ** attempt`` shape and each
    historically inlined it with its own (sometimes missing) cap.
    With the default infinite cap the result is exactly the uncapped
    product (``min(x, inf)`` returns ``x``), so callers that never
    capped keep byte-identical delays.
    """
    return min(base * (factor ** attempt), cap)
