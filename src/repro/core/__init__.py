"""The analytic performance model — the paper's primary contribution.

Workload parameters (Section 4.2), trace/cost calculus (Section 4.1), the
exact steady-state Markov engine and per-protocol kernels (Section 4.3),
closed forms (eqns. (3)-(5) and Table 6), characteristic surfaces
(Figures 5-6), crossover lines and protocol comparison (Section 5.1).
"""

from .acc import acc_table, analytical_acc
from .aggregate import ObjectSpec, aggregate_acc, rotated_roles_acc
from .chains import build_chain, deviation_groups, markov_acc
from .closed_forms import (
    closed_form_acc,
    has_closed_form,
    ideal_acc,
    write_through_trace_probabilities,
)
from .comparison import (
    ALL_PROTOCOLS,
    RegionMap,
    best_protocol,
    min_acc_region_map,
    rank_protocols,
)
from .ejection import acc_write_through_rd_eject, ejecting_markov_acc
from .heterogeneous import (
    acc_write_through_rd_hetero,
    heterogeneous_markov_acc,
)
from .crossover import (
    BoundaryComparison,
    compare_boundary,
    empirical_boundary,
    empirical_crossover_p,
    paper_line_dragon_vs_berkeley,
    paper_line_synapse_vs_wtv,
    paper_line_wtv_vs_wt,
)
from .kernels import KERNELS, Env, ProtocolKernel, get_kernel
from .parameters import (
    Deviation,
    WorkloadParams,
    feasible_sigma_max,
    feasible_xi_max,
    parameter_grid,
)
from .placement import home_center_acc, placement_advantage
from .sensitivity import Sensitivity, elasticities, sensitivities, tuning_table
from .surfaces import FIGURE_PANELS, Surface, acc_surface, figure_surfaces
from .trace_discovery import TraceClass, discover_traces, format_trace_table
from .traces import CostExpr, Trace, TraceSet, WRITE_THROUGH_TRACES

__all__ = [
    "acc_write_through_rd_eject",
    "ejecting_markov_acc",
    "acc_write_through_rd_hetero",
    "heterogeneous_markov_acc",
    "acc_table",
    "analytical_acc",
    "ObjectSpec",
    "aggregate_acc",
    "rotated_roles_acc",
    "build_chain",
    "deviation_groups",
    "markov_acc",
    "closed_form_acc",
    "has_closed_form",
    "ideal_acc",
    "write_through_trace_probabilities",
    "ALL_PROTOCOLS",
    "RegionMap",
    "best_protocol",
    "min_acc_region_map",
    "rank_protocols",
    "BoundaryComparison",
    "compare_boundary",
    "empirical_boundary",
    "empirical_crossover_p",
    "paper_line_dragon_vs_berkeley",
    "paper_line_synapse_vs_wtv",
    "paper_line_wtv_vs_wt",
    "KERNELS",
    "Env",
    "ProtocolKernel",
    "get_kernel",
    "Deviation",
    "WorkloadParams",
    "feasible_sigma_max",
    "feasible_xi_max",
    "parameter_grid",
    "home_center_acc",
    "placement_advantage",
    "Sensitivity",
    "elasticities",
    "sensitivities",
    "tuning_table",
    "TraceClass",
    "discover_traces",
    "format_trace_table",
    "FIGURE_PANELS",
    "Surface",
    "acc_surface",
    "figure_surfaces",
    "CostExpr",
    "Trace",
    "TraceSet",
    "WRITE_THROUGH_TRACES",
]
