"""Chain builders: workload deviation x protocol kernel -> Markov chain.

For each deviation of Section 4.2 the acting nodes form symmetric groups
with per-member trial rates:

* **read disturbance** — the activity center (reads ``1 - p - a*sigma``,
  writes ``p``) and ``a`` disturbers (read ``sigma`` each);
* **write disturbance** — the activity center (reads ``1 - p - a*xi``,
  writes ``p``) and ``a`` disturbers (write ``xi`` each);
* **multiple activity centers** — ``beta`` centers, each reading
  ``(1 - p)/beta`` and writing ``p/beta``.

The chain state is the kernel's reduced global state; each state's outgoing
events enumerate, for every group and member state with non-zero count,
"one such member reads/writes", with probability ``count * rate``.  The
event probabilities sum to one by construction, mirroring the paper's
mutually exclusive and exhaustive sample space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, List, Tuple

from .kernels import Env, ProtocolKernel, get_kernel
from .markov import solve_chain
from .parameters import Deviation, WorkloadParams

__all__ = ["GroupSpec", "deviation_groups", "build_chain", "markov_acc"]


@dataclass(frozen=True)
class GroupSpec:
    """One symmetric actor group."""

    name: str
    size: int
    read_rate: float
    write_rate: float
    #: Section 6 extension: per-member eject probability (0 in the paper)
    eject_rate: float = 0.0


def deviation_groups(params: WorkloadParams, deviation: Deviation
                     ) -> Tuple[GroupSpec, ...]:
    """The actor groups and trial rates of a deviation (Section 4.2)."""
    if deviation is Deviation.READ:
        r = 1.0 - params.p - params.a * params.sigma
        groups = [GroupSpec("ac", 1, max(r, 0.0), params.p)]
        if params.a:
            groups.append(GroupSpec("dist", params.a, params.sigma, 0.0))
        return tuple(groups)
    if deviation is Deviation.WRITE:
        r = 1.0 - params.p - params.a * params.xi
        groups = [GroupSpec("ac", 1, max(r, 0.0), params.p)]
        if params.a:
            groups.append(GroupSpec("dist", params.a, 0.0, params.xi))
        return tuple(groups)
    return (
        GroupSpec(
            "centers",
            params.beta,
            params.per_center_read_prob,
            params.per_center_write_prob,
        ),
    )


def build_chain(
    kernel: ProtocolKernel,
    params: WorkloadParams,
    deviation: Deviation,
) -> Tuple[Hashable, Callable[[Hashable], List[Tuple[float, float, Hashable]]]]:
    """Build ``(initial state, transition generator)`` for a chain.

    The generator yields ``(probability, cost, next_state)`` triples whose
    probabilities sum to one per state.
    """
    groups = deviation_groups(params, deviation)
    env = Env(S=params.S, P=params.P, N=params.N)
    initial = kernel.initial_state(tuple(g.size for g in groups))
    member_states = kernel.member_states

    def transitions(state: Hashable) -> List[Tuple[float, float, Hashable]]:
        out: List[Tuple[float, float, Hashable]] = []
        counts_by_group = state[0]
        for g, spec in enumerate(groups):
            counts = counts_by_group[g]
            for si, s in enumerate(member_states):
                c = counts[si]
                if not c:
                    continue
                for kind, rate in (("read", spec.read_rate),
                                   ("write", spec.write_rate),
                                   ("eject", spec.eject_rate)):
                    if rate <= 0.0:
                        continue
                    cost, nxt = kernel.op(state, g, s, kind, env)
                    out.append((c * rate, cost, nxt))
        return out

    return initial, transitions


def markov_acc(protocol: str, params: WorkloadParams,
               deviation: Deviation) -> float:
    """Exact steady-state ``acc`` from the reduced Markov chain.

    This is the authoritative analytic evaluation for every protocol and
    deviation; the closed forms of :mod:`repro.core.closed_forms` are
    verified against it.
    """
    kernel = get_kernel(protocol)
    initial, transitions = build_chain(kernel, params, deviation)
    return solve_chain(initial, transitions)
