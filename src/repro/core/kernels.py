"""Atomic-operation semantics of the eight protocols on reduced global state.

The analytic model (Section 4.3) treats every operation as an atomic trial.
For each protocol this module defines exactly what one atomic read or write
by a given actor does to the *reduced* global state and what it costs.  The
reduction exploits the symmetry of the paper's workloads: actors fall into
groups of exchangeable members (the activity center; the ``a`` disturbing
clients; the ``beta`` activity centers), so the global state is

``state = (per-group member-state count vectors, home component)``

where the home component is the fixed sequencer's copy state for the
home-based protocols (``"V"``/``"I"``) or an "is the initial owner still the
owner" flag for the migrating-owner protocols.  Clients that never act
(``N - 1 - a`` of them) carry no state: every protocol's broadcast costs are
fixed-width (``N - 1`` or ``N``), so their copy states never influence cost.

Every kernel mirrors, constant for constant, the operational protocol in
:mod:`repro.protocols`; the integration tests enforce the equivalence by
comparing Markov-chain ``acc`` with simulated ``acc``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = [
    "Env",
    "StateView",
    "ProtocolKernel",
    "KERNELS",
    "get_kernel",
]


@dataclass(frozen=True)
class Env:
    """Cost/system parameters of a chain evaluation."""

    S: float
    P: float
    N: int


State = Tuple[Tuple[Tuple[int, ...], ...], Hashable]


class StateView:
    """Mutable working copy of a reduced state with bulk-update helpers."""

    def __init__(self, state: State, member_states: Tuple[str, ...]):
        self.groups: List[List[int]] = [list(c) for c in state[0]]
        self.home: Hashable = state[1]
        self._order: Dict[str, int] = {s: i for i, s in enumerate(member_states)}

    def freeze(self) -> State:
        """Back to the hashable representation."""
        return tuple(tuple(c) for c in self.groups), self.home

    # -- primitive updates ------------------------------------------------

    def move(self, g: int, frm: str, to: str, n: int = 1) -> None:
        """Move ``n`` members of group ``g`` from state ``frm`` to ``to``."""
        if frm == to or n == 0:
            return
        fi, ti = self._order[frm], self._order[to]
        if self.groups[g][fi] < n:
            raise ValueError(
                f"group {g} has {self.groups[g][fi]} members in {frm}, "
                f"cannot move {n}"
            )
        self.groups[g][fi] -= n
        self.groups[g][ti] += n

    def count(self, state: str, group: Optional[int] = None) -> int:
        """Members in ``state`` (in one group or across all groups)."""
        i = self._order[state]
        if group is not None:
            return self.groups[group][i]
        return sum(c[i] for c in self.groups)

    def set_all(self, to: str) -> None:
        """Collapse every member of every group into state ``to``.

        Used for "invalidate everybody" broadcasts; the actor's own state
        is re-established by the caller afterwards.
        """
        ti = self._order[to]
        for counts in self.groups:
            total = sum(counts)
            for i in range(len(counts)):
                counts[i] = 0
            counts[ti] = total

    def relabel_all(self, frm: str, to: str) -> None:
        """Move every member in ``frm`` (any group) to ``to``."""
        fi, ti = self._order[frm], self._order[to]
        for counts in self.groups:
            counts[ti] += counts[fi]
            counts[fi] = 0


class ProtocolKernel(abc.ABC):
    """Atomic semantics of one protocol for the analytic chains."""

    #: registry name, matching :mod:`repro.protocols.registry`
    name: str
    #: ordering of the member-state count vectors
    member_states: Tuple[str, ...]
    #: state a client copy starts in
    initial_member: str
    #: initial home component
    initial_home: Hashable = None

    def initial_state(self, group_sizes: Tuple[int, ...]) -> State:
        """All members in the protocol's start state."""
        start = self.member_states.index(self.initial_member)
        groups = []
        for n in group_sizes:
            counts = [0] * len(self.member_states)
            counts[start] = n
            groups.append(tuple(counts))
        return tuple(groups), self.initial_home

    def op(self, state: State, g: int, s: str, kind: str, env: Env
           ) -> Tuple[float, State]:
        """Execute one atomic ``kind`` by a member of group ``g`` in state
        ``s``; return ``(communication cost, next state)``."""
        view = StateView(state, self.member_states)
        if kind == "read":
            cost = self._read(view, g, s, env)
        elif kind == "write":
            cost = self._write(view, g, s, env)
        elif kind == "eject":
            cost = self._eject(view, g, s, env)
        else:
            raise ValueError(f"unknown operation kind {kind!r}")
        return cost, view.freeze()

    def home_op(self, state: State, kind: str, env: Env
                ) -> Tuple[float, State]:
        """Execute one atomic operation by the *home node* (node ``N+1``).

        These are the paper's sequencer-initiated traces (tr5/tr6 for
        Write-Through) — needed when the activity center is placed at the
        home node (the placement study) rather than at a client.
        """
        view = StateView(state, self.member_states)
        if kind == "read":
            cost = self._home_read(view, env)
        elif kind == "write":
            cost = self._home_write(view, env)
        else:
            raise ValueError(f"unknown home operation kind {kind!r}")
        return cost, view.freeze()

    @abc.abstractmethod
    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        """Apply a read by a ``(g, s)`` member; mutate ``v``; return cost."""

    @abc.abstractmethod
    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        """Apply a write by a ``(g, s)`` member; mutate ``v``; return cost."""

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        """Apply an eject (Section 6 extension).

        The default covers protocols with no directories to maintain: a
        resident copy is dropped silently; owner copies are pinned.
        Protocol kernels with directories/write-back override this.
        """
        if s in ("V", "SC", "S"):
            v.move(g, s, "I")
        return 0.0

    def _home_read(self, v: StateView, env: Env) -> float:
        """Home-node read; default: the home copy is always current."""
        return 0.0

    def _home_write(self, v: StateView, env: Env) -> float:
        """Home-node write; protocols must override."""
        raise NotImplementedError(
            f"{self.name}: home writes not modeled"
        )


# ---------------------------------------------------------------------------
# Write-Through family
# ---------------------------------------------------------------------------


class WriteThroughKernel(ProtocolKernel):
    """Write-Through (paper Section 4.1): writer self-invalidates."""

    name = "write_through"
    member_states = ("I", "V")
    initial_member = "I"

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "V":
            return 0.0  # tr1
        v.move(g, "I", "V")
        return env.S + 2.0  # tr2

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        v.set_all("I")  # W-INV to the other N-1 clients; writer drops too
        return env.P + env.N  # tr3 / tr4

    def _home_write(self, v: StateView, env: Env) -> float:
        v.set_all("I")  # trace tr6: W-INV to all N clients
        return float(env.N)


class WriteThroughVKernel(ProtocolKernel):
    """Write-Through-V: two-phase write keeps the writer's copy valid."""

    name = "write_through_v"
    member_states = ("I", "V")
    initial_member = "I"

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "V":
            return 0.0
        v.move(g, "I", "V")
        return env.S + 2.0

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        cost = env.P + env.N + 2.0 if s == "V" else env.P + env.S + env.N + 2.0
        v.set_all("I")
        v.move(g, "I", "V")  # the writer keeps a valid copy
        return cost

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "V":
            v.move(g, "V", "I")
            return 1.0  # announce: the sequencer's directory must be exact
        return 0.0

    def _home_write(self, v: StateView, env: Env) -> float:
        v.set_all("I")  # the sequencer applies locally, invalidates all N
        return float(env.N)


# ---------------------------------------------------------------------------
# Home-based ownership protocols
# ---------------------------------------------------------------------------


class WriteOnceKernel(ProtocolKernel):
    """Write-Once: write-through once, then local DIRTY writes."""

    name = "write_once"
    member_states = ("I", "V", "R", "D")
    initial_member = "I"
    initial_home = "V"

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s != "I":
            return 0.0
        if v.home == "V":
            # +1 DGR token when a RESERVED copy must downgrade.
            dgr = 1.0 if v.count("R") else 0.0
            v.relabel_all("R", "V")
            v.move(g, "I", "V")
            return env.S + 2.0 + dgr
        # recall from the dirty owner, who supplies and stays VALID.
        v.relabel_all("D", "V")
        v.home = "V"
        v.move(g, "I", "V")
        return 2.0 * env.S + 4.0

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "D":
            return 0.0
        if s == "R":
            v.move(g, "R", "D")
            v.home = "I"
            return 2.0  # D-NOT / D-GNT handshake
        if s == "V":
            # write-through; the sequencer stays current.
            v.set_all("I")
            v.move(g, "I", "R")
            return env.P + env.N
        # INVALID: read-with-intent-to-modify.
        cost = env.S + env.N + 1.0 if v.home == "V" else 2.0 * env.S + env.N + 3.0
        v.set_all("I")
        v.move(g, "I", "D")
        v.home = "I"
        return cost

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "D":
            v.move(g, "D", "I")
            v.home = "V"
            return env.S + 1.0  # write back home
        if s == "R":
            v.move(g, "R", "I")
            return 1.0  # clear the reserved-client entry
        if s == "V":
            v.move(g, "V", "I")
        return 0.0

    def _home_read(self, v: StateView, env: Env) -> float:
        if v.home == "V":
            # a RESERVED holder must downgrade (DGR token)
            dgr = 1.0 if v.count("R") else 0.0
            v.relabel_all("R", "V")
            return dgr
        # recall from the dirty owner, who supplies and stays VALID
        v.relabel_all("D", "V")
        v.home = "V"
        return env.S + 2.0

    def _home_write(self, v: StateView, env: Env) -> float:
        cost = 0.0
        if v.home == "I":
            cost += env.S + 2.0  # recall first
            v.home = "V"
        v.set_all("I")
        return cost + env.N


class SynapseKernel(ProtocolKernel):
    """Synapse: data-carrying ownership writes; write-back + retry misses."""

    name = "synapse"
    member_states = ("I", "V", "D")
    initial_member = "I"
    initial_home = "V"

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s != "I":
            return 0.0
        if v.home == "V":
            v.move(g, "I", "V")
            return env.S + 2.0
        # recall: the owner writes back and SELF-INVALIDATES, then retry.
        v.relabel_all("D", "I")
        v.home = "V"
        v.move(g, "I", "V")
        return 2.0 * env.S + 6.0

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "D":
            return 0.0
        cost = (
            env.S + env.N + 1.0 if v.home == "V" else 2.0 * env.S + env.N + 5.0
        )
        v.set_all("I")
        v.move(g, "I", "D")
        v.home = "I"
        return cost

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "D":
            v.move(g, "D", "I")
            v.home = "V"
            return env.S + 1.0  # write the only current copy back home
        if s == "V":
            v.move(g, "V", "I")
        return 0.0

    def _home_read(self, v: StateView, env: Env) -> float:
        if v.home == "V":
            return 0.0
        # recall; the Synapse owner self-invalidates
        v.relabel_all("D", "I")
        v.home = "V"
        return env.S + 2.0

    def _home_write(self, v: StateView, env: Env) -> float:
        cost = 0.0
        if v.home == "I":
            cost += env.S + 2.0
            v.home = "V"
        v.set_all("I")
        return cost + env.N


class IllinoisKernel(ProtocolKernel):
    """Illinois: data-less upgrades; direct remote-dirty service."""

    name = "illinois"
    member_states = ("I", "V", "D")
    initial_member = "I"
    initial_home = "V"

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s != "I":
            return 0.0
        if v.home == "V":
            v.move(g, "I", "V")
            return env.S + 2.0
        # the owner supplies the copy and stays VALID; no retry.
        v.relabel_all("D", "V")
        v.home = "V"
        v.move(g, "I", "V")
        return 2.0 * env.S + 4.0

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "D":
            return 0.0
        if s == "V":
            cost = env.N + 1.0  # upgrade without data (home is VALID here)
        elif v.home == "V":
            cost = env.S + env.N + 1.0
        else:
            cost = 2.0 * env.S + env.N + 3.0
        v.set_all("I")
        v.move(g, "I", "D")
        v.home = "I"
        return cost

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "D":
            v.move(g, "D", "I")
            v.home = "V"
            return env.S + 1.0  # write back home
        if s == "V":
            v.move(g, "V", "I")
            return 1.0  # keep the validity directory exact
        return 0.0

    def _home_read(self, v: StateView, env: Env) -> float:
        if v.home == "V":
            return 0.0
        # recall; the Illinois supplier stays VALID
        v.relabel_all("D", "V")
        v.home = "V"
        return env.S + 2.0

    def _home_write(self, v: StateView, env: Env) -> float:
        cost = 0.0
        if v.home == "I":
            cost += env.S + 2.0
            v.home = "V"
        v.set_all("I")
        return cost + env.N


# ---------------------------------------------------------------------------
# Migrating-owner protocols
# ---------------------------------------------------------------------------


class BerkeleyKernel(ProtocolKernel):
    """Berkeley: ownership migrates to every writer.

    The ``home`` component is the home node's own copy state: ``"D"`` or
    ``"SD"`` while node ``N + 1`` owns the object (it starts as the
    ``DIRTY`` owner), ``"V"``/``"I"`` once ownership moved to a client (the
    transfer broadcast invalidates the home like everyone else).
    """

    name = "berkeley"
    member_states = ("I", "V", "D", "SD")
    initial_member = "I"
    initial_home = "D"

    @staticmethod
    def _home_is_owner(v: StateView) -> bool:
        return v.home in ("D", "SD")

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s != "I":
            return 0.0
        if self._home_is_owner(v):
            v.home = "SD"  # the serving home owner downgrades
        else:
            v.relabel_all("D", "SD")  # the serving member owner downgrades
        v.move(g, "I", "V")
        return env.S + 2.0

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "D":
            return 0.0
        if s == "SD":
            v.set_all("I")
            v.move(g, "I", "D")
            v.home = "I"  # the broadcast invalidates the home copy too
            return float(env.N)
        cost = env.N + 1.0 if s == "V" else env.S + env.N + 1.0
        v.set_all("I")
        v.move(g, "I", "D")
        v.home = "I"  # old owner (possibly the home) ends INVALID
        return cost

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s in ("D", "SD"):
            return 0.0  # the owner copy is the backing store: pinned
        if s == "V":
            v.move(g, "V", "I")
            return 1.0  # announce departure to the owner's directory
        return 0.0

    def _home_read(self, v: StateView, env: Env) -> float:
        if v.home != "I":
            return 0.0
        v.relabel_all("D", "SD")  # fetched from the member owner
        v.home = "V"
        return env.S + 2.0

    def _home_write(self, v: StateView, env: Env) -> float:
        if v.home == "D":
            return 0.0
        if v.home == "SD":
            v.set_all("I")
            v.home = "D"
            return float(env.N)
        # a client owns the object: take ownership back
        cost = env.N + 1.0 if v.home == "V" else env.S + env.N + 1.0
        v.set_all("I")
        v.home = "D"
        return cost


class DragonKernel(ProtocolKernel):
    """Dragon: update protocol, broadcast duty migrates to the writer.

    The ``I`` member state exists only for the eject extension; the
    paper's Dragon has permanently resident copies.
    """

    name = "dragon"
    member_states = ("SC", "SD", "I")
    initial_member = "SC"
    initial_home = True

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "I":
            v.move(g, "I", "SC")
            return env.S + 2.0  # re-fetch from the owner
        return 0.0

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        cost = env.N * (env.P + 1.0)
        if s == "I":
            # re-fetch first, then the usual broadcast.
            cost += env.S + 2.0
            v.move(g, "I", "SC")
            s = "SC"
        v.relabel_all("SD", "SC")
        v.move(g, "SC", "SD")
        v.home = False
        return cost

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "SC":
            v.move(g, "SC", "I")
        return 0.0  # SHARED-DIRTY is the backing store: pinned

    def _home_write(self, v: StateView, env: Env) -> float:
        v.relabel_all("SD", "SC")
        v.home = True  # the home takes the SHARED-DIRTY role back
        return env.N * (env.P + 1.0)


class FireflyKernel(ProtocolKernel):
    """Firefly: update protocol through the fixed sequencer.

    The ``I`` member state exists only for the eject extension: an
    ejected copy announces its departure (one token) and the sequencer
    drops it from the update fan-out until it re-fetches or writes, so
    the broadcast width is state-dependent — ``N - 1`` minus the tracked
    departed copies (idle untracked clients never eject and always stay
    in the fan-out).
    """

    name = "firefly"
    member_states = ("S", "I")
    initial_member = "S"

    def _fanout_savings(self, v: StateView, s: str, env: Env) -> float:
        departed_others = v.count("I") - (1 if s == "I" else 0)
        return departed_others * (env.P + 1.0)

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "I":
            v.move(g, "I", "S")
            return env.S + 2.0  # re-fetch from the sequencer
        return 0.0

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        savings = self._fanout_savings(v, s, env)
        if s == "I":
            # the ACK carries the whole copy back (S+1 instead of 1).
            v.move(g, "I", "S")
            return env.N * (env.P + 1.0) + env.S + 1.0 - savings
        return env.N * (env.P + 1.0) + 1.0 - savings

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "S":
            v.move(g, "S", "I")
            return 1.0  # EJ departure notice keeps the fan-out exact
        return 0.0

    def _home_write(self, v: StateView, env: Env) -> float:
        # broadcast to all N clients minus the departed tracked ones
        return env.N * (env.P + 1.0) - v.count("I") * (env.P + 1.0)


class DirectoryWriteThroughKernel(ProtocolKernel):
    """Extension: Write-Through with exact-copyset multicast invalidation.

    Identical to Write-Through except the write's invalidation fan-out is
    the number of *valid* copies other than the writer's — a
    state-dependent cost.  Idle clients never acquire copies, so the
    reduced state already carries the exact copyset size.
    """

    name = "write_through_dir"
    member_states = ("I", "V")
    initial_member = "I"

    def _read(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "V":
            return 0.0
        v.move(g, "I", "V")
        return env.S + 2.0

    def _write(self, v: StateView, g: int, s: str, env: Env) -> float:
        copyset_others = v.count("V") - (1 if s == "V" else 0)
        v.set_all("I")
        return env.P + 1.0 + copyset_others

    def _eject(self, v: StateView, g: int, s: str, env: Env) -> float:
        if s == "V":
            v.move(g, "V", "I")
            return 1.0  # keep the copyset exact
        return 0.0

    def _home_write(self, v: StateView, env: Env) -> float:
        copyset = v.count("V")
        v.set_all("I")
        return float(copyset)  # multicast to the exact copyset


#: kernels for the paper's eight protocols, in the paper's order.
KERNELS: Dict[str, ProtocolKernel] = {
    k.name: k
    for k in (
        WriteThroughKernel(),
        WriteThroughVKernel(),
        WriteOnceKernel(),
        SynapseKernel(),
        IllinoisKernel(),
        BerkeleyKernel(),
        DragonKernel(),
        FireflyKernel(),
    )
}

#: kernels for the extension protocols beyond the paper's eight.
EXTENSION_KERNELS: Dict[str, ProtocolKernel] = {
    k.name: k for k in (DirectoryWriteThroughKernel(),)
}


def get_kernel(name: str) -> ProtocolKernel:
    """Kernel lookup by registry name (paper protocols, then extensions).

    Raises:
        KeyError: listing the known kernels.
    """
    if name in KERNELS:
        return KERNELS[name]
    if name in EXTENSION_KERNELS:
        return EXTENSION_KERNELS[name]
    known = list(KERNELS) + list(EXTENSION_KERNELS)
    raise KeyError(f"unknown kernel {name!r}; known: {', '.join(known)}")
