"""Protocol comparison: rankings and minimum-``acc`` region maps.

Supports the qualitative claims of paper Section 5.1 ("Berkeley incurs the
minimum communication cost in comparison with ...", "Illinois incurs acc
lower than the Synapse scheme", Figure 5d's Dragon-vs-Berkeley region
split) and the adaptive-selection extension of Section 6, which needs
"which protocol is cheapest for these workload parameters?" as a primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .acc import analytical_acc
from .parameters import Deviation, WorkloadParams

__all__ = ["rank_protocols", "best_protocol", "RegionMap", "min_acc_region_map"]

#: the paper's eight protocols in presentation order
ALL_PROTOCOLS = (
    "write_through",
    "write_through_v",
    "write_once",
    "synapse",
    "illinois",
    "berkeley",
    "dragon",
    "firefly",
)


def rank_protocols(
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    protocols: Iterable[str] = ALL_PROTOCOLS,
) -> List[Tuple[str, float]]:
    """Protocols sorted by ascending ``acc`` at one parameter point."""
    table = [
        (name, analytical_acc(name, params, deviation)) for name in protocols
    ]
    table.sort(key=lambda item: item[1])
    return table


def best_protocol(
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    protocols: Iterable[str] = ALL_PROTOCOLS,
) -> Tuple[str, float]:
    """The cheapest protocol and its ``acc`` at one parameter point."""
    return rank_protocols(params, deviation, protocols)[0]


@dataclass
class RegionMap:
    """Which protocol is cheapest at each feasible ``(p, disturb)`` point.

    ``winner[i, j]`` indexes into :attr:`protocols`; ``-1`` marks
    infeasible grid points.
    """

    protocols: Tuple[str, ...]
    deviation: Deviation
    p_values: np.ndarray
    disturb_values: np.ndarray
    winner: np.ndarray

    def share(self) -> Dict[str, float]:
        """Fraction of the feasible region each protocol wins."""
        feasible = self.winner >= 0
        total = int(feasible.sum())
        out: Dict[str, float] = {}
        for i, name in enumerate(self.protocols):
            out[name] = float((self.winner == i).sum()) / max(total, 1)
        return out

    def winner_at(self, p: float, disturb: float) -> Optional[str]:
        """The winning protocol at the nearest grid point (None if infeasible)."""
        i = int(np.abs(self.p_values - p).argmin())
        j = int(np.abs(self.disturb_values - disturb).argmin())
        w = int(self.winner[i, j])
        return None if w < 0 else self.protocols[w]


def min_acc_region_map(
    base: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    protocols: Iterable[str] = ALL_PROTOCOLS,
    p_values: Optional[Sequence[float]] = None,
    disturb_values: Optional[Sequence[float]] = None,
) -> RegionMap:
    """Compute the minimum-``acc`` winner over the workload plane.

    Figure 5d (Dragon vs Berkeley) is this map restricted to two
    protocols; the examples extend it to all eight.
    """
    protos = tuple(protocols)
    p_vals = np.asarray(
        p_values if p_values is not None else np.linspace(0.0, 1.0, 41),
        dtype=float,
    )
    if disturb_values is None:
        hi = 1.0 / base.a if base.a else 0.0
        disturb_values = np.linspace(0.0, hi, 41)
    d_vals = np.asarray(disturb_values, dtype=float)
    winner = np.full((p_vals.size, d_vals.size), -1, dtype=int)
    for i, p in enumerate(p_vals):
        for j, d in enumerate(d_vals):
            if p + base.a * d > 1.0 + 1e-12:
                continue
            if deviation is Deviation.READ:
                w = base.with_(p=float(p), sigma=float(d), xi=0.0)
            else:
                w = base.with_(p=float(p), xi=float(d), sigma=0.0)
            accs = [analytical_acc(name, w, deviation) for name in protos]
            winner[i, j] = int(np.argmin(accs))
    return RegionMap(protos, deviation, p_vals, d_vals, winner)
