"""Crossover analysis between protocol pairs (paper Section 5.1).

The paper reports boundary lines in the ``(sigma, p)`` plane separating the
regions where one protocol of a pair incurs the lower ``acc`` under read
disturbance:

* **Write-Through-V vs Write-Through**:
  ``p = S/(S+2) - a*sigma*S/(S+2)``;
* **Synapse vs Write-Through-V** (exists when ``P < S + N``):
  ``p = a*sigma*(S + N - P)/(P + N + 2)``;
* **Dragon vs Berkeley** (``a = 1``, exists when ``N*P < S + 2``):
  ``p = sigma*(S + 2 - N*P)/(P + N + 2)``;
  for ``N*p > S + 2`` Berkeley is cheaper everywhere.

This module provides both the *paper-literal* lines and an *empirical*
boundary finder that root-finds the sign change of the model's
``acc_A - acc_B`` along ``p`` for each ``sigma`` — the reproduction compares
the two (EXPERIMENTS.md records the agreement).  The WTV-vs-WT line is an
exact consequence of our reconstruction; the other lines match in origin,
slope sign and existence condition, with slope deviations documented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .acc import analytical_acc
from .parameters import Deviation, WorkloadParams

__all__ = [
    "paper_line_wtv_vs_wt",
    "paper_line_synapse_vs_wtv",
    "paper_line_dragon_vs_berkeley",
    "empirical_crossover_p",
    "empirical_boundary",
    "BoundaryComparison",
    "compare_boundary",
]


def paper_line_wtv_vs_wt(sigma: np.ndarray, a: int, S: float) -> np.ndarray:
    """``p(sigma)`` above which Write-Through beats Write-Through-V."""
    sigma = np.asarray(sigma, dtype=float)
    return S / (S + 2.0) - a * sigma * S / (S + 2.0)


def paper_line_synapse_vs_wtv(sigma: np.ndarray, a: int, S: float, P: float,
                              N: int) -> np.ndarray:
    """``p(sigma)`` above which Synapse beats Write-Through-V.

    Meaningful when ``P < S + N``; for ``P >= S + N`` Synapse wins
    everywhere (the line collapses to ``p <= 0``).
    """
    sigma = np.asarray(sigma, dtype=float)
    return a * sigma * (S + N - P) / (P + N + 2.0)


def paper_line_dragon_vs_berkeley(sigma: np.ndarray, S: float, P: float,
                                  N: int) -> np.ndarray:
    """``p(sigma)`` above which Berkeley beats Dragon (``a = 1``).

    Meaningful when ``N * P < S + 2``; for ``N * P > S + 2`` Berkeley wins
    everywhere.
    """
    sigma = np.asarray(sigma, dtype=float)
    return sigma * (S + 2.0 - N * P) / (P + N + 2.0)


def empirical_crossover_p(
    proto_a: str,
    proto_b: str,
    sigma: float,
    base: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    tol: float = 1e-10,
) -> Optional[float]:
    """The ``p`` where ``acc_A - acc_B`` changes sign at fixed ``sigma``.

    Scans the feasible interval ``(0, 1 - a*sigma)`` for a sign change and
    bisects it.  Returns ``None`` when one protocol dominates the whole
    interval (no crossover).
    """
    def diff(p: float) -> float:
        if deviation is Deviation.READ:
            w = base.with_(p=p, sigma=sigma, xi=0.0)
        else:
            w = base.with_(p=p, xi=sigma, sigma=0.0)
        return (analytical_acc(proto_a, w, deviation)
                - analytical_acc(proto_b, w, deviation))

    p_max = 1.0 - base.a * sigma
    if p_max <= 0:
        return None
    eps = min(1e-6, p_max / 1000.0)
    lo, hi = eps, p_max - eps
    grid = np.linspace(lo, hi, 65)
    vals = [diff(float(p)) for p in grid]
    bracket = None
    for i in range(len(grid) - 1):
        if vals[i] == 0.0:
            return float(grid[i])
        if vals[i] * vals[i + 1] < 0:
            bracket = (float(grid[i]), float(grid[i + 1]))
            break
    if bracket is None:
        return None
    lo, hi = bracket
    flo = diff(lo)
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        fm = diff(mid)
        if fm == 0.0:
            return mid
        if flo * fm < 0:
            hi = mid
        else:
            lo, flo = mid, fm
    return 0.5 * (lo + hi)


def empirical_boundary(
    proto_a: str,
    proto_b: str,
    base: WorkloadParams,
    sigmas: Sequence[float],
    deviation: Deviation = Deviation.READ,
) -> List[Tuple[float, Optional[float]]]:
    """The empirical boundary ``p(sigma)`` over a set of sigmas."""
    return [
        (float(s), empirical_crossover_p(proto_a, proto_b, float(s), base,
                                         deviation))
        for s in sigmas
    ]


@dataclass
class BoundaryComparison:
    """Paper-literal line vs the model's empirical boundary."""

    proto_a: str
    proto_b: str
    sigmas: List[float]
    paper_p: List[float]
    empirical_p: List[Optional[float]]

    def max_abs_deviation(self) -> float:
        """Largest ``|paper - empirical|`` where both are defined."""
        ds = [
            abs(pp - ep)
            for pp, ep in zip(self.paper_p, self.empirical_p)
            if ep is not None and 0.0 <= pp <= 1.0
        ]
        return max(ds) if ds else float("nan")


def compare_boundary(
    pair: str,
    base: WorkloadParams,
    sigmas: Sequence[float],
) -> BoundaryComparison:
    """Compare a paper line with the empirical boundary.

    Args:
        pair: ``"wtv_vs_wt"``, ``"synapse_vs_wtv"`` or
            ``"dragon_vs_berkeley"``.
        base: parameters (``N``, ``a``, ``S``, ``P``); the Dragon/Berkeley
            line is specified by the paper for ``a = 1``.
        sigmas: sigma grid.
    """
    s = np.asarray(list(sigmas), dtype=float)
    if pair == "wtv_vs_wt":
        a_name, b_name = "write_through_v", "write_through"
        paper = paper_line_wtv_vs_wt(s, base.a, base.S)
    elif pair == "synapse_vs_wtv":
        a_name, b_name = "synapse", "write_through_v"
        paper = paper_line_synapse_vs_wtv(s, base.a, base.S, base.P, base.N)
    elif pair == "dragon_vs_berkeley":
        a_name, b_name = "dragon", "berkeley"
        paper = paper_line_dragon_vs_berkeley(s, base.S, base.P, base.N)
    else:
        raise KeyError(f"unknown pair {pair!r}")
    empirical = [
        empirical_crossover_p(a_name, b_name, float(x), base) for x in s
    ]
    return BoundaryComparison(a_name, b_name, list(map(float, s)),
                              [float(x) for x in paper], empirical)
