"""Automatic trace-set discovery (paper Section 4.1, reference [8]).

"It can be shown that for a given coherence protocol the set of all traces
TR is finite [8] and that every operation execution results in exactly one
trace from the set TR.  The set of traces has to be determined by a
thorough analysis of the applied coherence protocol."

This module performs that thorough analysis mechanically: it enumerates
the reachable reduced state space of a protocol's kernel under a workload
shape, evaluates every (state, actor, operation) cost at several
``(S, P, N)`` base points, and fits each cost to the symbolic basis

``cost = u + s·S + p·(P) + n·N + np·(N·P)``

with small integer coefficients (every protocol cost in this system lives
in that lattice — e.g. Write-Through's ``S + 2`` is ``(u=2, s=1)``,
Dragon's ``N (P + 1)`` is ``(n=1, np=1)``).  Identical fits collapse into
one *trace class*, yielding the protocol's finite trace set with symbolic
costs — Table-4.1-style summaries for all protocols, not just
Write-Through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from .chains import deviation_groups
from .kernels import Env, get_kernel
from .markov import enumerate_chain
from .parameters import Deviation, WorkloadParams

__all__ = ["TraceClass", "discover_traces", "format_trace_table"]

#: (S, P, N) base points; chosen pairwise coprime so the basis
#: [1, S, P, N, N*P] is well conditioned.
_BASE_POINTS = (
    (2.0, 3.0, 5),
    (7.0, 11.0, 13),
    (17.0, 19.0, 23),
    (29.0, 31.0, 37),
    (41.0, 43.0, 47),
)


@dataclass(frozen=True)
class TraceClass:
    """One member of the protocol's finite trace set TR.

    The symbolic cost is ``units + s_coef*S + p_coef*P + n_coef*N +
    np_coef*N*P`` with integer coefficients.
    """

    kind: str
    units: int
    s_coef: int
    p_coef: int
    n_coef: int
    np_coef: int

    def cost(self, S: float, P: float, N: int) -> float:
        """Evaluate the symbolic cost."""
        return (self.units + self.s_coef * S + self.p_coef * P
                + self.n_coef * N + self.np_coef * N * P)

    def describe(self) -> str:
        """Human-readable cost expression, e.g. ``'2S + N + 5'``."""
        parts: List[str] = []
        for coef, sym in ((self.np_coef, "NP"), (self.s_coef, "S"),
                          (self.p_coef, "P"), (self.n_coef, "N")):
            if coef == 1:
                parts.append(sym)
            elif coef:
                parts.append(f"{coef}{sym}")
        if self.units or not parts:
            parts.append(str(self.units))
        return " + ".join(parts)


def _fit_symbolic(costs: Sequence[float]) -> Optional[Tuple[int, ...]]:
    """Fit costs at the base points to the integer basis; None if no fit."""
    A = np.array(
        [[1.0, S, P, float(N), float(N) * P] for S, P, N in _BASE_POINTS]
    )
    x, residuals, _rank, _sv = np.linalg.lstsq(A, np.asarray(costs),
                                               rcond=None)
    rounded = np.rint(x)
    if np.abs(A @ rounded - np.asarray(costs)).max() > 1e-6:
        return None
    return tuple(int(v) for v in rounded)


def discover_traces(
    protocol: str,
    deviation: Deviation = Deviation.READ,
    a: int = 2,
    beta: int = 2,
    include_ejects: bool = False,
    max_states: int = 50_000,
) -> FrozenSet[TraceClass]:
    """Enumerate the protocol's finite trace set under a workload shape.

    Args:
        protocol: registry name (paper protocols and extensions).
        deviation: which actor structure to explore (READ/WRITE/MAC).
        a: number of disturbing clients to model.
        beta: number of activity centers for the MAC deviation.
        include_ejects: also explore eject operations (Section 6).

    Returns:
        the set of trace classes — every ``(operation kind, symbolic
        cost)`` reachable from the initial state.  Probabilities play no
        role here (any positive rate reaches the same closure), so nominal
        rates are used internally.
    """
    kernel = get_kernel(protocol)
    # nominal rates only shape which (actor, kind) pairs are possible.
    params = WorkloadParams(N=5, p=0.2, a=a, sigma=0.1 if a else 0.0,
                            xi=0.1 if a else 0.0, beta=beta,
                            S=100.0, P=30.0)
    groups = deviation_groups(params, deviation)
    kinds_per_group: List[List[str]] = []
    for g in groups:
        kinds = []
        if g.read_rate > 0:
            kinds.append("read")
        if g.write_rate > 0:
            kinds.append("write")
        if include_ejects:
            kinds.append("eject")
        kinds_per_group.append(kinds)

    envs = [Env(S=S, P=P, N=N) for S, P, N in _BASE_POINTS]
    member_states = kernel.member_states
    initial = kernel.initial_state(tuple(g.size for g in groups))

    def transitions(state):
        out = []
        for g, kinds in enumerate(kinds_per_group):
            counts = state[0][g]
            for si, s in enumerate(member_states):
                if not counts[si]:
                    continue
                for kind in kinds:
                    _cost, nxt = kernel.op(state, g, s, kind, envs[0])
                    out.append((1.0, 0.0, nxt))
        return out

    # normalize probabilities for the enumerator's row check.
    def normalized(state):
        raw = transitions(state)
        w = 1.0 / len(raw)
        return [(w, c, t) for _p, c, t in raw]

    states, _index = enumerate_chain(initial, normalized,
                                     max_states=max_states)

    classes: set = set()
    for state in states:
        for g, kinds in enumerate(kinds_per_group):
            counts = state[0][g]
            for si, s in enumerate(member_states):
                if not counts[si]:
                    continue
                for kind in kinds:
                    costs = [kernel.op(state, g, s, kind, env)[0]
                             for env in envs]
                    fit = _fit_symbolic(costs)
                    if fit is None:
                        raise RuntimeError(
                            f"{protocol}: cost {costs} for {kind} in "
                            f"state {state} is outside the symbolic basis"
                        )
                    classes.add(TraceClass(kind, *fit))
    return frozenset(classes)


def format_trace_table(protocol: str,
                       traces: FrozenSet[TraceClass]) -> str:
    """Render a trace set as a Section 4.1-style table."""
    lines = [f"trace set TR for {protocol} "
             f"({len(traces)} classes):",
             f"{'kind':>7}  cost"]
    ordered = sorted(traces, key=lambda t: (t.kind, t.cost(100.0, 30.0, 5)))
    for tr in ordered:
        lines.append(f"{tr.kind:>7}  {tr.describe()}")
    return "\n".join(lines)
