"""Activity-center placement: the sequencer's own traces (tr5/tr6).

The paper's trace set includes the sequencer-initiated traces — tr5 (free
sequencer read) and tr6 (sequencer write, cost ``N``) for Write-Through —
but its workload deviations place every actor at a client.  This module
asks the natural follow-up design question: *what if the activity center
is the home/sequencer node itself?*  (In a real DSM the placement of the
hot writer relative to an object's home is a first-order tuning decision.)

:func:`home_center_acc` evaluates the read/write-disturbance deviations
with the activity center executing *home-node* operations (the kernels'
``home_op``), disturbers remaining clients; :func:`placement_advantage`
reports the saving over the standard client placement.

For Write-Through this recovers the tr5/tr6 calculus exactly: the home
center's writes cost ``N`` instead of ``P + N`` and its reads are always
free, so the placement saves ``p (P + (1-p-a sigma)(S+2)/(1-a sigma))``
under read disturbance.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from .acc import analytical_acc
from .chains import GroupSpec
from .kernels import Env, get_kernel
from .markov import solve_chain
from .parameters import Deviation, WorkloadParams

__all__ = ["home_center_acc", "placement_advantage"]


def home_center_acc(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
) -> float:
    """Steady-state ``acc`` with the activity center at the home node.

    The home node issues the reads (rate ``1 - p - a*disturb``) and writes
    (rate ``p``) through the protocol's sequencer-side paths; the ``a``
    disturbing clients behave as in the standard deviation.  Only the
    disturbance deviations are supported (with multiple activity centers
    there is no single center to relocate).
    """
    if deviation not in (Deviation.READ, Deviation.WRITE):
        raise ValueError(
            "placement analysis applies to the disturbance deviations"
        )
    disturb = params.sigma if deviation is Deviation.READ else params.xi
    r = 1.0 - params.p - params.a * disturb
    if r < -1e-12:
        raise ValueError("infeasible workload")
    kernel = get_kernel(protocol)
    env = Env(S=params.S, P=params.P, N=params.N)
    groups: List[GroupSpec] = []
    if params.a:
        if deviation is Deviation.READ:
            groups.append(GroupSpec("dist", params.a, disturb, 0.0))
        else:
            groups.append(GroupSpec("dist", params.a, 0.0, disturb))
    home_rates = (("read", max(r, 0.0)), ("write", params.p))
    initial = kernel.initial_state(tuple(g.size for g in groups))
    member_states = kernel.member_states

    def transitions(state: Hashable):
        out: List[Tuple[float, float, Hashable]] = []
        for kind, rate in home_rates:
            if rate <= 0.0:
                continue
            cost, nxt = kernel.home_op(state, kind, env)
            out.append((rate, cost, nxt))
        for g, spec in enumerate(groups):
            counts = state[0][g]
            for si, s in enumerate(member_states):
                if not counts[si]:
                    continue
                for kind, krate in (("read", spec.read_rate),
                                    ("write", spec.write_rate)):
                    if krate <= 0.0:
                        continue
                    cost, nxt = kernel.op(state, g, s, kind, env)
                    out.append((counts[si] * krate, cost, nxt))
        return out

    return solve_chain(initial, transitions)


def placement_advantage(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
) -> Tuple[float, float, float]:
    """``(client_acc, home_acc, saving)`` for relocating the center home.

    ``saving = client_acc - home_acc``; positive means the home placement
    is cheaper (it always is, weakly: the home's own traffic disappears
    while the disturbers' costs are unchanged or better).
    """
    client = analytical_acc(protocol, params, deviation)
    home = home_center_acc(protocol, params, deviation)
    return client, home, client - home
