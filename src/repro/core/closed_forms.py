"""Closed-form steady-state ``acc`` expressions (paper eqns. (3)-(5), Table 6).

The paper derives the Write-Through expressions explicitly and tabulates the
rest in Table 6 (unreadable in the available scan; see DESIGN.md).  This
module provides:

* the paper's Write-Through formulas for all three deviations
  (eqns. (3), (4), (5)) and the trace probabilities behind them;
* closed forms we derived for Write-Through-V (all deviations), Dragon and
  Firefly (all deviations), and Berkeley, Synapse and Illinois under read
  disturbance, using the same repeated-independent-trials arguments as the
  paper's Section 4.3;
* ideal-workload formulas for every protocol (Section 5.1 bullets).

Every expression is vectorized over ``p`` and the disturbance parameter and
is unit-tested against the exact Markov evaluation of
:mod:`repro.core.chains` across random parameter draws.  Write-Once (all
deviations) and Berkeley/Synapse/Illinois under write disturbance and
multiple activity centers have no tractable product-form expression under
our reconstruction; use :func:`repro.core.chains.markov_acc` for them.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple, Union

import numpy as np

from .parameters import Deviation, WorkloadParams

__all__ = [
    "write_through_trace_probabilities",
    "acc_write_through_rd",
    "acc_write_through_wd",
    "acc_write_through_mac",
    "acc_write_through_v_rd",
    "acc_write_through_v_wd",
    "acc_write_through_v_mac",
    "acc_berkeley_rd",
    "acc_synapse_rd",
    "acc_illinois_rd",
    "acc_dragon",
    "acc_firefly",
    "acc_sc_abd_rd",
    "acc_sc_abd_wd",
    "acc_sc_abd_mac",
    "ideal_acc",
    "closed_form_acc",
    "has_closed_form",
    "weighted_quorum_acc",
]

ArrayLike = Union[float, np.ndarray]


def _div(num: ArrayLike, den: ArrayLike) -> ArrayLike:
    """Elementwise ``num / den`` with the convention ``0 / 0 = 0``.

    All closed-form quotients carry the denominator's zero as a factor of
    the numerator (e.g. ``a*sigma*p / (p + sigma)`` vanishes when
    ``p = sigma = 0``), so the convention realizes the correct limit.
    """
    num = np.asarray(num, dtype=float)
    den = np.asarray(den, dtype=float)
    out = np.divide(num, den, out=np.zeros_like(num * den, dtype=float),
                    where=den != 0)
    if out.ndim == 0:
        return float(out)
    return out


# ---------------------------------------------------------------------------
# Write-Through (paper Section 4.3)
# ---------------------------------------------------------------------------


def write_through_trace_probabilities(
    params: WorkloadParams, deviation: Deviation
) -> Dict[str, float]:
    """The steady-state trace probabilities ``pi_1 .. pi_6`` (Section 4.3).

    Sequencer traces ``tr5``/``tr6`` have probability zero in all three
    deviations (only clients act).  The probabilities sum to one.
    """
    p = params.p
    if deviation is Deviation.READ:
        a, s = params.a, params.sigma
        r = 1.0 - p - a * s
        pi1 = _div(r * r, 1.0 - a * s) + a * _div(s * s, p + s)
        pi2 = _div(p * r, 1.0 - a * s) + a * _div(s * p, p + s)
        pi3 = _div(p * r, 1.0 - a * s)
        pi4 = _div(p * p, 1.0 - a * s)
    elif deviation is Deviation.WRITE:
        a, x = params.a, params.xi
        r = 1.0 - p - a * x
        pi1 = r * r
        pi2 = (p + a * x) * r
        pi3 = p * r
        pi4 = p * (p + a * x) + a * x
    else:
        b = params.beta
        D = 1.0 + (b - 1.0) * p
        pi1 = _div((1.0 - p) ** 2, D)
        pi2 = _div(b * p * (1.0 - p), D)
        pi3 = _div(p * (1.0 - p), D)
        pi4 = _div(b * p * p, D)
    return {"tr1": pi1, "tr2": pi2, "tr3": pi3, "tr4": pi4,
            "tr5": 0.0, "tr6": 0.0}


def acc_write_through_rd(p: ArrayLike, sigma: ArrayLike, a: int,
                         S: float, P: float, N: int) -> ArrayLike:
    """Paper eqn. (3): Write-Through ``acc`` under read disturbance."""
    r = 1.0 - p - a * sigma
    term_read = _div(p * r, 1.0 - a * sigma) + a * _div(sigma * p, p + sigma)
    return term_read * (S + 2.0) + p * (P + N)


def acc_write_through_wd(p: ArrayLike, xi: ArrayLike, a: int,
                         S: float, P: float, N: int) -> ArrayLike:
    """Paper eqn. (4): Write-Through ``acc`` under write disturbance."""
    w = p + a * xi
    return w * (1.0 - w) * (S + 2.0) + w * (P + N)


def acc_write_through_mac(p: ArrayLike, beta: int,
                          S: float, P: float, N: int) -> ArrayLike:
    """Paper eqn. (5): Write-Through ``acc``, multiple activity centers."""
    D = 1.0 + (beta - 1.0) * p
    return _div(beta * p * (1.0 - p), D) * (S + 2.0) + p * (P + N)


# ---------------------------------------------------------------------------
# Write-Through-V (derived; write cost P+N+2 from VALID, P+S+N+2 from INVALID)
# ---------------------------------------------------------------------------


def acc_write_through_v_rd(p: ArrayLike, sigma: ArrayLike, a: int,
                           S: float, P: float, N: int) -> ArrayLike:
    """Write-Through-V under read disturbance.

    The activity center's copy is always valid in steady state (its own
    writes keep it valid, nobody else writes), so only the disturbers'
    read misses add to the write cost ``p (P + N + 2)``.
    """
    return p * (P + N + 2.0) + a * _div(sigma * p, p + sigma) * (S + 2.0)


def acc_write_through_v_wd(p: ArrayLike, xi: ArrayLike, a: int,
                           S: float, P: float, N: int) -> ArrayLike:
    """Write-Through-V under write disturbance.

    The activity center is invalid exactly when the globally last event
    was a disturbing write (probability ``a xi``); a disturber is valid
    only when the last write anywhere was its own (``xi / (p + a xi)``).
    An invalid writer's grant carries the user information (+``S``).
    """
    r = 1.0 - p - a * xi
    ac_invalid = a * xi
    dist_invalid = 1.0 - _div(np.asarray(xi, dtype=float), p + a * xi)
    return (
        (p + a * xi) * (P + N + 2.0)
        + S * (p * ac_invalid + a * xi * dist_invalid)
        + r * ac_invalid * (S + 2.0)
    )


def acc_write_through_v_mac(p: ArrayLike, beta: int,
                            S: float, P: float, N: int) -> ArrayLike:
    """Write-Through-V, multiple activity centers.

    A center is invalid iff the last event touching its state was another
    center's write: ``(beta - 1) p / (1 + (beta - 1) p)``.
    """
    D = 1.0 + (beta - 1.0) * p
    inv = _div((beta - 1.0) * p, D)
    return (
        (1.0 - p) * inv * (S + 2.0)
        + p * (P + N + 2.0)
        + p * inv * S
    )


# ---------------------------------------------------------------------------
# Berkeley / Synapse / Illinois under read disturbance (derived)
# ---------------------------------------------------------------------------


def acc_berkeley_rd(p: ArrayLike, sigma: ArrayLike, a: int,
                    S: float, P: float, N: int) -> ArrayLike:
    """Berkeley under read disturbance.

    In steady state the activity center owns the object (ownership moved on
    its first write and no one else writes).  Its write costs ``N`` exactly
    when a disturber read downgraded it to SHARED-DIRTY since the previous
    write (``a sigma / (p + a sigma)``); a disturber's read misses when the
    last of {activity-center write, its own read} was the write
    (``p / (p + sigma)``).
    """
    own_write = p * _div(a * np.asarray(sigma, float) * N, p + a * sigma)
    dist_miss = a * _div(sigma * p, p + sigma) * (S + 2.0)
    return own_write + dist_miss


def acc_synapse_rd(p: ArrayLike, sigma: ArrayLike, a: int,
                   S: float, P: float, N: int) -> ArrayLike:
    """Synapse under read disturbance.

    Terms, in order: ownership (re-)acquisition writes (``S + N + 1``) when
    the center lost DIRTY to a disturber read; the center's own read misses
    — the center is INVALID with probability
    ``a sigma p / ((1 - a sigma)(p + a sigma))``, the stationary mass of the
    embedded {DIRTY, INVALID, VALID} chain (a read on an own DIRTY copy
    keeps it DIRTY, so INVALID persists under further disturber reads);
    recall + retry disturber misses against the DIRTY center (``2S + 6``);
    plain disturber misses served by a VALID sequencer.
    """
    p = np.asarray(p, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    r = 1.0 - p - a * sigma
    ac_write = p * _div(a * sigma, p + a * sigma) * (S + N + 1.0)
    ac_invalid = _div(a * sigma * p, (1.0 - a * sigma) * (p + a * sigma))
    ac_read_miss = r * ac_invalid * (S + 2.0)
    dist_dirty = a * sigma * _div(p, p + a * sigma) * (2.0 * S + 6.0)
    dist_plain = _div(
        a * (a - 1.0) * sigma * sigma * p * (S + 2.0),
        (p + sigma) * (p + a * sigma),
    )
    return ac_write + ac_read_miss + dist_dirty + dist_plain


def acc_illinois_rd(p: ArrayLike, sigma: ArrayLike, a: int,
                    S: float, P: float, N: int) -> ArrayLike:
    """Illinois under read disturbance.

    Unlike Synapse the recalled center stays VALID, so the center never
    read-misses and its re-acquisition writes are data-less upgrades
    (``N + 1``); the remote-dirty disturber miss costs ``2S + 4``.
    """
    p = np.asarray(p, dtype=float)
    sigma = np.asarray(sigma, dtype=float)
    ac_write = p * _div(a * sigma, p + a * sigma) * (N + 1.0)
    dist_dirty = a * sigma * _div(p, p + a * sigma) * (2.0 * S + 4.0)
    dist_plain = _div(
        a * (a - 1.0) * sigma * sigma * p * (S + 2.0),
        (p + sigma) * (p + a * sigma),
    )
    return ac_write + dist_dirty + dist_plain


# ---------------------------------------------------------------------------
# Update protocols (derived; cost independent of copy states)
# ---------------------------------------------------------------------------


def acc_dragon(p: ArrayLike, disturb: ArrayLike, a: int, S: float, P: float,
               N: int, deviation: Deviation = Deviation.READ) -> ArrayLike:
    """Dragon: every write costs ``N (P + 1)``; reads are free.

    ``disturb`` is ``sigma``/``xi`` for the disturbance deviations and
    ignored for multiple activity centers (total write probability ``p``).
    """
    if deviation is Deviation.WRITE:
        w = p + a * np.asarray(disturb, dtype=float)
    else:
        w = np.asarray(p, dtype=float)
    return w * N * (P + 1.0)


def acc_firefly(p: ArrayLike, disturb: ArrayLike, a: int, S: float, P: float,
                N: int, deviation: Deviation = Deviation.READ) -> ArrayLike:
    """Firefly: every client write costs ``N (P + 1) + 1``; reads are free."""
    if deviation is Deviation.WRITE:
        w = p + a * np.asarray(disturb, dtype=float)
    else:
        w = np.asarray(p, dtype=float)
    return w * (N * (P + 1.0) + 1.0)


# ---------------------------------------------------------------------------
# SC-ABD majority quorums (extension; exact by construction)
# ---------------------------------------------------------------------------


def _quorum_core(N: int, weights=None) -> frozenset:
    """The cheapest (settled-path) quorum over nodes ``1 .. N+1``.

    Unweighted, that is the count-majority prefix ``{1 .. m}`` with
    ``m = (N + 1) // 2 + 1``.  With per-node vote ``weights`` (a mapping;
    unnamed nodes weigh 1) it is the shortest prefix of the nodes ranked
    by ``(-weight, id)`` whose weight sum exceeds half the total —
    mirroring :meth:`repro.sim.reconfig.MembershipView.quorum_prefix`,
    which the simulator's weighted quorum selection uses (a unit test
    pins the two together).
    """
    if weights is None:
        return frozenset(range(1, (N + 1) // 2 + 2))
    wmap = {int(n): float(w) for n, w in
            (weights.items() if hasattr(weights, "items") else weights)}
    nodes = sorted(range(1, N + 2),
                   key=lambda n: (-wmap.get(n, 1.0), n))
    total = sum(wmap.get(n, 1.0) for n in range(1, N + 2))
    gathered, core = 0.0, []
    for n in nodes:
        core.append(n)
        gathered += wmap.get(n, 1.0)
        if gathered > total / 2.0:
            break
    return frozenset(core)


def _quorum_fanout(node: int, N: int, weights=None) -> int:
    """Inter-node messages per SC-ABD phase leg for ``node``.

    Mirrors :func:`repro.protocols.sc_abd.quorum_fanout` (kept local so
    :mod:`repro.core` stays independent of the protocol layer; a unit
    test pins the two together): with ``n = N + 1`` nodes and majority
    ``m = n // 2 + 1``, a node inside the core quorum ``{1 .. m}`` sends
    ``m - 1`` remote messages per leg (its own leg is a free intra-node
    loop), a node outside sends ``m``.  With vote ``weights`` the core is
    the weighted-majority prefix (see :func:`_quorum_core`) and the same
    inside/outside rule applies to its size.
    """
    if weights is None:
        m = (N + 1) // 2 + 1
        return m - 1 if node <= m else m
    core = _quorum_core(N, weights)
    return len(core) - 1 if node in core else len(core)


def _sc_abd_costs(N: int, S: float, P: float) -> Tuple[float, float]:
    """Per-fanout-unit settled costs: read ``S + 2``, write ``P + 4``.

    A read is one two-message round trip per quorum member (query token +
    reply carrying the user information, ``1 + (S + 1)``); a write is two
    round trips (timestamp query/reply, then update carrying the write
    parameters plus ack, ``1 + 1 + (P + 1) + 1``).  Settled operations
    never read-repair (a completed write installed at the whole core),
    so these are exact, not bounds.
    """
    return S + 2.0, P + 4.0


def acc_sc_abd_rd(p: ArrayLike, sigma: ArrayLike, a: int,
                  S: float, P: float, N: int, weights=None) -> ArrayLike:
    """SC-ABD under read disturbance.

    Every operation is distributed (there are no local hits), so ``acc``
    is the workload mix weighted by the per-node quorum fan-out: the
    activity center (node 1, inside the core) pays ``q1`` legs per
    operation and each disturber ``j`` pays ``q_j``.  Optional per-node
    vote ``weights`` reshape every fan-out through the weighted-majority
    core (see :func:`_quorum_core`); ``None`` is the count majority.
    """
    read_cost, write_cost = _sc_abd_costs(N, S, P)
    q1 = _quorum_fanout(1, N, weights)
    r = 1.0 - p - a * np.asarray(sigma, dtype=float)
    acc = q1 * (np.asarray(p, dtype=float) * write_cost + r * read_cost)
    for j in range(2, a + 2):
        acc = acc + (_quorum_fanout(j, N, weights)
                     * np.asarray(sigma, float) * read_cost)
    if np.ndim(acc) == 0:
        return float(acc)
    return acc


def acc_sc_abd_wd(p: ArrayLike, xi: ArrayLike, a: int,
                  S: float, P: float, N: int, weights=None) -> ArrayLike:
    """SC-ABD under write disturbance (disturbers write instead of read)."""
    read_cost, write_cost = _sc_abd_costs(N, S, P)
    q1 = _quorum_fanout(1, N, weights)
    r = 1.0 - p - a * np.asarray(xi, dtype=float)
    acc = q1 * (np.asarray(p, dtype=float) * write_cost + r * read_cost)
    for j in range(2, a + 2):
        acc = acc + (_quorum_fanout(j, N, weights)
                     * np.asarray(xi, float) * write_cost)
    if np.ndim(acc) == 0:
        return float(acc)
    return acc


def acc_sc_abd_mac(p: ArrayLike, beta: int,
                   S: float, P: float, N: int, weights=None) -> ArrayLike:
    """SC-ABD, multiple activity centers (centers ``1 .. beta``)."""
    read_cost, write_cost = _sc_abd_costs(N, S, P)
    p = np.asarray(p, dtype=float)
    acc = np.zeros_like(p)
    for c in range(1, beta + 1):
        q = _quorum_fanout(c, N, weights)
        acc = acc + q * ((1.0 - p) / beta * read_cost
                         + p / beta * write_cost)
    if np.ndim(acc) == 0:
        return float(acc)
    return acc


# ---------------------------------------------------------------------------
# Ideal workload (Section 5.1 bullets) and the dispatch table
# ---------------------------------------------------------------------------


def ideal_acc(protocol: str, p: ArrayLike, S: float, P: float,
              N: int) -> ArrayLike:
    """Ideal-workload ``acc`` for any protocol (Section 5.1).

    Synapse, Write-Once, Illinois and Berkeley execute writes locally once
    ownership settles, so their ideal ``acc`` is 0; Write-Through pays
    ``p((1-p)(S+2) + P + N)``; Write-Through-V pays ``p(P+N+2)``; Dragon
    and Firefly pay ``p N (P+1)`` and ``p (N (P+1) + 1)``.
    """
    p = np.asarray(p, dtype=float)
    if protocol == "write_through":
        return p * ((1.0 - p) * (S + 2.0) + P + N)
    if protocol == "write_through_v":
        return p * (P + N + 2.0)
    if protocol in ("write_once", "synapse", "illinois", "berkeley"):
        out = np.zeros_like(p)
        return float(out) if out.ndim == 0 else out
    if protocol == "dragon":
        return p * N * (P + 1.0)
    if protocol == "firefly":
        return p * (N * (P + 1.0) + 1.0)
    if protocol == "sc_abd":
        # only the activity center acts; it sits inside the core quorum
        # and pays full quorum rounds for every operation (no hits).
        read_cost, write_cost = _sc_abd_costs(N, S, P)
        out = _quorum_fanout(1, N) * ((1.0 - p) * read_cost + p * write_cost)
        return float(out) if np.ndim(out) == 0 else out
    raise KeyError(f"unknown protocol {protocol!r}")


#: closed forms registry: (protocol, deviation) -> callable(params) -> acc
_FORMS: Dict[Tuple[str, Deviation], Callable[[WorkloadParams], float]] = {
    ("write_through", Deviation.READ): lambda w: acc_write_through_rd(
        w.p, w.sigma, w.a, w.S, w.P, w.N),
    ("write_through", Deviation.WRITE): lambda w: acc_write_through_wd(
        w.p, w.xi, w.a, w.S, w.P, w.N),
    ("write_through", Deviation.MULTIPLE_ACTIVITY_CENTERS):
        lambda w: acc_write_through_mac(w.p, w.beta, w.S, w.P, w.N),
    ("write_through_v", Deviation.READ): lambda w: acc_write_through_v_rd(
        w.p, w.sigma, w.a, w.S, w.P, w.N),
    ("write_through_v", Deviation.WRITE): lambda w: acc_write_through_v_wd(
        w.p, w.xi, w.a, w.S, w.P, w.N),
    ("write_through_v", Deviation.MULTIPLE_ACTIVITY_CENTERS):
        lambda w: acc_write_through_v_mac(w.p, w.beta, w.S, w.P, w.N),
    ("berkeley", Deviation.READ): lambda w: acc_berkeley_rd(
        w.p, w.sigma, w.a, w.S, w.P, w.N),
    ("synapse", Deviation.READ): lambda w: acc_synapse_rd(
        w.p, w.sigma, w.a, w.S, w.P, w.N),
    ("illinois", Deviation.READ): lambda w: acc_illinois_rd(
        w.p, w.sigma, w.a, w.S, w.P, w.N),
    ("dragon", Deviation.READ): lambda w: acc_dragon(
        w.p, w.sigma, w.a, w.S, w.P, w.N, Deviation.READ),
    ("dragon", Deviation.WRITE): lambda w: acc_dragon(
        w.p, w.xi, w.a, w.S, w.P, w.N, Deviation.WRITE),
    ("dragon", Deviation.MULTIPLE_ACTIVITY_CENTERS): lambda w: acc_dragon(
        w.p, 0.0, 0, w.S, w.P, w.N, Deviation.MULTIPLE_ACTIVITY_CENTERS),
    ("firefly", Deviation.READ): lambda w: acc_firefly(
        w.p, w.sigma, w.a, w.S, w.P, w.N, Deviation.READ),
    ("firefly", Deviation.WRITE): lambda w: acc_firefly(
        w.p, w.xi, w.a, w.S, w.P, w.N, Deviation.WRITE),
    ("firefly", Deviation.MULTIPLE_ACTIVITY_CENTERS): lambda w: acc_firefly(
        w.p, 0.0, 0, w.S, w.P, w.N, Deviation.MULTIPLE_ACTIVITY_CENTERS),
    ("sc_abd", Deviation.READ): lambda w: acc_sc_abd_rd(
        w.p, w.sigma, w.a, w.S, w.P, w.N),
    ("sc_abd", Deviation.WRITE): lambda w: acc_sc_abd_wd(
        w.p, w.xi, w.a, w.S, w.P, w.N),
    ("sc_abd", Deviation.MULTIPLE_ACTIVITY_CENTERS):
        lambda w: acc_sc_abd_mac(w.p, w.beta, w.S, w.P, w.N),
}


def has_closed_form(protocol: str, deviation: Deviation) -> bool:
    """Whether a closed form is available for this combination."""
    return (protocol, deviation) in _FORMS


def closed_form_acc(protocol: str, params: WorkloadParams,
                    deviation: Deviation) -> float:
    """Evaluate the closed form for ``(protocol, deviation)``.

    Raises:
        KeyError: when no closed form exists (use
            :func:`repro.core.chains.markov_acc` instead).
    """
    try:
        form = _FORMS[(protocol, deviation)]
    except KeyError:
        raise KeyError(
            f"no closed form for {protocol!r} under {deviation.value}; "
            "use markov_acc"
        ) from None
    return float(form(params))


def weighted_quorum_acc(params: WorkloadParams, deviation: Deviation,
                        weights) -> float:
    """The SC-ABD closed form under per-node vote ``weights``.

    The weighted-majority extension reshapes every quorum fan-out (see
    :func:`_quorum_fanout`), so the weighted prediction lives outside the
    unweighted :data:`_FORMS` dispatch; ``weights`` is a mapping or an
    iterable of ``(node, weight)`` pairs.
    """
    w = params
    if deviation is Deviation.READ:
        return float(acc_sc_abd_rd(w.p, w.sigma, w.a, w.S, w.P, w.N,
                                   weights=weights))
    if deviation is Deviation.WRITE:
        return float(acc_sc_abd_wd(w.p, w.xi, w.a, w.S, w.P, w.N,
                                   weights=weights))
    if deviation is Deviation.MULTIPLE_ACTIVITY_CENTERS:
        return float(acc_sc_abd_mac(w.p, w.beta, w.S, w.P, w.N,
                                    weights=weights))
    raise KeyError(
        f"no weighted quorum closed form under {deviation.value}"
    )
