"""Unified analytic evaluation: ``analytical_acc(protocol, params, deviation)``.

Dispatches between the closed forms (:mod:`repro.core.closed_forms`) and the
exact Markov evaluation (:mod:`repro.core.chains`).  Both agree to machine
precision wherever a closed form exists (enforced by the test suite), so
``method="auto"`` simply prefers the cheaper closed form.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Literal

from .chains import markov_acc
from .closed_forms import closed_form_acc, has_closed_form
from .parameters import Deviation, WorkloadParams

__all__ = ["analytical_acc", "acc_table"]

Method = Literal["auto", "closed_form", "markov"]


@lru_cache(maxsize=100_000)
def _markov_cached(protocol: str, params: WorkloadParams,
                   deviation: Deviation) -> float:
    # WorkloadParams is frozen/hashable, so chain solutions memoize cleanly
    # across surface grids and benchmarks.
    return markov_acc(protocol, params, deviation)


def analytical_acc(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    method: Method = "auto",
) -> float:
    """Steady-state average communication cost per operation (eqn. (1)).

    Args:
        protocol: registry name (e.g. ``"berkeley"``).
        params: the model parameters (Table 5).
        deviation: workload deviation (Section 4.2).
        method: ``"closed_form"`` forces the closed form (KeyError when
            none exists), ``"markov"`` forces the exact chain evaluation,
            ``"auto"`` picks the closed form when available.

    Returns:
        ``acc`` in communication-cost units.
    """
    if method == "closed_form":
        return closed_form_acc(protocol, params, deviation)
    if method == "markov":
        return _markov_cached(protocol, params, deviation)
    if has_closed_form(protocol, deviation):
        return closed_form_acc(protocol, params, deviation)
    return _markov_cached(protocol, params, deviation)


def acc_table(
    protocols: Iterable[str],
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    method: Method = "auto",
) -> dict:
    """``{protocol: acc}`` for a set of protocols at one parameter point."""
    return {
        name: analytical_acc(name, params, deviation, method)
        for name in protocols
    }
