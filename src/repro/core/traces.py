"""Traces of actions and their communication costs (paper Section 4.1).

Every shared-memory operation issued by an application process resolves to
exactly one *trace*: a finite sequence of atomic actions executed by the
protocol processes, possibly spanning several nodes.  Each action that sends
an inter-node message has one of four communication costs:

* ``0`` — the action executes inside a node;
* ``1`` — the message carries only the message token
  (``parameter_presence = '0'``);
* ``S + 1`` — the message carries the token plus the user-information part of
  a copy (``parameter_presence = 'ui'``);
* ``P + 1`` — the message carries the token plus write-operation parameters
  (``parameter_presence = 'w'``).

The *trace communication cost* ``cc_h`` is the sum of its actions' costs.
For a given protocol the set of traces ``TR`` is finite, and the steady-state
average communication cost per operation is ``acc = sum_h pi_h * cc_h`` with
``sum_h pi_h = 1`` (paper eqn. (1)).

This module provides symbolic cost terms so a trace's cost can be written
once (e.g. ``CostExpr(units=2, ui=1)`` for ``S + 2``) and evaluated for any
``(S, P, N)``; the concrete trace sets live in each protocol module and in
:mod:`repro.core.chains`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

__all__ = [
    "CostExpr",
    "Trace",
    "TraceSet",
    "WRITE_THROUGH_TRACES",
]


@dataclass(frozen=True)
class CostExpr:
    """A symbolic communication cost ``units + ui*(S+1) + w*(P+1) + n_coeff*N``.

    ``units`` counts token-only messages, ``ui`` counts whole-copy messages,
    ``w`` counts parameter-carrying messages, and ``n_coeff`` counts
    broadcast fan-outs whose width is the number of clients ``N`` (e.g. the
    sequencer's ``N`` invalidations in trace ``tr6``).  ``n_offset`` adds a
    constant to the fan-out width (e.g. ``N - 1`` invalidations is
    ``n_coeff=1, n_offset=-1``).  ``n_w_coeff`` counts parameter-carrying
    broadcasts of width ``N`` (Dragon/Firefly updates cost ``N * (P + 1)``).
    """

    units: float = 0.0
    ui: int = 0
    w: int = 0
    n_coeff: float = 0.0
    n_offset: float = 0.0
    n_w_coeff: float = 0.0

    def evaluate(self, S: float, P: float, N: int) -> float:
        """Evaluate the cost for concrete ``S``, ``P`` and ``N``."""
        return (
            self.units
            + self.ui * (S + 1.0)
            + self.w * (P + 1.0)
            + self.n_coeff * N
            + self.n_offset
            + self.n_w_coeff * N * (P + 1.0)
        )

    def __add__(self, other: "CostExpr") -> "CostExpr":
        return CostExpr(
            units=self.units + other.units,
            ui=self.ui + other.ui,
            w=self.w + other.w,
            n_coeff=self.n_coeff + other.n_coeff,
            n_offset=self.n_offset + other.n_offset,
            n_w_coeff=self.n_w_coeff + other.n_w_coeff,
        )

    def describe(self) -> str:
        """Human-readable form such as ``'(P+1) + (N-1)'`` for ``P + N``."""
        parts: List[str] = []
        if self.ui:
            parts.append(f"{self.ui}*(S+1)" if self.ui != 1 else "(S+1)")
        if self.w:
            parts.append(f"{self.w}*(P+1)" if self.w != 1 else "(P+1)")
        if self.n_w_coeff:
            c = "" if self.n_w_coeff == 1 else f"{self.n_w_coeff:g}*"
            parts.append(f"{c}N*(P+1)")
        if self.n_coeff:
            width = "N" if self.n_offset == 0 else f"(N{self.n_offset:+g})"
            c = "" if self.n_coeff == 1 else f"{self.n_coeff:g}*"
            parts.append(f"{c}{width}")
        elif self.n_offset:
            parts.append(f"{self.n_offset:+g}")
        if self.units or not parts:
            parts.append(f"{self.units:g}")
        return " + ".join(parts)


#: Cost of a local (intra-node) action.
LOCAL = CostExpr()
#: Cost of one token-only inter-node message.
TOKEN = CostExpr(units=1.0)
#: Cost of one token + user-information message.
UI_MESSAGE = CostExpr(ui=1)
#: Cost of one token + write-parameters message.
PARAMS_MESSAGE = CostExpr(w=1)


@dataclass(frozen=True)
class Trace:
    """One element of a protocol's finite trace set ``TR``.

    Args:
        name: the paper's label (``tr1`` ... ``tr6`` for Write-Through) or a
            descriptive label for reconstructed protocols.
        description: what triggers the trace and what it does.
        cost: symbolic communication cost.
        initiator: ``"client"`` or ``"sequencer"``.
        op: ``"read"`` or ``"write"``.
    """

    name: str
    description: str
    cost: CostExpr
    initiator: str
    op: str

    def cc(self, S: float, P: float, N: int) -> float:
        """The trace communication cost ``cc_h`` for concrete parameters."""
        return self.cost.evaluate(S, P, N)


class TraceSet:
    """A protocol's finite set of traces with probability bookkeeping.

    Supports evaluating the paper's eqn. (1),
    ``acc = sum_h pi_h * cc_h``, given a probability assignment.
    """

    def __init__(self, protocol: str, traces: Iterable[Trace]):
        self.protocol = protocol
        self._traces: Dict[str, Trace] = {}
        for tr in traces:
            if tr.name in self._traces:
                raise ValueError(f"duplicate trace name {tr.name!r}")
            self._traces[tr.name] = tr

    def __iter__(self):
        return iter(self._traces.values())

    def __len__(self) -> int:
        return len(self._traces)

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __getitem__(self, name: str) -> Trace:
        return self._traces[name]

    @property
    def names(self) -> Tuple[str, ...]:
        """Trace names in insertion order."""
        return tuple(self._traces)

    def average_cost(
        self,
        probabilities: Mapping[str, float],
        S: float,
        P: float,
        N: int,
        *,
        check_simplex: bool = True,
        tol: float = 1e-9,
    ) -> float:
        """Evaluate ``acc = sum_h pi_h * cc_h`` (paper eqn. (1)).

        Args:
            probabilities: map from trace name to steady-state probability
                ``pi_h``; missing traces count as probability 0.
            S, P, N: cost/system parameters.
            check_simplex: verify that the probabilities sum to 1.
            tol: simplex tolerance.

        Raises:
            KeyError: if ``probabilities`` references an unknown trace.
            ValueError: if the probabilities do not form a simplex.
        """
        total_p = 0.0
        acc = 0.0
        for name, pi in probabilities.items():
            if name not in self._traces:
                raise KeyError(
                    f"unknown trace {name!r} for protocol {self.protocol!r}"
                )
            if pi < -tol:
                raise ValueError(f"negative probability for {name!r}: {pi}")
            total_p += pi
            acc += pi * self._traces[name].cc(S, P, N)
        if check_simplex and abs(total_p - 1.0) > tol:
            raise ValueError(
                f"trace probabilities sum to {total_p!r}, expected 1"
            )
        return acc


#: The six traces of the distributed Write-Through protocol (Section 4.1,
#: Figures 2-4).  ``cc1 = 0``, ``cc2 = S + 2``, ``cc3 = cc4 = P + N``,
#: ``cc5 = 0``, ``cc6 = N``.
WRITE_THROUGH_TRACES = TraceSet(
    "write_through",
    [
        Trace(
            "tr1",
            "client read of a VALID copy; executes locally",
            LOCAL,
            "client",
            "read",
        ),
        Trace(
            "tr2",
            "client read of an INVALID copy; R-PER to the sequencer, "
            "R-GNT + user information back (Figure 2)",
            CostExpr(units=1.0, ui=1),  # 1 + (S+1) = S + 2
            "client",
            "read",
        ),
        Trace(
            "tr3",
            "client write, copy VALID; W-PER + parameters to the sequencer, "
            "W-INV to the other N-1 clients (Figure 3)",
            CostExpr(w=1, n_coeff=1.0, n_offset=-1.0),  # (P+1) + (N-1) = P + N
            "client",
            "write",
        ),
        Trace(
            "tr4",
            "client write, copy INVALID; same messages as tr3 (Figure 3)",
            CostExpr(w=1, n_coeff=1.0, n_offset=-1.0),
            "client",
            "write",
        ),
        Trace(
            "tr5",
            "sequencer read; the sequencer's copy is always VALID",
            LOCAL,
            "sequencer",
            "read",
        ),
        Trace(
            "tr6",
            "sequencer write; W-INV to all N clients (Figure 4)",
            CostExpr(n_coeff=1.0),
            "sequencer",
            "write",
        ),
    ],
)
