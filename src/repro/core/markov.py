"""Generic steady-state Markov engine for the analytic model (Section 4.3).

The paper treats the operation stream as repeated independent trials over a
finite event sample space; the protocol state evolves as a finite Markov
chain driven by those trials, and ``acc`` is the stationary expectation of
the per-trial communication cost.  This module provides the generic part:

* :func:`enumerate_chain` — breadth-first enumeration of the reachable state
  space from a transition generator;
* :func:`stationary_distribution` — dense linear solve of ``pi P = pi``,
  ``sum(pi) = 1`` (numpy; the reduced chains have at most a few hundred
  states, so a dense solve is both exact and fast);
* :func:`expected_cost` — ``acc = sum_s pi(s) * sum_e prob(e) cost(e | s)``,
  the paper's eqn. (1) evaluated against the chain instead of a hand-derived
  trace list.

The protocol-specific transition generators live in
:mod:`repro.core.chains`.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "Transition",
    "enumerate_chain",
    "stationary_distribution",
    "expected_cost",
    "solve_chain",
]

#: one outgoing transition: (probability, communication cost, next state)
Transition = Tuple[float, float, Hashable]

TransitionFn = Callable[[Hashable], Sequence[Transition]]


def enumerate_chain(
    initial: Hashable,
    transitions: TransitionFn,
    max_states: int = 200_000,
) -> Tuple[List[Hashable], Dict[Hashable, int]]:
    """Enumerate all states reachable from ``initial``.

    Returns the state list (index order = discovery order) and the inverse
    index map.  Raises ``RuntimeError`` if the reduced chain exceeds
    ``max_states`` — reduced chains are small by construction, so hitting
    the cap indicates a kernel bug (e.g. unbounded counters).
    """
    states: List[Hashable] = [initial]
    index: Dict[Hashable, int] = {initial: 0}
    frontier = [initial]
    while frontier:
        next_frontier: List[Hashable] = []
        for s in frontier:
            for _prob, _cost, t in transitions(s):
                if t not in index:
                    if len(states) >= max_states:
                        raise RuntimeError(
                            f"chain exceeded {max_states} states; "
                            "kernel state space is not properly reduced"
                        )
                    index[t] = len(states)
                    states.append(t)
                    next_frontier.append(t)
        frontier = next_frontier
    return states, index


def _transition_matrix(
    states: Sequence[Hashable],
    index: Dict[Hashable, int],
    transitions: TransitionFn,
    tol: float = 1e-9,
) -> np.ndarray:
    n = len(states)
    P = np.zeros((n, n))
    for i, s in enumerate(states):
        row_sum = 0.0
        for prob, _cost, t in transitions(s):
            if prob < -tol:
                raise ValueError(f"negative transition probability from {s!r}")
            P[i, index[t]] += prob
            row_sum += prob
        if abs(row_sum - 1.0) > 1e-7:
            raise ValueError(
                f"transition probabilities from {s!r} sum to {row_sum}, "
                "expected 1 (kernel must enumerate the full sample space)"
            )
    return P


def stationary_distribution(P: np.ndarray) -> np.ndarray:
    """Solve ``pi P = pi`` with ``sum(pi) = 1`` by a dense linear solve.

    The reduced chains driven by an ergodic trial process are unichain
    (one recurrent class, possibly with transient start-up states), so the
    linear system ``(P^T - I) pi = 0`` with the normalization row has a
    unique solution.  A least-squares fallback covers the measure-zero
    parameter corners (e.g. ``p = 0``) where the chain decomposes; any
    stationary distribution then yields the correct cost because absorbing
    subclasses at those corners are cost-equivalent.
    """
    n = P.shape[0]
    A = P.T - np.eye(n)
    A[-1, :] = 1.0
    b = np.zeros(n)
    b[-1] = 1.0
    pi = None
    try:
        candidate = np.linalg.solve(A, b)
        if np.all(np.isfinite(candidate)) and candidate.min() > -1e-8:
            pi = candidate
    except np.linalg.LinAlgError:
        pi = None
    if pi is None:
        pi = _cesaro_limit(P)
    # clean tiny negative round-off and renormalize.
    pi = np.where(pi < 0, 0.0, pi)
    total = pi.sum()
    if total <= 0:
        raise RuntimeError("stationary solve failed (zero mass)")
    return pi / total


def _cesaro_limit(P: np.ndarray, start: int = 0, iters: int = 20_000,
                  tol: float = 1e-13) -> np.ndarray:
    """Cesàro-averaged power iteration from a start state.

    Used when the direct solve is singular (degenerate parameter corners
    can split the chain into several closed classes): the Cesàro average
    from the *initial* state weighs exactly the classes the system can
    actually reach, and converges for periodic chains as well.
    """
    n = P.shape[0]
    v = np.zeros(n)
    v[start] = 1.0
    avg = np.zeros(n)
    prev = None
    for k in range(1, iters + 1):
        v = v @ P
        avg += (v - avg) / k
        if k % 64 == 0:
            if prev is not None and np.abs(avg - prev).max() < tol:
                break
            prev = avg.copy()
    return avg


def expected_cost(
    states: Sequence[Hashable],
    pi: np.ndarray,
    transitions: TransitionFn,
) -> float:
    """``acc = sum_s pi(s) sum_e prob(e) cost(e | s)`` (paper eqn. (1))."""
    acc = 0.0
    for i, s in enumerate(states):
        if pi[i] == 0.0:
            continue
        per_state = 0.0
        for prob, cost, _t in transitions(s):
            per_state += prob * cost
        acc += pi[i] * per_state
    return acc


def solve_chain(initial: Hashable, transitions: TransitionFn) -> float:
    """Convenience: enumerate, solve and return the steady-state cost.

    For chains with transient start-up states (e.g. every copy INVALID at
    time zero) the stationary distribution automatically assigns them zero
    mass, exactly matching the paper's warm-up discard.
    """
    states, index = enumerate_chain(initial, transitions)
    P = _transition_matrix(states, index, transitions)
    pi = stationary_distribution(P)
    return expected_cost(states, pi, transitions)
