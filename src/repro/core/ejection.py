"""Eject operations in the analytic model (paper Section 6 outlook).

The paper's conclusion proposes extending the model with "other types of
operations (eject operation ...) and the influence of some distributed
system parameters, such as the size of the free memory pool".  This module
adds the eject operation to the steady-state analysis: every acting client
ejects its replica with a per-slot probability (the stationary eviction
pressure a finite replica pool induces), and the chain evaluation yields
the exact cost including the extra misses and write-backs ejects cause.

The sample space of the *ejecting read disturbance* workload is

* activity center: read ``1 - p - e_ac - a (sigma + e_d)``, write ``p``,
  eject ``e_ac``;
* each of the ``a`` disturbers: read ``sigma``, eject ``e_d``;

and analogously for the write-disturbance deviation with ``xi``.  A
Write-Through closed form is derived for validation (the same
last-relevant-event argument as the paper's Section 4.3, with ejects
acting as self-invalidations).
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from .chains import GroupSpec
from .kernels import Env, get_kernel
from .markov import solve_chain
from .parameters import Deviation, WorkloadParams

__all__ = ["ejecting_markov_acc", "acc_write_through_rd_eject"]


def ejecting_markov_acc(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    eject_ac: float = 0.0,
    eject_dist: float = 0.0,
) -> float:
    """Exact ``acc`` with eject events mixed into the trial process.

    Args:
        protocol: registry name (paper protocols and extensions).
        params: workload parameters; ``params.p`` is the write probability
            and ``params.sigma``/``params.xi`` the disturbance rates.
        deviation: READ or WRITE disturbance (MULTIPLE_ACTIVITY_CENTERS is
            supported with ``eject_ac`` applying to every center).
        eject_ac: per-slot eject probability of the activity center(s).
        eject_dist: per-slot eject probability of each disturber.

    Note the feasibility constraint
    ``p + e_ac + a (disturb + e_d) <= 1``; the activity-center read rate
    absorbs the remainder.
    """
    kernel = get_kernel(protocol)
    env = Env(S=params.S, P=params.P, N=params.N)
    if deviation is Deviation.MULTIPLE_ACTIVITY_CENTERS:
        beta = params.beta
        read = (1.0 - params.p) / beta - eject_ac
        if read < -1e-12:
            raise ValueError("eject rate exceeds the centers' read budget")
        groups = [GroupSpec("centers", beta, max(read, 0.0),
                            params.p / beta, eject_ac)]
    else:
        disturb = params.sigma if deviation is Deviation.READ else params.xi
        r = 1.0 - params.p - eject_ac - params.a * (disturb + eject_dist)
        if r < -1e-12:
            raise ValueError(
                "infeasible ejecting workload: rates exceed the simplex"
            )
        groups = [GroupSpec("ac", 1, max(r, 0.0), params.p, eject_ac)]
        if params.a:
            if deviation is Deviation.READ:
                groups.append(
                    GroupSpec("dist", params.a, disturb, 0.0, eject_dist)
                )
            else:
                groups.append(
                    GroupSpec("dist", params.a, 0.0, disturb, eject_dist)
                )
    initial = kernel.initial_state(tuple(g.size for g in groups))
    member_states = kernel.member_states

    def transitions(state: Hashable) -> List[Tuple[float, float, Hashable]]:
        out: List[Tuple[float, float, Hashable]] = []
        for g, spec in enumerate(groups):
            counts = state[0][g]
            for si, s in enumerate(member_states):
                if not counts[si]:
                    continue
                for kind, rate in (("read", spec.read_rate),
                                   ("write", spec.write_rate),
                                   ("eject", spec.eject_rate)):
                    if rate <= 0.0:
                        continue
                    cost, nxt = kernel.op(state, g, s, kind, env)
                    out.append((counts[si] * rate, cost, nxt))
        return out

    return solve_chain(initial, transitions)


def acc_write_through_rd_eject(
    p: float, sigma: float, a: int, e_ac: float, e_d: float,
    S: float, P: float, N: int,
) -> float:
    """Write-Through closed form with ejects, read disturbance.

    An eject acts exactly like the center's self-invalidating write minus
    the write-through traffic, so the last-relevant-event argument gives:

    * the center's copy is valid iff the last of {Ar, Aw, E_ac} was Ar;
    * disturber ``i``'s copy is valid iff the last of {Or_i, Aw, E_i} was
      its own read (other centers' ejects do not touch it);
    * ejects themselves cost nothing in Write-Through.
    """
    r = 1.0 - p - e_ac - a * (sigma + e_d)
    if r < -1e-12:
        raise ValueError("infeasible ejecting workload")
    r = max(r, 0.0)
    acc = 0.0
    denom_ac = r + p + e_ac
    if denom_ac > 0:
        acc += r * ((p + e_ac) / denom_ac) * (S + 2.0)
    denom_d = sigma + p + e_d
    if denom_d > 0:
        acc += a * sigma * ((p + e_d) / denom_d) * (S + 2.0)
    acc += p * (P + N)
    return acc
