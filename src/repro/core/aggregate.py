"""Multi-object aggregation of the per-object analysis (paper Section 2).

"The global address space is decomposed into M disjoint shared data
blocks ... Further on, we concentrate our analysis on only one data
block."  The paper can do that because its objects are independent and
identically parameterized, so the per-object ``acc`` *is* the system
``acc``.  This module handles the general case: objects with different
access weights, workload parameters, or even different deviations (e.g. a
hot shared object next to per-node private objects, or rotated activity
centers).

Because protocol state is per object and operations on different objects
never interact (each object has its own queues and protocol processes —
verified by the simulator tests), the system-wide steady-state cost is
the access-weighted mean of the per-object costs:

``acc_system = sum_j w_j * acc_j``  with  ``sum_j w_j = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .acc import analytical_acc
from .parameters import Deviation, WorkloadParams

__all__ = ["ObjectSpec", "aggregate_acc", "rotated_roles_acc"]


@dataclass(frozen=True)
class ObjectSpec:
    """One shared object's share of the computation.

    Args:
        weight: fraction of all operations addressing this object.
        params: the object's workload parameters.
        deviation: the object's deviation (objects may differ).
    """

    weight: float
    params: WorkloadParams
    deviation: Deviation = Deviation.READ

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("object weight must be non-negative")


def aggregate_acc(protocol: str, objects: Sequence[ObjectSpec],
                  normalize: bool = False) -> float:
    """System-wide ``acc`` over heterogeneous objects.

    Args:
        protocol: registry name.
        objects: per-object specifications; weights must sum to 1 unless
            ``normalize`` is set.
        normalize: rescale the weights to sum to 1.

    Raises:
        ValueError: on an empty list or a non-simplex weight vector.
    """
    if not objects:
        raise ValueError("need at least one object")
    total = sum(o.weight for o in objects)
    if normalize:
        if total <= 0:
            raise ValueError("weights must have positive mass")
        scale = 1.0 / total
    else:
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"object weights sum to {total}, expected 1")
        scale = 1.0
    return sum(
        o.weight * scale * analytical_acc(protocol, o.params, o.deviation)
        for o in objects
    )


def rotated_roles_acc(protocol: str, params: WorkloadParams, M: int,
                      deviation: Deviation = Deviation.READ) -> float:
    """``acc`` for the rotated-roles multi-object workload.

    :class:`~repro.workloads.synthetic.SyntheticWorkload` with
    ``rotate_roles=True`` gives object ``j`` the same parameter structure
    with roles shifted around the client ring; by symmetry every object's
    ``acc`` equals the single-object value, so the aggregate is identical —
    this helper exists to make that argument executable and to pair with
    the simulator's rotated workloads in tests.
    """
    if M < 1:
        raise ValueError("M must be at least 1")
    per_object = analytical_acc(protocol, params, deviation)
    specs = [ObjectSpec(1.0 / M, params, deviation) for _ in range(M)]
    aggregated = aggregate_acc(protocol, specs)
    assert abs(aggregated - per_object) < 1e-9
    return aggregated
