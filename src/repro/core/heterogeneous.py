"""Heterogeneous (non-homogeneous) disturbance — generalizing Section 4.2.

The paper introduces per-client probabilities ``sigma_k`` / ``xi_k`` but
immediately specializes "to simplify the presentation" to the homogeneous
case ``sigma_k = sigma``.  The chain framework does not need that
simplification: giving every disturbing client its own singleton actor
group evaluates the **exact** steady-state cost for arbitrary per-client
rates.

This module provides that generalization, plus the heterogeneous form of
the paper's eqn. (3) for Write-Through (the product-form argument of
Section 4.3 goes through per client):

``acc = (p r / (1 - A) + sum_k sigma_k p / (p + sigma_k)) (S+2) + p (P+N)``

with ``A = sum_k sigma_k`` and ``r = 1 - p - A``.
"""

from __future__ import annotations

from typing import Hashable, Sequence


from .chains import GroupSpec
from .kernels import Env, get_kernel
from .markov import solve_chain

__all__ = [
    "heterogeneous_markov_acc",
    "acc_write_through_rd_hetero",
    "validate_rates",
]


def validate_rates(p: float, rates: Sequence[float], kind: str) -> None:
    """Check the heterogeneous probability simplex ``p + sum(rates) <= 1``."""
    rates = list(rates)
    if any(r < 0 for r in rates):
        raise ValueError(f"negative {kind} rate in {rates}")
    total = p + sum(rates)
    if total > 1.0 + 1e-12:
        raise ValueError(
            f"infeasible heterogeneous workload: p + sum({kind}) = "
            f"{total:.6f} > 1"
        )


def heterogeneous_markov_acc(
    protocol: str,
    N: int,
    p: float,
    S: float,
    P: float,
    read_rates: Sequence[float] = (),
    write_rates: Sequence[float] = (),
) -> float:
    """Exact ``acc`` with per-client disturbance rates.

    Args:
        protocol: registry name.
        N: number of clients.
        p: activity-center write probability (the center reads with the
            remaining probability).
        S, P: cost parameters.
        read_rates: per-disturbing-client read probabilities (``sigma_k``).
        write_rates: per-disturbing-client write probabilities (``xi_k``).
            A client may both read and write by appearing in both lists
            (aligned by index; pad with zeros).

    Returns:
        the steady-state average communication cost per operation.
    """
    reads = list(read_rates)
    writes = list(write_rates)
    n_dist = max(len(reads), len(writes))
    reads += [0.0] * (n_dist - len(reads))
    writes += [0.0] * (n_dist - len(writes))
    if n_dist > N - 1:
        raise ValueError(f"{n_dist} disturbers but only {N - 1} other clients")
    validate_rates(p, [r + w for r, w in zip(reads, writes)], "disturbance")

    r_ac = 1.0 - p - sum(reads) - sum(writes)
    kernel = get_kernel(protocol)
    env = Env(S=S, P=P, N=N)
    groups = [GroupSpec("ac", 1, max(r_ac, 0.0), p)] + [
        GroupSpec(f"d{k}", 1, reads[k], writes[k]) for k in range(n_dist)
    ]
    initial = kernel.initial_state(tuple(g.size for g in groups))
    member_states = kernel.member_states

    def transitions(state: Hashable):
        out = []
        for g, spec in enumerate(groups):
            counts = state[0][g]
            for si, s in enumerate(member_states):
                if not counts[si]:
                    continue
                for kind, rate in (("read", spec.read_rate),
                                   ("write", spec.write_rate)):
                    if rate <= 0.0:
                        continue
                    cost, nxt = kernel.op(state, g, s, kind, env)
                    out.append((counts[si] * rate, cost, nxt))
        return out

    return solve_chain(initial, transitions)


def acc_write_through_rd_hetero(
    p: float, sigmas: Sequence[float], S: float, P: float, N: int
) -> float:
    """Heterogeneous read-disturbance closed form for Write-Through.

    Reduces to the paper's eqn. (3) when all ``sigma_k`` are equal; equals
    :func:`heterogeneous_markov_acc` in general (property-tested).
    """
    sigmas = [float(s) for s in sigmas]
    validate_rates(p, sigmas, "sigma")
    A = sum(sigmas)
    r = 1.0 - p - A
    if 1.0 - A > 0:
        term = p * r / (1.0 - A)
    else:
        term = 0.0
    for s in sigmas:
        if p + s > 0:
            term += s * p / (p + s)
    return term * (S + 2.0) + p * (P + N)
