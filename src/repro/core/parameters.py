"""Workload and system parameters of the analytic model (paper Section 4.2, Table 5).

The paper characterizes a synthetic workload for **one shared object** with
five workload parameters plus three system/cost parameters:

========  =====================================================================
``N``     number of clients (the system has ``N + 1`` nodes; node ``N + 1`` is
          the *sequencer*)
``a``     number of clients, other than the activity center, that issue the
          disturbing operations (``a < N``)
``beta``  number of clients declared as activity centers (multiple activity
          centers deviation)
``p``     steady-state probability that an operation slot is a *write* issued
          by the activity center (or, for the multiple-activity-centers
          deviation, the **total** write probability across the ``beta``
          centers)
``sigma`` per-client probability of a disturbing *read* (read disturbance)
``xi``    per-client probability of a disturbing *write* (write disturbance)
``S``     communication cost of transmitting the user-information part of a
          copy (a whole-copy transfer costs ``S + 1`` including the token)
``P``     communication cost of transmitting write-operation parameters (a
          parameter-carrying message costs ``P + 1`` including the token)
========  =====================================================================

Every operation slot is an independent trial; the events of a deviation's
sample space are mutually exclusive and exhaustive, so the probabilities must
form a simplex:

* read disturbance: ``P(Ar) = 1 - p - a * sigma >= 0``
* write disturbance: ``P(Ar) = 1 - p - a * xi >= 0``
* multiple activity centers: each of the ``beta`` centers reads with
  probability ``(1 - p) / beta`` and writes with probability ``p / beta``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Iterator, List, Optional, Sequence, Tuple

from ..util import reject_unknown_keys


__all__ = [
    "Deviation",
    "WorkloadParams",
    "feasible_sigma_max",
    "feasible_xi_max",
    "object_access_probs",
    "parameter_grid",
]


class Deviation(Enum):
    """The three deviations from the ideal workload analyzed by the paper.

    The *ideal* workload (each object accessed by exactly one node) is the
    degenerate case of any deviation with ``a = 0`` / ``sigma = 0`` /
    ``xi = 0`` / ``beta = 1``.
    """

    #: ``a`` clients besides the activity center issue read operations.
    READ = "read_disturbance"
    #: ``a`` clients besides the activity center issue write operations.
    WRITE = "write_disturbance"
    #: ``beta`` symmetric activity centers share the object.
    MULTIPLE_ACTIVITY_CENTERS = "multiple_activity_centers"

    @property
    def short_name(self) -> str:
        """Compact label used in benchmark tables (``RD``/``WD``/``MAC``)."""
        return {
            Deviation.READ: "RD",
            Deviation.WRITE: "WD",
            Deviation.MULTIPLE_ACTIVITY_CENTERS: "MAC",
        }[self]


def _check_probability(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


@dataclass(frozen=True)
class WorkloadParams:
    """Immutable bundle of the model parameters (paper Table 5).

    Only the parameters relevant to the selected deviation are used by a
    given formula; irrelevant ones may be left at their defaults.

    Args:
        N: number of clients (``N + 1`` nodes in total).
        p: activity-center write probability (total write probability for the
            multiple-activity-centers deviation).
        a: number of disturbing clients (read/write disturbance deviations).
        sigma: per-client disturbing-read probability.
        xi: per-client disturbing-write probability.
        beta: number of activity centers (multiple-activity-centers
            deviation).
        S: cost of a user-information (whole copy) transfer, excluding the
            token.
        P: cost of a write-parameter transfer, excluding the token.
        hot_set: optional working-set size — with ``hot_fraction``, the
            first ``hot_set`` objects receive ``hot_fraction`` of the
            accesses (uniformly within the hot set) and the remaining
            objects split the rest.  Both knobs must be given together;
            ``None`` (the default) keeps the paper's uniform object
            selection bit-identical.  Drives the bounded-replica-cache
            study (:mod:`repro.sim.cache`): a cache of capacity ``C >=
            hot_set`` captures almost all accesses.
        hot_fraction: probability mass on the hot set, in ``(0, 1]``.

    Raises:
        ValueError: if any constraint of Section 4.2 is violated (negative
            sizes, probabilities outside ``[0, 1]``, infeasible simplex such
            as ``p + a * sigma > 1``, or a half-specified hot set).
    """

    N: int
    p: float
    a: int = 0
    sigma: float = 0.0
    xi: float = 0.0
    beta: int = 1
    S: float = 100.0
    P: float = 30.0
    hot_set: Optional[int] = None
    hot_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.N < 1:
            raise ValueError(f"N must be >= 1, got {self.N}")
        if not (0 <= self.a < max(self.N, 1) + 1):
            raise ValueError(f"a must satisfy 0 <= a <= N, got a={self.a}, N={self.N}")
        if self.a > self.N:
            raise ValueError(f"a must be <= N, got a={self.a}, N={self.N}")
        if not (1 <= self.beta <= self.N):
            raise ValueError(f"beta must satisfy 1 <= beta <= N, got {self.beta}")
        _check_probability("p", self.p)
        _check_probability("sigma", self.sigma)
        _check_probability("xi", self.xi)
        if self.S < 0 or self.P < 0:
            raise ValueError("S and P must be non-negative")
        # Simplex feasibility for the two disturbance deviations.  A params
        # bundle is allowed to be infeasible for a deviation it is not used
        # with, so we only reject combinations that are infeasible for every
        # deviation they parameterize.
        tol = 1e-12
        if self.sigma > 0 and self.p + self.a * self.sigma > 1.0 + tol:
            raise ValueError(
                f"infeasible read disturbance: p + a*sigma = "
                f"{self.p + self.a * self.sigma:.6f} > 1"
            )
        if self.xi > 0 and self.p + self.a * self.xi > 1.0 + tol:
            raise ValueError(
                f"infeasible write disturbance: p + a*xi = "
                f"{self.p + self.a * self.xi:.6f} > 1"
            )
        if (self.hot_set is None) != (self.hot_fraction is None):
            raise ValueError(
                "hot_set and hot_fraction must be given together "
                f"(got hot_set={self.hot_set!r}, "
                f"hot_fraction={self.hot_fraction!r})"
            )
        if self.hot_set is not None:
            if self.hot_set < 1:
                raise ValueError(
                    f"hot_set must be at least 1, got {self.hot_set}"
                )
            if not (0.0 < self.hot_fraction <= 1.0):
                raise ValueError(
                    f"hot_fraction must lie in (0, 1], "
                    f"got {self.hot_fraction!r}"
                )

    # ------------------------------------------------------------------
    # Derived event probabilities (Section 4.2)
    # ------------------------------------------------------------------

    @property
    def read_prob_activity_center_rd(self) -> float:
        """``P(Ar) = 1 - p - a*sigma`` under read disturbance."""
        return max(0.0, 1.0 - self.p - self.a * self.sigma)

    @property
    def read_prob_activity_center_wd(self) -> float:
        """``P(Ar) = 1 - p - a*xi`` under write disturbance."""
        return max(0.0, 1.0 - self.p - self.a * self.xi)

    @property
    def per_center_write_prob(self) -> float:
        """``P(Aw_k) = p / beta`` for each of the ``beta`` activity centers."""
        return self.p / self.beta

    @property
    def per_center_read_prob(self) -> float:
        """``P(Ar_k) = (1 - p) / beta`` for each activity center."""
        return (1.0 - self.p) / self.beta

    # ------------------------------------------------------------------
    # Cost classes (Section 4.1)
    # ------------------------------------------------------------------

    @property
    def token_cost(self) -> float:
        """Cost of an inter-node message carrying only the token (= 1)."""
        return 1.0

    @property
    def ui_message_cost(self) -> float:
        """Cost of a token + user-information message (= ``S + 1``)."""
        return self.S + 1.0

    @property
    def params_message_cost(self) -> float:
        """Cost of a token + write-parameters message (= ``P + 1``)."""
        return self.P + 1.0

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    def with_(self, **changes) -> "WorkloadParams":
        """Return a copy with the given fields replaced (validates again)."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """A plain-JSON dict (sweep-engine cache keys, worker payloads).

        Values are canonicalized (``S=100`` and ``S=100.0`` serialize
        identically) so the dict is safe to hash for cache keys.
        """
        data = {
            "N": int(self.N), "p": float(self.p), "a": int(self.a),
            "sigma": float(self.sigma), "xi": float(self.xi),
            "beta": int(self.beta), "S": float(self.S), "P": float(self.P),
        }
        # pay-for-what-you-use: the hot-set knobs appear only when set, so
        # every pre-existing cache key stays byte-identical.
        if self.hot_set is not None:
            data["hot_set"] = int(self.hot_set)
            data["hot_fraction"] = float(self.hot_fraction)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadParams":
        """Rebuild a bundle from :meth:`to_dict` output (validates again).

        Unknown keys raise ``ValueError`` instead of being silently
        dropped.
        """
        reject_unknown_keys(
            data,
            ("N", "p", "a", "sigma", "xi", "beta", "S", "P",
             "hot_set", "hot_fraction"),
            "WorkloadParams",
        )
        hot_set = data.get("hot_set")
        hot_fraction = data.get("hot_fraction")
        return cls(
            N=int(data["N"]), p=float(data["p"]), a=int(data.get("a", 0)),
            sigma=float(data.get("sigma", 0.0)),
            xi=float(data.get("xi", 0.0)), beta=int(data.get("beta", 1)),
            S=float(data.get("S", 100.0)), P=float(data.get("P", 30.0)),
            hot_set=(None if hot_set is None else int(hot_set)),
            hot_fraction=(None if hot_fraction is None
                          else float(hot_fraction)),
        )

    def event_probabilities(self, deviation: Deviation) -> dict:
        """Map event labels to probabilities for ``deviation``.

        The returned labels follow the paper: ``Ar``/``Aw`` for the activity
        center, ``Or``/``Ow`` for a *single* disturbing client (multiply by
        ``a`` for the aggregate), ``Ar_k``/``Aw_k`` per activity center for
        the multiple-activity-centers deviation.
        """
        if deviation is Deviation.READ:
            return {
                "Ar": self.read_prob_activity_center_rd,
                "Aw": self.p,
                "Or": self.sigma,
            }
        if deviation is Deviation.WRITE:
            return {
                "Ar": self.read_prob_activity_center_wd,
                "Aw": self.p,
                "Ow": self.xi,
            }
        return {
            "Ar_k": self.per_center_read_prob,
            "Aw_k": self.per_center_write_prob,
        }


def object_access_probs(
    M: int, hot_set: Optional[int], hot_fraction: Optional[float]
) -> Optional[List[float]]:
    """Per-object access probabilities for the hot-set workload skew.

    Objects ``1 .. hot_set`` split ``hot_fraction`` uniformly; objects
    ``hot_set + 1 .. M`` split the remainder.  Returns ``None`` for the
    paper's uniform selection (``hot_set is None``) so callers can keep
    the uniform sampling path bit-identical.  The same distribution feeds
    the simulator's object sampler and the closed-form miss-ratio model
    (:mod:`repro.core.cache_model`), which is what makes the two
    comparable.

    Raises:
        ValueError: if ``hot_set > M``, or ``hot_set == M`` with
            ``hot_fraction < 1`` (there is no cold object to carry the
            leftover mass).
    """
    if hot_set is None:
        return None
    if hot_set > M:
        raise ValueError(
            f"hot_set must be <= M, got hot_set={hot_set}, M={M}"
        )
    cold = M - hot_set
    if cold == 0:
        if hot_fraction < 1.0:
            raise ValueError(
                f"hot_set == M needs hot_fraction == 1, "
                f"got {hot_fraction!r}"
            )
        return [1.0 / M] * M
    hot_p = hot_fraction / hot_set
    cold_p = (1.0 - hot_fraction) / cold
    return [hot_p] * hot_set + [cold_p] * cold


def feasible_sigma_max(p: float, a: int) -> float:
    """Largest feasible ``sigma`` for a given ``p`` and ``a`` (``>= 0``).

    From ``p + a * sigma <= 1``.  Returns ``0`` when ``a == 0``.
    """
    if a <= 0:
        return 0.0
    return max(0.0, (1.0 - p) / a)


def feasible_xi_max(p: float, a: int) -> float:
    """Largest feasible ``xi`` for a given ``p`` and ``a`` (alias of sigma)."""
    return feasible_sigma_max(p, a)


def parameter_grid(
    base: WorkloadParams,
    p_values: Sequence[float],
    disturb_values: Sequence[float],
    deviation: Deviation,
) -> Iterator[Tuple[float, float, WorkloadParams]]:
    """Iterate feasible ``(p, disturb, params)`` tuples over a 2-D grid.

    ``disturb_values`` is interpreted as ``sigma`` for read disturbance, as
    ``xi`` for write disturbance, and ignored (a single pass over
    ``p_values``) for multiple activity centers.  Infeasible grid points
    (violating the probability simplex) are skipped, matching the empty
    cells of the paper's Table 7.
    """
    if deviation is Deviation.MULTIPLE_ACTIVITY_CENTERS:
        for p in p_values:
            yield p, 0.0, base.with_(p=float(p), sigma=0.0, xi=0.0)
        return
    for p in p_values:
        for d in disturb_values:
            if p + base.a * d > 1.0 + 1e-12:
                continue
            if deviation is Deviation.READ:
                yield p, d, base.with_(p=float(p), sigma=float(d), xi=0.0)
            else:
                yield p, d, base.with_(p=float(p), xi=float(d), sigma=0.0)


# Default parameter sets used in the paper's evaluation section.
#: Figure 5 / Figure 6 configuration (surfaces): N=50, a=10, P=30.
FIGURE_BASE = WorkloadParams(N=50, p=0.0, a=10, S=5000.0, P=30.0)
#: Table 7 configuration (validation): N=3, a=2, P=30, S=100.
TABLE7_BASE = WorkloadParams(N=3, p=0.0, a=2, S=100.0, P=30.0)
