"""Parameter sensitivity of the steady-state cost (the paper's "fine
tuning of the computation behavior" motivation, Section 1).

The introduction argues that performance models must be detailed enough
"to accomplish eventual fine tuning of the computation behavior".  The
practical tool for that is sensitivity: how much does ``acc`` move per
unit change of each model parameter, and which parameter is the most
effective tuning knob?

:func:`sensitivities` returns central-difference partial derivatives of
``acc`` with respect to every continuous parameter (``p``, ``sigma``/
``xi``, ``S``, ``P``), clamped to the feasible simplex;
:func:`elasticities` normalizes them to relative (percent-per-percent)
form so knobs with different units compare; :func:`tuning_table` ranks
the knobs for a workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .acc import analytical_acc
from .parameters import Deviation, WorkloadParams

__all__ = ["Sensitivity", "sensitivities", "elasticities", "tuning_table"]

#: the continuous parameters of Table 5 (``N``, ``a``, ``beta`` are sizes)
_CONTINUOUS = ("p", "sigma", "xi", "S", "P")


@dataclass(frozen=True)
class Sensitivity:
    """One parameter's local effect on ``acc``."""

    parameter: str
    value: float
    derivative: float
    #: relative sensitivity d(ln acc)/d(ln param); NaN when undefined
    elasticity: float


def _feasible_step(params: WorkloadParams, field: str, h: float
                   ) -> Tuple[float, float]:
    """A central-difference interval kept inside the feasible region."""
    value = getattr(params, field)
    lo, hi = value - h, value + h
    if field in ("p", "sigma", "xi"):
        lo = max(lo, 0.0)
        # respect the simplex p + a * disturb <= 1
        if field == "p":
            cap = 1.0 - params.a * max(params.sigma, params.xi)
        else:
            cap = (1.0 - params.p) / params.a if params.a else value
        hi = min(hi, cap, 1.0)
    else:
        lo = max(lo, 0.0)
    if hi <= lo:
        hi = lo + 1e-12
    return lo, hi


def sensitivities(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    rel_step: float = 1e-4,
) -> Dict[str, Sensitivity]:
    """Central-difference partials of ``acc`` for every continuous knob.

    Args:
        protocol: registry name.
        params: the operating point.
        deviation: workload deviation.
        rel_step: step size relative to each parameter's scale.
    """
    base = analytical_acc(protocol, params, deviation)
    out: Dict[str, Sensitivity] = {}
    for field in _CONTINUOUS:
        value = getattr(params, field)
        scale = max(abs(value), 1e-3)
        lo, hi = _feasible_step(params, field, rel_step * scale)
        f_lo = analytical_acc(protocol, params.with_(**{field: lo}),
                              deviation)
        f_hi = analytical_acc(protocol, params.with_(**{field: hi}),
                              deviation)
        derivative = (f_hi - f_lo) / (hi - lo)
        if base > 0 and value > 0:
            elasticity = derivative * value / base
        else:
            elasticity = float("nan")
        out[field] = Sensitivity(field, value, derivative, elasticity)
    return out


def elasticities(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
) -> Dict[str, float]:
    """Just the elasticities: percent change of ``acc`` per percent change
    of each parameter."""
    return {
        name: s.elasticity
        for name, s in sensitivities(protocol, params, deviation).items()
    }


def tuning_table(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
) -> List[Sensitivity]:
    """Knobs ranked by decreasing |elasticity| (NaN entries last).

    The top entry is the most effective fine-tuning target at this
    operating point — e.g. for Write-Through under read disturbance with
    large ``S`` the answer is usually "reduce the write share ``p`` or the
    copy size ``S``", while for Dragon it is always ``p`` and ``P``.
    """
    import math

    table = list(sensitivities(protocol, params, deviation).values())
    table.sort(key=lambda s: (-abs(s.elasticity)
                              if not math.isnan(s.elasticity) else 1.0))
    return table
