"""Characteristic surfaces of ``acc`` over the workload plane (Figures 5-6).

The paper visualizes each protocol's steady-state cost as a surface over
``(p, sigma)`` for read disturbance (Figure 5) and ``(p, xi)`` for write
disturbance (Figure 6), with ``N = 50``, ``a = 10``, ``P = 30`` and
``S = 5000`` (``S = 100`` for the Write-Through-V panel).  Infeasible grid
points (``p + a * disturb > 1``) are masked with NaN.

:func:`acc_surface` evaluates one protocol on a grid (vectorized through the
closed forms where they exist, exact Markov solves otherwise);
:func:`figure_surfaces` bundles the panel groupings of the two figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .acc import analytical_acc
from .parameters import Deviation, WorkloadParams

__all__ = ["Surface", "acc_surface", "figure_surfaces", "FIGURE_PANELS"]


@dataclass
class Surface:
    """An ``acc`` surface on a ``(p, disturb)`` grid.

    ``acc[i, j]`` corresponds to ``p = p_values[i]``,
    ``disturb = disturb_values[j]``; infeasible points are NaN.
    """

    protocol: str
    deviation: Deviation
    params: WorkloadParams
    p_values: np.ndarray
    disturb_values: np.ndarray
    acc: np.ndarray

    def max_feasible(self) -> float:
        """Largest ``acc`` over the feasible region."""
        return float(np.nanmax(self.acc))

    def at(self, p: float, disturb: float) -> float:
        """``acc`` at the grid point nearest to ``(p, disturb)``."""
        i = int(np.abs(self.p_values - p).argmin())
        j = int(np.abs(self.disturb_values - disturb).argmin())
        return float(self.acc[i, j])


def acc_surface(
    protocol: str,
    base: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    p_values: Optional[Sequence[float]] = None,
    disturb_values: Optional[Sequence[float]] = None,
    method: str = "auto",
) -> Surface:
    """Evaluate one protocol's ``acc`` over the workload plane.

    Args:
        protocol: registry name.
        base: parameters carrying ``N``, ``a``, ``S``, ``P``.
        deviation: READ (Figure 5) or WRITE (Figure 6).
        p_values: grid for the write probability (default 41 points on
            ``[0, 1]``).
        disturb_values: grid for ``sigma``/``xi`` (default 41 points on
            ``[0, 1/a]``, the feasible band at ``p = 0``).
        method: forwarded to :func:`repro.core.acc.analytical_acc`.
    """
    if deviation not in (Deviation.READ, Deviation.WRITE):
        raise ValueError("surfaces are defined for the disturbance deviations")
    p_vals = np.asarray(
        p_values if p_values is not None else np.linspace(0.0, 1.0, 41),
        dtype=float,
    )
    if disturb_values is None:
        hi = 1.0 / base.a if base.a else 0.0
        disturb_values = np.linspace(0.0, hi, 41)
    d_vals = np.asarray(disturb_values, dtype=float)
    acc = np.full((p_vals.size, d_vals.size), np.nan)
    for i, p in enumerate(p_vals):
        for j, d in enumerate(d_vals):
            if p + base.a * d > 1.0 + 1e-12:
                continue
            if deviation is Deviation.READ:
                w = base.with_(p=float(p), sigma=float(d), xi=0.0)
            else:
                w = base.with_(p=float(p), xi=float(d), sigma=0.0)
            acc[i, j] = analytical_acc(protocol, w, deviation, method)
    return Surface(protocol, deviation, base, p_vals, d_vals, acc)


#: Figure 5/6 panel groupings (paper Section 5.1): panel key ->
#: (protocols, S value).
FIGURE_PANELS: Dict[str, Tuple[Tuple[str, ...], float]] = {
    "a": (("write_once", "synapse", "illinois", "berkeley"), 5000.0),
    "b": (("write_through_v",), 100.0),
    "c": (("dragon", "firefly"), 5000.0),
    "d": (("dragon", "berkeley"), 5000.0),
}


def figure_surfaces(
    deviation: Deviation,
    N: int = 50,
    a: int = 10,
    P: float = 30.0,
    p_points: int = 41,
    disturb_points: int = 41,
    panels: Optional[Iterable[str]] = None,
) -> Dict[str, List[Surface]]:
    """Regenerate the surfaces of Figure 5 (READ) / Figure 6 (WRITE).

    Returns ``{panel: [Surface, ...]}`` using the paper's panel grouping
    and parameterization (``N = 50``, ``a = 10``, ``P = 30``; ``S = 5000``
    except the Write-Through-V panel's ``S = 100``).
    """
    out: Dict[str, List[Surface]] = {}
    p_vals = np.linspace(0.0, 1.0, p_points)
    d_vals = np.linspace(0.0, 1.0 / a, disturb_points)
    for key in panels if panels is not None else FIGURE_PANELS:
        protos, S = FIGURE_PANELS[key]
        base = WorkloadParams(N=N, p=0.0, a=a, S=S, P=P)
        out[key] = [
            acc_surface(proto, base, deviation, p_vals, d_vals)
            for proto in protos
        ]
    return out
