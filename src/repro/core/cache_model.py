"""Closed-form miss ratios and ``acc(C)`` for bounded replica caches.

Companion model for :mod:`repro.sim.cache`: each client holds at most
``C`` replica copies under LRU-like eviction, and a capacity miss
re-fetches the copy at protocol price.  Under the paper's independent
reference model (every operation slot an independent trial, object drawn
from a fixed distribution ``q``), the steady-state cost decomposes as

    ``acc(C) = acc(inf) + extra_miss_cost(C)``

where ``acc(inf)`` is the paper's full-replication cost
(:func:`~repro.core.acc.analytical_acc`) and the extra term prices the
accesses that find their copy evicted.

Two miss-ratio engines back the model:

* **Exact LRU stack analysis** (:func:`lru_hit_ratio`): the stationary
  distribution of the move-to-front list under IRM has the classic
  product form ``P(pi) = prod_i q_{pi_i} / (1 - sum_{j<i} q_{pi_j})``,
  and an LRU cache of capacity ``C`` holds exactly the top-``C`` stack
  prefix.  When ``q`` has few *distinct* values (the hot-set workload
  has two), the marginal over prefixes collapses to a dynamic program
  over per-class counts — exact and O(C * states).
* **Che approximation** (:func:`che_characteristic_time`): solve
  ``sum_i (1 - exp(-q_i * T)) = C`` for the characteristic time ``T``;
  object ``i`` hits with probability ``1 - exp(-q_i * T)``.  Used when
  the class structure is too rich for the exact DP, and — with a
  *fractional* effective capacity — for protocols where only a fraction
  of accesses install a resident copy.

Per-protocol ``extra_miss_cost`` (validated against the simulator within
10% by ``benchmarks/bench_cache.py``):

* ``write_through``: a client copy is resident only while it was read
  since the last write (writes invalidate every copy), so each reading
  client contests its cache slots with reads alone.  For a client whose
  read stream is a fraction ``rf`` of operations, copies of object
  ``j`` flip valid/invalid at combined rate ``(rf + w) q_j`` (``w`` the
  total write fraction), the valid fraction is ``v = rf / (rf + w)``,
  and the Che occupancy equation collapses to the *effective capacity*
  ``C / v``.  The extra cost — a read that would have hit under full
  replication but finds its copy evicted — is
  ``rf * v * (S + 2) * sum_j q_j exp(-q_j T)`` with ``T`` the Che time
  at capacity ``C / v``, summed over the reading clients (the activity
  center plus the ``a`` read disturbers).
* ``firefly``: updates keep every resident copy readable, so each
  acting client's cache is a pure LRU over its own (identically
  ``q``-distributed) access stream and the per-access miss ratio is the
  exact stack-analysis ``m``.  Four terms ride on it, all linear in
  ``m``: a capacity-missed read re-fetches (``S + 2``); an ejected
  writer's ACK carries the whole copy back (``+S``); every eviction
  sends a one-token ``EJ`` departure notice; and — the term that can
  turn the total *negative* — the sequencer skips departed copies in
  its update fan-out, saving ``P + 1`` per acting other client whose
  copy of the written object is out (idle clients never evict and stay
  in the fan-out).  ``extra = m * ((1 - w)(S + 2) + w*S + 1 -
  w * a_acting * (P + 1))`` with ``w`` the total write fraction.
* ``sc_abd``: quorum replicas are load-bearing, so the bounded cache is
  overlay bookkeeping and ``acc(C) = acc(inf)`` — flat in ``C`` (the
  read/write quorum rounds already touch a majority regardless of local
  residency).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .acc import analytical_acc
from .parameters import Deviation, WorkloadParams, object_access_probs

__all__ = [
    "CACHE_MODEL_PROTOCOLS",
    "cache_acc",
    "che_characteristic_time",
    "expected_miss_ratio",
    "lru_hit_ratio",
]

#: protocols the closed-form ``acc(C)`` model covers (the rest of the
#: family is simulator-only — their invalidate/ownership interactions
#: with eviction have no tractable product form).
CACHE_MODEL_PROTOCOLS = ("write_through", "firefly", "sc_abd")

#: exact-DP state budget; richer class structures fall back to Che.
_MAX_DP_STATES = 100_000


def _class_counts(probs: Sequence[float]) -> List[Tuple[float, int]]:
    counts: Dict[float, int] = {}
    for q in probs:
        key = round(float(q), 15)
        counts[key] = counts.get(key, 0) + 1
    return sorted(counts.items(), reverse=True)


def lru_hit_ratio(probs: Sequence[float], capacity: int) -> float:
    """Exact stationary LRU hit ratio under IRM (stack analysis).

    Sums the move-to-front product form over all top-``capacity`` stack
    prefixes, grouped by per-class occupancy counts.  Exact whenever the
    DP state space fits (always true for the two-class hot-set
    distributions); otherwise falls back to the Che approximation.
    """
    if capacity < 1:
        raise ValueError(f"capacity must be at least 1, got {capacity}")
    classes = _class_counts(probs)
    population = sum(n for _, n in classes)
    if capacity >= population:
        return 1.0
    states = 1
    for _, n in classes:
        states *= min(n, capacity) + 1
    if states > _MAX_DP_STATES:
        t = che_characteristic_time(probs, float(capacity))
        return sum(q * (1.0 - math.exp(-q * t)) for q in probs)
    # W[occupancy] = P(the stack prefix so far holds occupancy[k] objects
    # of class k); extend one stack position at a time.
    weights: Dict[Tuple[int, ...], float] = {(0,) * len(classes): 1.0}
    for _ in range(capacity):
        nxt: Dict[Tuple[int, ...], float] = {}
        for occ, w in weights.items():
            used = sum(c * q for (q, _), c in zip(classes, occ))
            rem = 1.0 - used
            if rem <= 0.0:  # numerically saturated prefix
                continue
            for k, (q, n) in enumerate(classes):
                if occ[k] >= n or q <= 0.0:
                    continue
                occ2 = occ[:k] + (occ[k] + 1,) + occ[k + 1:]
                nxt[occ2] = nxt.get(occ2, 0.0) + w * (n - occ[k]) * q / rem
        weights = nxt
    return sum(
        w * sum(c * q for (q, _), c in zip(classes, occ))
        for occ, w in weights.items()
    )


def che_characteristic_time(probs: Sequence[float],
                            capacity: float) -> float:
    """Solve ``sum_i (1 - exp(-q_i T)) = capacity`` for ``T`` (bisection).

    ``capacity`` may be fractional (effective-capacity corrections).
    Returns ``inf`` when every object with positive probability fits.
    """
    if capacity <= 0:
        raise ValueError(f"capacity must be positive, got {capacity}")
    nonzero = sum(1 for q in probs if q > 0)
    if capacity >= nonzero:
        return math.inf

    def occupancy_gap(t: float) -> float:
        return sum(1.0 - math.exp(-q * t) for q in probs) - capacity

    lo, hi = 0.0, 1.0
    while occupancy_gap(hi) < 0.0:
        hi *= 2.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if occupancy_gap(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def expected_miss_ratio(probs: Sequence[float], capacity: int) -> float:
    """Expected LRU miss ratio ``m = sum_i q_i (1 - h_i)`` under IRM."""
    return max(0.0, 1.0 - lru_hit_ratio(probs, capacity))


def _access_probs(params: WorkloadParams, M: int) -> List[float]:
    probs = object_access_probs(M, params.hot_set, params.hot_fraction)
    if probs is None:
        probs = [1.0 / M] * M
    return probs


def cache_acc(
    protocol: str,
    params: WorkloadParams,
    deviation: Deviation = Deviation.READ,
    M: int = 1,
    capacity: Optional[int] = None,
) -> float:
    """Closed-form ``acc`` with a bounded replica cache of ``capacity``.

    ``capacity=None`` (or ``capacity >= M``) reduces to the paper's
    full-replication :func:`~repro.core.acc.analytical_acc`.  Raises
    ``KeyError`` for protocols outside :data:`CACHE_MODEL_PROTOCOLS`.
    """
    if protocol not in CACHE_MODEL_PROTOCOLS:
        raise KeyError(
            f"no closed-form cache model for {protocol!r}; "
            f"choose from: {', '.join(CACHE_MODEL_PROTOCOLS)}"
        )
    base = analytical_acc(protocol, params, deviation)
    if capacity is None or capacity >= M:
        return base
    probs = _access_probs(params, M)
    refetch = params.S + 2.0  # token request + whole-copy reply
    if protocol == "sc_abd":
        return base
    if protocol == "write_through":
        # one Che term per reading client class: stream fraction rf,
        # valid fraction rf / (rf + total write fraction).
        if deviation is Deviation.MULTIPLE_ACTIVITY_CENTERS:
            beta = max(params.beta, 1)
            streams = [((1.0 - params.p) / beta, beta)]
            write_frac = params.p
        elif deviation is Deviation.WRITE:
            streams = [(1.0 - params.p - params.a * params.sigma, 1)]
            write_frac = params.p + params.a * params.sigma
        else:  # READ disturbance (ideal workload when sigma = 0)
            streams = [(1.0 - params.p - params.a * params.sigma, 1),
                       (params.sigma, params.a)]
            write_frac = params.p
        extra = 0.0
        for read_frac, count in streams:
            if read_frac <= 0.0 or count < 1:
                continue
            valid = read_frac / (read_frac + write_frac)
            t = che_characteristic_time(probs, capacity / valid)
            if math.isinf(t):
                continue
            miss = sum(q * math.exp(-q * t) for q in probs)
            extra += count * read_frac * valid * refetch * miss
        return base + extra
    # firefly: refetch + carried-copy ACK + EJ notices - fan-out savings,
    # all linear in the exact stack-analysis miss ratio.
    m = expected_miss_ratio(probs, capacity)
    if deviation is Deviation.MULTIPLE_ACTIVITY_CENTERS:
        write_frac = params.p
        acting_others = max(params.beta - 1, 0)
    elif deviation is Deviation.WRITE:
        write_frac = params.p + params.a * params.sigma
        acting_others = params.a if params.sigma > 0 else 0
    else:  # READ disturbance (a = 0 / sigma = 0 degenerates to ideal)
        write_frac = params.p
        acting_others = params.a if params.sigma > 0 else 0
    read_frac = 1.0 - write_frac
    extra = m * (
        read_frac * refetch  # capacity-missed reads re-fetch (S + 2)
        + write_frac * params.S  # ejected writer's ACK carries the copy
        + 1.0  # one EJ departure notice per eviction
        - write_frac * acting_others * (params.P + 1.0)  # fan-out savings
    )
    return base + extra
