"""Command-line interface: ``python -m repro <command>``.

Five commands cover the library's day-to-day uses:

* ``acc`` — evaluate the analytic steady-state cost for one protocol;
* ``rank`` — rank all protocols for a workload (the classifier's view);
* ``simulate`` — run the message-passing simulator and report measured
  ``acc`` (optionally against the analytic prediction);
* ``place`` — the home-vs-client activity-center placement saving;
* ``validate`` — one analytical-vs-simulation comparison cell (Table 7
  style).

Examples::

    python -m repro acc berkeley --N 8 --p 0.2 --a 3 --sigma 0.1
    python -m repro rank --N 50 --p 0.1 --a 10 --sigma 0.05 --S 5000
    python -m repro simulate dragon --N 8 --p 0.2 --ops 4000
    python -m repro validate write_once --N 3 --p 0.4 --a 2 --sigma 0.1
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.acc import analytical_acc
from .core.comparison import ALL_PROTOCOLS, rank_protocols
from .core.parameters import Deviation, WorkloadParams
from .core.placement import placement_advantage
from .protocols.registry import EXTENSION_PROTOCOLS, PROTOCOLS
from .sim.faults import CrashWindow, FaultPlan
from .sim.reliable import ReliabilityConfig
from .sim.system import DSMSystem
from .validation.compare import compare_cell
from .workloads.synthetic import SyntheticWorkload

__all__ = ["main", "build_parser"]

_DEVIATIONS = {
    "read": Deviation.READ,
    "write": Deviation.WRITE,
    "mac": Deviation.MULTIPLE_ACTIVITY_CENTERS,
}


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--N", type=int, required=True,
                        help="number of clients")
    parser.add_argument("--p", type=float, required=True,
                        help="activity-center write probability")
    parser.add_argument("--a", type=int, default=0,
                        help="number of disturbing clients")
    parser.add_argument("--sigma", type=float, default=0.0,
                        help="per-client read-disturbance probability")
    parser.add_argument("--xi", type=float, default=0.0,
                        help="per-client write-disturbance probability")
    parser.add_argument("--beta", type=int, default=1,
                        help="number of activity centers (mac deviation)")
    parser.add_argument("--S", type=float, default=100.0,
                        help="whole-copy transfer cost parameter")
    parser.add_argument("--P", type=float, default=30.0,
                        help="write-parameter transfer cost parameter")
    parser.add_argument("--deviation", choices=sorted(_DEVIATIONS),
                        default="read", help="workload deviation")


def _params(args: argparse.Namespace) -> WorkloadParams:
    return WorkloadParams(N=args.N, p=args.p, a=args.a, sigma=args.sigma,
                          xi=args.xi, beta=args.beta, S=args.S, P=args.P)


def _parse_crash(spec: str) -> CrashWindow:
    """Parse a ``NODE:START[:END]`` crash-window argument."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"invalid --crash-at {spec!r}: expected NODE:START[:END]"
        )
    node, start = int(parts[0]), float(parts[1])
    if len(parts) == 3:
        return CrashWindow(node, start, float(parts[2]))
    return CrashWindow(node, start)


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Build the fault plan from the simulate flags (None when fault-free)."""
    crashes = [_parse_crash(spec) for spec in args.crash_at]
    plan = FaultPlan(seed=args.fault_seed, drop_rate=args.drop_rate,
                     duplicate_rate=args.dup_rate, jitter=args.jitter,
                     crashes=crashes)
    return None if plan.is_none else plan


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analytic performance model of data-replication DSM "
                    "(Srbljic & Budin, HPDC 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    known = ", ".join(list(PROTOCOLS) + list(EXTENSION_PROTOCOLS))

    p_acc = sub.add_parser("acc", help="analytic steady-state cost")
    p_acc.add_argument("protocol", help=f"one of: {known}")
    _add_workload_args(p_acc)
    p_acc.add_argument("--method", choices=["auto", "closed_form", "markov"],
                       default="auto")

    p_rank = sub.add_parser("rank", help="rank all protocols")
    _add_workload_args(p_rank)

    p_sim = sub.add_parser("simulate", help="run the simulator")
    p_sim.add_argument("protocol", help=f"one of: {known}")
    _add_workload_args(p_sim)
    p_sim.add_argument("--ops", type=int, default=4000,
                       help="operations to run (including warm-up)")
    p_sim.add_argument("--warmup", type=int, default=None,
                       help="warm-up operations (default: ops // 4)")
    p_sim.add_argument("--M", type=int, default=1,
                       help="number of shared objects")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--capacity", type=int, default=None,
                       help="finite replica pool per client (Section 6)")
    p_sim.add_argument("--drop-rate", type=float, default=0.0,
                       help="per-transmission message loss probability")
    p_sim.add_argument("--dup-rate", type=float, default=0.0,
                       help="per-transmission duplication probability")
    p_sim.add_argument("--jitter", type=float, default=0.0,
                       help="max extra delivery delay (uniform jitter)")
    p_sim.add_argument("--crash-at", action="append", default=[],
                       metavar="NODE:START[:END]",
                       help="crash a node for [START, END) sim time "
                            "(END omitted: never recovers); repeatable")
    p_sim.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault plan's RNG stream")
    p_sim.add_argument("--retry-timeout", type=float, default=8.0,
                       help="base ack timeout of the reliable layer")
    p_sim.add_argument("--retry-backoff", type=float, default=2.0,
                       help="exponential backoff multiplier per retry")
    p_sim.add_argument("--max-retries", type=int, default=10,
                       help="retry budget before a send is abandoned")

    p_place = sub.add_parser(
        "place",
        help="home-vs-client activity-center placement saving",
    )
    p_place.add_argument("protocol", help=f"one of: {known}")
    _add_workload_args(p_place)

    p_val = sub.add_parser("validate",
                           help="analytical vs simulated acc (Table 7 cell)")
    p_val.add_argument("protocol", help=f"one of: {known}")
    _add_workload_args(p_val)
    p_val.add_argument("--ops", type=int, default=4000)
    p_val.add_argument("--M", type=int, default=20)
    p_val.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    deviation = _DEVIATIONS[args.deviation]
    try:
        params = _params(args)
        if getattr(args, "protocol", None) is not None:
            # resolve early for a uniform "unknown protocol" error.
            from .protocols.registry import get_protocol
            get_protocol(args.protocol)
        if args.command == "acc":
            value = analytical_acc(args.protocol, params, deviation,
                                   method=args.method)
            print(f"acc({args.protocol}, {deviation.value}) = {value:.4f}")
        elif args.command == "rank":
            print(f"{'protocol':20s} {'acc':>12}")
            for name, acc in rank_protocols(params, deviation,
                                            ALL_PROTOCOLS):
                print(f"{name:20s} {acc:12.4f}")
        elif args.command == "simulate":
            warmup = args.warmup if args.warmup is not None else args.ops // 4
            faults = _fault_plan(args)
            reliability = (
                ReliabilityConfig(timeout=args.retry_timeout,
                                  backoff=args.retry_backoff,
                                  max_retries=args.max_retries)
                if faults is not None else None
            )
            system = DSMSystem(args.protocol, N=params.N, M=args.M,
                               S=params.S, P=params.P,
                               capacity=args.capacity,
                               faults=faults, reliability=reliability)
            workload = SyntheticWorkload(params, deviation, M=args.M)
            result = system.run_workload(workload, num_ops=args.ops,
                                         warmup=warmup, seed=args.seed)
            stats = system.metrics.reliability
            if stats.delivery_failures == 0:
                # a degraded run legitimately leaves copies incoherent
                # (an abandoned message may have been an invalidation).
                system.check_coherence()
            predicted = analytical_acc(args.protocol, params, deviation)
            print(f"simulated acc   = {result.acc:.4f}")
            print(f"analytic acc    = {predicted:.4f} (no pool, fault-free)")
            print(f"messages        = {result.messages}")
            if result.measured > 0:
                lat = result.metrics.latency_stats(skip=warmup)
                print(f"latency mean/p95 = {lat['mean']:.2f} / "
                      f"{lat['p95']:.2f}")
            if faults is not None:
                print(f"faults          = {faults.describe()}")
                if result.measured > 0:
                    breakdown = system.metrics.average_cost_breakdown(
                        skip=warmup)
                    print(f"acc breakdown   = "
                          f"{breakdown['protocol']:.4f} protocol"
                          f" + {breakdown['reliability']:.4f} reliability")
                print(f"retransmissions = {stats.retransmissions}")
                print(f"acks            = {stats.acks}")
                print(f"drops           = {stats.drops}")
                print(f"dups suppressed = {stats.duplicates_suppressed}")
                if stats.crashes:
                    print(f"crashes/recoveries = {stats.crashes}/"
                          f"{stats.recoveries}")
                if stats.delivery_failures:
                    print(f"delivery failures  = {stats.delivery_failures} "
                          f"({result.incomplete_ops} ops incomplete)")
            if args.capacity is not None:
                print(f"data-op cost    = {system.data_cost_rate(warmup):.4f}")
                evictions = sum(
                    node.pool.evictions
                    for node in system.nodes.values() if node.pool
                )
                print(f"pool evictions  = {evictions}")
        elif args.command == "place":
            client, home, saving = placement_advantage(
                args.protocol, params, deviation
            )
            print(f"client placement acc = {client:.4f}")
            print(f"home placement acc   = {home:.4f}")
            print(f"saving               = {saving:.4f}"
                  + ("  (placement-indifferent)" if abs(saving) < 1e-9
                     else ""))
        elif args.command == "validate":
            cell = compare_cell(args.protocol, params, deviation, M=args.M,
                                total_ops=args.ops,
                                warmup=args.ops // 4, seed=args.seed)
            print(f"analytic  = {cell.acc_analytic:.4f}")
            print(f"simulated = {cell.acc_sim:.4f}")
            print(f"discrepancy = {cell.discrepancy_pct:.2f}%")
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
