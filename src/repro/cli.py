"""Command-line interface: ``python -m repro <command>``.

Nine commands cover the library's day-to-day uses:

* ``acc`` — evaluate the analytic steady-state cost for one protocol;
* ``rank`` — rank all protocols for a workload (the classifier's view);
* ``simulate`` — run the message-passing simulator and report measured
  ``acc`` (optionally against the analytic prediction); ``--trace-out``
  additionally exports a Perfetto-loadable Chrome trace of the run;
* ``place`` — the home-vs-client activity-center placement saving;
* ``validate`` — one analytical-vs-simulation comparison cell (Table 7
  style);
* ``sweep`` — evaluate a whole parameter grid through the parallel sweep
  engine (:mod:`repro.exp`) with result caching and JSONL output;
* ``trace`` — run one simulation with structured tracing on and export
  the Chrome trace (and optionally the JSONL event stream);
* ``profile`` — run one simulation under the wall-clock profiler and
  print the hot-path table;
* ``scenarios`` — the declarative scenario catalog
  (:mod:`repro.scenarios`): ``list`` / ``show`` / ``run`` / ``compare``
  whole committed studies without writing a benchmark script.

All commands share the same flag vocabulary through parent parsers: the
workload group (``--N --p --a --sigma ...``), the run group
(``--ops --warmup --seed --mean-gap``), the fault group (``--drop-rate
--dup-rate --jitter --crash-at --crash-semantics --failover --monitor
--fault-seed``) and the reliability group (``--retry-timeout
--retry-backoff --max-retries``) spell identically wherever they appear.
The argparse → model translation lives in two public helpers —
:func:`workload_from_args` and :func:`runconfig_from_args` — shared by
every subcommand (external tools embedding this CLI's flag vocabulary
can reuse them).

Examples::

    python -m repro acc berkeley --N 8 --p 0.2 --a 3 --sigma 0.1
    python -m repro rank --N 50 --p 0.1 --a 10 --sigma 0.05 --S 5000
    python -m repro simulate dragon --N 8 --p 0.2 --ops 4000
    python -m repro validate write_once --N 3 --p 0.4 --a 2 --sigma 0.1
    python -m repro sweep --protocols write_once,write_through_v \\
        --N 3 --a 2 --p-values 0,0.2,0.4 --disturb-values 0,0.1,0.2 \\
        --ops 2000 --workers 4 --out table7.jsonl
    python -m repro scenarios list
    python -m repro scenarios run smoke-table7 --workers 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.acc import analytical_acc
from .core.closed_forms import weighted_quorum_acc
from .core.comparison import ALL_PROTOCOLS, rank_protocols
from .core.parameters import Deviation, WorkloadParams
from .core.placement import placement_advantage
from .exp import SweepSpec, SweepRunner
from .obs.export import write_chrome_trace, write_events_jsonl
from .obs.profile import Profiler
from .obs.trace import TraceConfig
from .protocols.registry import all_protocol_names, protocol_names
from .sim.config import RunConfig
from .sim.faults import CrashWindow, FaultPlan, SlowWindow
from .sim.cache import CACHE_POLICIES, CacheConfig
from .sim.hedge import HedgeConfig
from .sim.partition import PARTITION_POLICIES, LinkFault, PartitionPlan, cut
from .sim.reconfig import MembershipChange, ReconfigPlan
from .sim.reliable import ReliabilityConfig
from .sim.system import DSMSystem
from .validation.compare import compare_cell
from .workloads.synthetic import SyntheticWorkload

__all__ = ["main", "build_parser", "runconfig_from_args",
           "workload_from_args"]

_DEVIATIONS = {
    "read": Deviation.READ,
    "write": Deviation.WRITE,
    "mac": Deviation.MULTIPLE_ACTIVITY_CENTERS,
}


def _version() -> str:
    """The installed package version (source-tree fallback)."""
    try:
        from importlib.metadata import version
        return version("repro")
    except Exception:
        from . import __version__
        return __version__


# ----------------------------------------------------------------------
# shared parent parsers (one flag vocabulary for every subcommand)
# ----------------------------------------------------------------------

def _system_parent() -> argparse.ArgumentParser:
    """``--N --a --beta --S --P --deviation``: the system/cost parameters."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("workload parameters")
    group.add_argument("--N", type=int, required=True,
                       help="number of clients")
    group.add_argument("--a", type=int, default=0,
                       help="number of disturbing clients")
    group.add_argument("--beta", type=int, default=1,
                       help="number of activity centers (mac deviation)")
    group.add_argument("--S", type=float, default=100.0,
                       help="whole-copy transfer cost parameter")
    group.add_argument("--P", type=float, default=30.0,
                       help="write-parameter transfer cost parameter")
    group.add_argument("--deviation", choices=sorted(_DEVIATIONS),
                       default="read", help="workload deviation")
    group.add_argument("--hot-set", type=int, default=None,
                       help="working-set size: the first HOT_SET objects "
                            "receive --hot-fraction of the accesses "
                            "(both flags together; default: uniform)")
    group.add_argument("--hot-fraction", type=float, default=None,
                       help="probability mass on the hot set, in (0, 1]")
    return parent


def _point_parent() -> argparse.ArgumentParser:
    """``--p --sigma --xi``: one workload-plane point."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("workload point")
    group.add_argument("--p", type=float, required=True,
                       help="activity-center write probability")
    group.add_argument("--sigma", type=float, default=0.0,
                       help="per-client read-disturbance probability")
    group.add_argument("--xi", type=float, default=0.0,
                       help="per-client write-disturbance probability")
    return parent


def _run_parent() -> argparse.ArgumentParser:
    """``--ops --warmup --seed --mean-gap``: the run configuration."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("run configuration")
    group.add_argument("--ops", type=int, default=4000,
                       help="operations to run (including warm-up)")
    group.add_argument("--warmup", type=int, default=None,
                       help="warm-up operations (default: ops // 4)")
    group.add_argument("--seed", type=int, default=0,
                       help="workload/arrival RNG seed "
                            "(sweep: the base seed cells derive from)")
    group.add_argument("--mean-gap", type=float, default=25.0,
                       help="mean Poisson inter-arrival gap")
    return parent


def _fault_parent() -> argparse.ArgumentParser:
    """``--drop-rate --dup-rate --jitter --crash-at --fault-seed``."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("fault injection")
    group.add_argument("--drop-rate", type=float, default=0.0,
                       help="per-transmission message loss probability")
    group.add_argument("--dup-rate", type=float, default=0.0,
                       help="per-transmission duplication probability")
    group.add_argument("--jitter", type=float, default=0.0,
                       help="max extra delivery delay (uniform jitter)")
    group.add_argument("--crash-at", action="append", default=[],
                       metavar="NODE:START[:END]",
                       help="crash a node for [START, END) sim time "
                            "(END omitted: never recovers); repeatable")
    group.add_argument("--crash-semantics", choices=["durable", "amnesia"],
                       default="durable",
                       help="what --crash-at windows destroy: 'durable' "
                            "keeps protocol state across the outage, "
                            "'amnesia' wipes it (the node resynchronizes "
                            "through the recovery subsystem at rejoin)")
    group.add_argument("--failover", action="store_true",
                       help="elect a standby sequencer when the current "
                            "one crashes (deterministic lowest-id "
                            "election, new epoch, no failback)")
    group.add_argument("--monitor", action="store_true",
                       help="attach the runtime consistency monitor and "
                            "report convergence/sequential-consistency "
                            "violations at quiescence")
    group.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault plan's RNG stream")
    group.add_argument("--slow-at", action="append", default=[],
                       metavar="NODE:START:END[:FACTOR]",
                       help="gray failure: multiply every message delay "
                            "to/from NODE by FACTOR (default 10) for "
                            "[START, END) sim time (END of 'inf': never "
                            "recovers); repeatable")
    return parent


def _partition_parent() -> argparse.ArgumentParser:
    """``--cut --cut-one-way --heartbeat-interval ...``: link faults."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("network partitions")
    group.add_argument("--cut", action="append", default=[],
                       metavar="A:B:START[:END]",
                       help="cut both directions of the A<->B link for "
                            "[START, END) sim time (END omitted: never "
                            "heals); repeatable")
    group.add_argument("--cut-one-way", action="append", default=[],
                       metavar="SRC:DST:START[:END]",
                       help="cut only the SRC->DST direction "
                            "(asymmetric partition); repeatable")
    group.add_argument("--heartbeat-interval", type=float, default=40.0,
                       help="failure-detector probe period (sim time)")
    group.add_argument("--suspect-after", type=int, default=3,
                       help="missed heartbeats before a node is "
                            "suspected and quarantined")
    group.add_argument("--partition-policy", choices=PARTITION_POLICIES,
                       default="stall",
                       help="degraded mode of a quarantined client: "
                            "'stall' holds its operations, "
                            "'serve_local_reads' answers queue-head "
                            "reads from the stale replica (staleness is "
                            "accounted, and such reads are exempt from "
                            "the monitor's SC check)")
    group.add_argument("--no-detector", action="store_true",
                       help="disable the heartbeat failure detector "
                            "(partitioned traffic just retries)")
    group.add_argument("--partition-seed", type=int, default=0,
                       help="seed of the partition plan's RNG stream")
    return parent


def _trace_parent() -> argparse.ArgumentParser:
    """``--trace-out --trace-jsonl --trace-sample``: trace export."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("tracing")
    group.add_argument("--trace-out", default=None, metavar="PATH",
                       help="export a Perfetto-loadable Chrome trace of "
                            "the run to PATH (enables tracing)")
    group.add_argument("--trace-jsonl", default=None, metavar="PATH",
                       help="export the trace as a JSONL event stream "
                            "to PATH (enables tracing)")
    group.add_argument("--trace-sample", type=int, default=1, metavar="K",
                       help="record every K-th operation span "
                            "(default: 1, every span)")
    return parent


def _reliability_parent() -> argparse.ArgumentParser:
    """``--retry-timeout --retry-backoff --max-retries``."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("reliable delivery")
    group.add_argument("--retry-timeout", type=float, default=8.0,
                       help="base ack timeout of the reliable layer")
    group.add_argument("--retry-backoff", type=float, default=2.0,
                       help="exponential backoff multiplier per retry")
    group.add_argument("--max-retries", type=int, default=10,
                       help="retry budget before a send is abandoned")
    group = parent.add_argument_group("hedged quorum requests")
    group.add_argument("--hedge-budget", type=float, default=None,
                       metavar="T",
                       help="launch hedge legs to backup replicas when a "
                            "quorum phase is still short T sim-time "
                            "units after it started (quorum protocols "
                            "only; unset: no hedging)")
    group.add_argument("--hedge-legs", type=int, default=1,
                       help="max extra replicas contacted per phase "
                            "when the hedge budget expires")
    group.add_argument("--hedge-seed", type=int, default=0,
                       help="seed of the hedge target-selection stream")
    return parent


def _reconfig_parent() -> argparse.ArgumentParser:
    """``--join-at --leave-at --reconfig-seed --quorum-weight``."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group(
        "online reconfiguration (quorum protocols)"
    )
    group.add_argument("--join-at", action="append", default=[],
                       metavar="NODE:TIME",
                       help="add NODE to the replica set at sim TIME "
                            "(joint-quorum transition with versioned "
                            "state transfer); repeatable — events at "
                            "the same TIME form one transition")
    group.add_argument("--leave-at", action="append", default=[],
                       metavar="NODE:TIME",
                       help="remove NODE from the replica set at sim "
                            "TIME; repeatable")
    group.add_argument("--reconfig-seed", type=int, default=0,
                       help="seed of the reconfiguration plan's RNG "
                            "stream (reserved for randomized schedules)")
    group.add_argument("--quorum-weight", action="append", default=[],
                       metavar="NODE:WEIGHT",
                       help="per-node quorum vote weight (unnamed nodes "
                            "weigh 1; a quorum needs > half the total "
                            "weight); repeatable")
    return parent


# ----------------------------------------------------------------------
# argument -> model translation (public: the one assembly path every
# subcommand shares; reusable by tools embedding this flag vocabulary)
# ----------------------------------------------------------------------

def workload_from_args(args: argparse.Namespace) -> WorkloadParams:
    """The :class:`WorkloadParams` described by the workload flag groups.

    Point flags (``--p --sigma --xi``) default to ``0`` when the
    subcommand does not take a workload point (e.g. ``sweep``, whose grid
    supplies them per cell).
    """
    return WorkloadParams(N=args.N, p=getattr(args, "p", 0.0),
                          a=args.a, sigma=getattr(args, "sigma", 0.0),
                          xi=getattr(args, "xi", 0.0), beta=args.beta,
                          S=args.S, P=args.P,
                          hot_set=getattr(args, "hot_set", None),
                          hot_fraction=getattr(args, "hot_fraction", None))


def _parse_crash(spec: str, semantics: str = "durable") -> CrashWindow:
    """Parse a ``NODE:START[:END]`` crash-window argument."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(
            f"invalid --crash-at {spec!r}: expected NODE:START[:END]"
        )
    node, start = int(parts[0]), float(parts[1])
    if len(parts) == 3:
        return CrashWindow(node, start, float(parts[2]),
                           semantics=semantics)
    return CrashWindow(node, start, semantics=semantics)


def _parse_slow(spec: str) -> SlowWindow:
    """Parse a ``NODE:START:END[:FACTOR]`` slow-window argument."""
    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"invalid --slow-at {spec!r}: expected NODE:START:END[:FACTOR]"
        )
    node, start, end = int(parts[0]), float(parts[1]), float(parts[2])
    if len(parts) == 4:
        return SlowWindow(node, start, end, factor=float(parts[3]))
    return SlowWindow(node, start, end)


def _fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    """Build the fault plan from the fault flags (None when fault-free)."""
    crashes = [_parse_crash(spec, args.crash_semantics)
               for spec in args.crash_at]
    slowdowns = [_parse_slow(spec)
                 for spec in getattr(args, "slow_at", [])]
    plan = FaultPlan(seed=args.fault_seed, drop_rate=args.drop_rate,
                     duplicate_rate=args.dup_rate, jitter=args.jitter,
                     crashes=crashes, slowdowns=slowdowns)
    if plan.is_none:
        return None
    # fail loudly on a typo'd node index before any system is built
    plan.validate_nodes(args.N + 1)
    return plan


def _parse_link(spec: str, flag: str) -> tuple:
    """Parse an ``A:B:START[:END]`` link-cut argument."""
    parts = spec.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"invalid {flag} {spec!r}: expected A:B:START[:END]"
        )
    a, b, start = int(parts[0]), int(parts[1]), float(parts[2])
    end = float(parts[3]) if len(parts) == 4 else None
    return a, b, start, end


def _partition_plan(args: argparse.Namespace) -> Optional[PartitionPlan]:
    """Build the partition plan from the partition flags (or None)."""
    links: List[LinkFault] = []
    for spec in getattr(args, "cut", []):
        a, b, start, end = _parse_link(spec, "--cut")
        links.extend(cut(a, b, start, end)
                     if end is not None else cut(a, b, start))
    for spec in getattr(args, "cut_one_way", []):
        a, b, start, end = _parse_link(spec, "--cut-one-way")
        links.append(LinkFault(a, b, start, end)
                     if end is not None else LinkFault(a, b, start))
    if not links:
        return None
    plan = PartitionPlan(
        seed=args.partition_seed,
        links=links,
        heartbeat_interval=args.heartbeat_interval,
        suspect_after=args.suspect_after,
        policy=args.partition_policy,
        detect=not args.no_detector,
    )
    plan.validate_nodes(args.N + 1)
    return plan


def _parse_member_event(spec: str, flag: str) -> tuple:
    """Parse a ``NODE:TIME`` membership-event argument."""
    parts = spec.split(":")
    if len(parts) != 2:
        raise ValueError(
            f"invalid {flag} {spec!r}: expected NODE:TIME"
        )
    return int(parts[0]), float(parts[1])


def _reconfig_plan(args: argparse.Namespace) -> Optional[ReconfigPlan]:
    """Build the reconfiguration plan from ``--join-at``/``--leave-at``.

    Events sharing the same time coalesce into one transition (one
    joint-quorum window), matching the semantics of a single
    :class:`MembershipChange` with several joins/leaves.
    """
    events: dict = {}
    for spec in getattr(args, "join_at", []):
        node, at = _parse_member_event(spec, "--join-at")
        events.setdefault(at, ([], []))[0].append(node)
    for spec in getattr(args, "leave_at", []):
        node, at = _parse_member_event(spec, "--leave-at")
        events.setdefault(at, ([], []))[1].append(node)
    if not events:
        return None
    changes = [
        MembershipChange(at=at, joins=tuple(joins), leaves=tuple(leaves))
        for at, (joins, leaves) in sorted(events.items())
    ]
    plan = ReconfigPlan(seed=getattr(args, "reconfig_seed", 0),
                        changes=tuple(changes))
    # fail loudly on an inconsistent membership chain before any system
    # is built (e.g. leaving a node that never joined)
    plan.validate_membership(args.N + 1)
    return plan


def _quorum_weights(args: argparse.Namespace) -> Optional[tuple]:
    """Parse repeated ``--quorum-weight NODE:WEIGHT`` flags (or None)."""
    pairs = []
    for spec in getattr(args, "quorum_weight", []):
        parts = spec.split(":")
        if len(parts) != 2:
            raise ValueError(
                f"invalid --quorum-weight {spec!r}: expected NODE:WEIGHT"
            )
        pairs.append((int(parts[0]), float(parts[1])))
    return tuple(pairs) if pairs else None


def _trace_config(args: argparse.Namespace) -> Optional[TraceConfig]:
    """The tracing config implied by the trace flags (or None)."""
    wants_trace = (getattr(args, "trace_out", None) is not None
                   or getattr(args, "trace_jsonl", None) is not None)
    if not wants_trace:
        return None
    return TraceConfig(sample_every=getattr(args, "trace_sample", 1))


def _hedge_config(args: argparse.Namespace) -> Optional[HedgeConfig]:
    """The hedging config implied by ``--hedge-budget`` (or None)."""
    budget = getattr(args, "hedge_budget", None)
    if budget is None:
        return None
    return HedgeConfig(budget=budget,
                       max_legs=getattr(args, "hedge_legs", 1),
                       seed=getattr(args, "hedge_seed", 0))


def _cache_parent() -> argparse.ArgumentParser:
    """``--cache-capacity --cache-policy --cache-seed``: bounded caches."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("bounded replica caches")
    group.add_argument("--cache-capacity", type=int, default=None,
                       metavar="C",
                       help="bound every client to C resident replica "
                            "copies (partial replication; unset: the "
                            "paper's full replication)")
    group.add_argument("--cache-policy", choices=CACHE_POLICIES,
                       default="lru",
                       help="eviction policy of the bounded cache")
    group.add_argument("--cache-seed", type=int, default=0,
                       help="seed of the eviction tie-break stream")
    return parent


def _cache_config(args: argparse.Namespace) -> Optional[CacheConfig]:
    """The cache config implied by ``--cache-capacity`` (or None)."""
    capacity = getattr(args, "cache_capacity", None)
    if capacity is None:
        return None
    return CacheConfig(capacity=capacity,
                       policy=getattr(args, "cache_policy", "lru"),
                       seed=getattr(args, "cache_seed", 0))


def runconfig_from_args(args: argparse.Namespace) -> RunConfig:
    """The unified :class:`RunConfig` described by the run/fault/partition/
    reliability/trace flag groups — shared by every simulating subcommand."""
    faults = _fault_plan(args)
    partitions = _partition_plan(args)
    reconfig = _reconfig_plan(args)
    hedge = _hedge_config(args)
    reliability = (
        ReliabilityConfig(timeout=args.retry_timeout,
                          backoff=args.retry_backoff,
                          max_retries=args.max_retries)
        if (faults is not None or partitions is not None
            or reconfig is not None or hedge is not None) else None
    )
    return RunConfig(ops=args.ops, warmup=args.warmup, seed=args.seed,
                     mean_gap=args.mean_gap, faults=faults,
                     partitions=partitions, reliability=reliability,
                     failover=args.failover, monitor=args.monitor,
                     tracing=_trace_config(args), reconfig=reconfig,
                     quorum_weights=_quorum_weights(args), hedge=hedge,
                     cache=_cache_config(args))


def _csv_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip() != ""]


def _csv_protocols(text: str) -> List[str]:
    if text.strip() == "all":
        return protocol_names()
    return [part.strip() for part in text.split(",") if part.strip()]


# ----------------------------------------------------------------------
# parser assembly
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Analytic performance model of data-replication DSM "
                    "(Srbljic & Budin, HPDC 1993)",
    )
    parser.add_argument("--version", action="version",
                        version="%(prog)s " + _version())
    sub = parser.add_subparsers(dest="command", required=True)

    known = ", ".join(all_protocol_names())
    system, point = _system_parent(), _point_parent()
    run, fault, rel = _run_parent(), _fault_parent(), _reliability_parent()
    part, trace = _partition_parent(), _trace_parent()
    reconf, cache = _reconfig_parent(), _cache_parent()

    p_acc = sub.add_parser("acc", help="analytic steady-state cost",
                           parents=[system, point])
    p_acc.add_argument("protocol", help=f"one of: {known}")
    p_acc.add_argument("--method", choices=["auto", "closed_form", "markov"],
                       default="auto")

    sub.add_parser("rank", help="rank all protocols",
                   parents=[system, point])

    p_sim = sub.add_parser("simulate", help="run the simulator",
                           parents=[system, point, run, fault, part, rel,
                                    reconf, cache, trace])
    p_sim.add_argument("protocol", help=f"one of: {known}")
    p_sim.add_argument("--M", type=int, default=1,
                       help="number of shared objects")
    p_sim.add_argument("--capacity", type=int, default=None,
                       help="finite replica pool per client (Section 6)")

    p_trace = sub.add_parser(
        "trace",
        help="run one simulation with structured tracing and export it",
        parents=[system, point, run, fault, part, rel],
    )
    p_trace.add_argument("protocol", help=f"one of: {known}")
    p_trace.add_argument("--M", type=int, default=1,
                         help="number of shared objects")
    p_trace.add_argument("--out", default="trace.json",
                         help="Chrome trace output path (load in Perfetto "
                              "or chrome://tracing)")
    p_trace.add_argument("--jsonl", default=None,
                         help="optional JSONL event-stream output path")
    p_trace.add_argument("--sample", type=int, default=1, metavar="K",
                         help="record every K-th operation span")

    p_prof = sub.add_parser(
        "profile",
        help="run one simulation under the wall-clock profiler",
        parents=[system, point, run, fault, part, rel],
    )
    p_prof.add_argument("protocol", help=f"one of: {known}")
    p_prof.add_argument("--M", type=int, default=1,
                        help="number of shared objects")
    p_prof.add_argument("--top", type=int, default=10,
                        help="hot paths to show (by total time)")

    p_place = sub.add_parser(
        "place",
        help="home-vs-client activity-center placement saving",
        parents=[system, point],
    )
    p_place.add_argument("protocol", help=f"one of: {known}")

    p_val = sub.add_parser("validate",
                           help="analytical vs simulated acc (Table 7 cell)",
                           parents=[system, point, run, fault, part, rel,
                                    reconf])
    p_val.add_argument("protocol", help=f"one of: {known}")
    p_val.add_argument("--M", type=int, default=20,
                       help="number of shared objects")

    p_sweep = sub.add_parser(
        "sweep",
        help="evaluate a parameter grid through the sweep engine",
        parents=[system, run, fault, part, rel, reconf],
    )
    p_sweep.add_argument("--protocols", type=_csv_protocols,
                         default=protocol_names(), metavar="NAME[,NAME...]",
                         help=f"comma-separated protocols or 'all' "
                              f"(default: all; known: {known})")
    p_sweep.add_argument("--p-values", type=_csv_floats, required=True,
                         metavar="F[,F...]",
                         help="grid of activity-center write probabilities")
    p_sweep.add_argument("--disturb-values", type=_csv_floats,
                         default=[0.0], metavar="F[,F...]",
                         help="grid of sigma/xi disturbance probabilities")
    p_sweep.add_argument("--kind", choices=["analytic", "sim", "compare"],
                         default="compare",
                         help="what each cell evaluates")
    p_sweep.add_argument("--method",
                         choices=["auto", "closed_form", "markov"],
                         default="auto", help="analytic evaluation method")
    p_sweep.add_argument("--M", type=int, default=20,
                         help="number of shared objects")
    p_sweep.add_argument("--workers", type=int, default=1,
                         help="worker processes (1 = in-process)")
    p_sweep.add_argument("--out", default="sweep.jsonl",
                         help="JSONL output path (streamed as cells finish)")
    p_sweep.add_argument("--cache-dir", default=".repro-sweep-cache",
                         help="result-cache directory")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="disable the result cache")
    p_sweep.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress output")

    p_chaos = sub.add_parser(
        "chaos",
        help="deterministic chaos fuzzing with schedule shrinking",
        description="Fuzz random fault+partition schedules across "
                    "protocols with the consistency monitor on; every "
                    "violating schedule is shrunk to a minimal "
                    "reproducing cell and written as a repro JSON.",
    )
    p_chaos.add_argument("--seeds", type=int, default=25,
                         help="fuzz seeds per protocol")
    p_chaos.add_argument("--base-seed", type=int, default=0,
                         help="campaign base seed (same base seed -> "
                              "byte-identical findings)")
    p_chaos.add_argument("--protocols", type=_csv_protocols,
                         default=[], metavar="NAME[,NAME...]",
                         help="comma-separated protocols or 'all' "
                              "(default: every protocol incl. extensions; "
                              f"known: {known})")
    p_chaos.add_argument("--N", type=int, default=4,
                         help="clients per fuzzed system")
    p_chaos.add_argument("--M", type=int, default=2,
                         help="shared objects per fuzzed system")
    p_chaos.add_argument("--ops", type=int, default=300,
                         help="operations per fuzzed run")
    p_chaos.add_argument("--mean-gap", type=float, default=25.0,
                         help="mean Poisson inter-arrival gap")
    p_chaos.add_argument("--shrink-budget", type=int, default=64,
                         help="max simulator runs per finding's shrink")
    p_chaos.add_argument("--workers", type=int, default=1,
                         help="worker processes for the fuzzing sweep")
    p_chaos.add_argument("--out", default=None,
                         help="optional JSONL path for every fuzzed row")
    p_chaos.add_argument("--repro-dir", default="chaos-repros",
                         help="directory for shrunk repro JSON files")
    p_chaos.add_argument("--replay", metavar="REPRO_JSON", default=None,
                         help="re-run a repro file's shrunk schedule "
                              "instead of fuzzing")
    p_chaos.add_argument("--trace-out", metavar="PATH", default=None,
                         help="with --replay: export a Chrome trace of "
                              "the replayed schedule to PATH")
    p_chaos.add_argument("--trace-sample", type=int, default=1,
                         metavar="K",
                         help="with --replay --trace-out: record every "
                              "K-th operation span")
    p_chaos.add_argument("--slow-windows", action="store_true",
                         help="also fuzz gray failures: draw straggler "
                              "slow windows and (for quorum protocols) "
                              "coin-flipped hedging; off keeps schedules "
                              "bit-identical to earlier campaigns")
    p_chaos.add_argument("--bounded-caches", action="store_true",
                         help="also fuzz partial replication: coin-flip "
                              "a random bounded replica cache (capacity, "
                              "eviction policy, seed) onto each cell; off "
                              "keeps schedules bit-identical to earlier "
                              "campaigns")
    p_chaos.add_argument("--quiet", action="store_true",
                         help="suppress per-cell progress output")

    p_scen = sub.add_parser(
        "scenarios",
        help="the declarative scenario catalog "
             "(list/show/run/compare/report)",
        description="Work with the scenario catalog: committed JSON/TOML "
                    "documents that describe whole studies (protocol set, "
                    "workload, run configuration, sweep axes) and run "
                    "through the standard sweep engine and result cache.",
    )
    scen_sub = p_scen.add_subparsers(dest="scenarios_command", required=True)

    scen_catalog = argparse.ArgumentParser(add_help=False)
    scen_catalog.add_argument("--catalog", default=None, metavar="DIR",
                              help="scenario catalog directory (default: "
                                   "$REPRO_SCENARIOS, ./scenarios, or the "
                                   "repository's committed catalog)")

    scen_run = argparse.ArgumentParser(add_help=False)
    scen_run.add_argument("name", help="scenario name (or a .json/.toml "
                                       "file path)")
    scen_run.add_argument("--cells", type=int, default=None, metavar="K",
                          help="run only the first K cells (smoke runs)")
    scen_run.add_argument("--workers", type=int, default=1,
                          help="worker processes (1 = in-process)")
    scen_run.add_argument("--cache-dir", default=".repro-sweep-cache",
                          help="result-cache directory (shared with the "
                               "sweep command and the benchmarks)")
    scen_run.add_argument("--no-cache", action="store_true",
                          help="disable the result cache")
    scen_run.add_argument("--quiet", action="store_true",
                          help="suppress per-cell progress output")
    scen_run.add_argument("--out", default=None, metavar="PATH",
                          help="JSONL output path (run default: "
                               "scenario-<name>.jsonl; compare writes "
                               "rows only when given)")

    p_list = scen_sub.add_parser("list", parents=[scen_catalog],
                                 help="list the catalog's scenarios")
    p_list.add_argument("--tag", default=None,
                        help="only scenarios carrying this tag")

    p_show = scen_sub.add_parser("show", parents=[scen_catalog],
                                 help="show one resolved scenario")
    p_show.add_argument("name", help="scenario name (or a .json/.toml "
                                     "file path)")
    p_show.add_argument("--json", action="store_true", dest="as_json",
                        help="print the resolved document as JSON instead "
                             "of the human-readable summary")

    scen_sub.add_parser("run", parents=[scen_catalog, scen_run],
                        help="run one scenario through the sweep engine")

    p_cmp = scen_sub.add_parser(
        "compare", parents=[scen_catalog, scen_run],
        help="run one scenario and compare its rows byte-for-byte "
             "against a committed baseline JSONL",
    )
    p_cmp.add_argument("--baseline", default=None, metavar="PATH",
                       help="baseline JSONL (default: "
                            "<catalog>/baselines/<name>.jsonl)")

    p_rep = scen_sub.add_parser(
        "report", parents=[scen_catalog],
        help="render Markdown tables from scenario result rows",
        description="Render a Markdown report — one table per scenario "
                    "family — from JSONL row files (scenario run outputs "
                    "or committed baselines). With no paths, reports on "
                    "every file under <catalog>/baselines/.",
    )
    p_rep.add_argument("paths", nargs="*", metavar="ROWS_JSONL",
                       help="JSONL row files; each file is one family "
                            "(section) named by its stem")
    p_rep.add_argument("--out", default=None, metavar="PATH",
                       help="write the Markdown report to PATH instead "
                            "of stdout")
    return parser


# ----------------------------------------------------------------------
# subcommand bodies
# ----------------------------------------------------------------------

def _export_trace(tracer, chrome_path, jsonl_path, label: str) -> None:
    """Write the requested trace exports and report where they went."""
    if tracer is None:
        return
    summary = tracer.summary()
    events = summary["span_events"] + summary["system_events"]
    print(f"trace           = {summary['spans']} spans / "
          f"{summary['ops_seen']} ops, {events} events "
          f"(sample_every={summary['sample_every']}, "
          f"{summary['dropped_events']} dropped), "
          f"span cost {summary['total_cost']:.1f}")
    if chrome_path is not None:
        write_chrome_trace(tracer, chrome_path, label=label)
        print(f"chrome trace   -> {chrome_path} "
              f"(load in Perfetto or chrome://tracing)")
    if jsonl_path is not None:
        write_events_jsonl(tracer, jsonl_path)
        print(f"trace jsonl    -> {jsonl_path}")


def _cmd_simulate(args: argparse.Namespace, deviation: Deviation,
                  params: WorkloadParams) -> int:
    config = runconfig_from_args(args)
    system = DSMSystem.from_config(args.protocol, params, config,
                                   M=args.M, capacity=args.capacity)
    workload = SyntheticWorkload(params, deviation, M=args.M)
    result = system.run_workload(workload, config)
    warmup = config.resolved_warmup
    stats = system.metrics.reliability
    if stats.delivery_failures == 0:
        # a degraded run legitimately leaves copies incoherent
        # (an abandoned message may have been an invalidation).
        system.check_coherence()
    if config.quorum_weights is not None:
        predicted = weighted_quorum_acc(params, deviation,
                                        config.quorum_weights)
        analytic_note = "(no pool, fault-free, weighted quorums)"
    else:
        predicted = analytical_acc(args.protocol, params, deviation)
        analytic_note = "(no pool, fault-free)"
    print(f"simulated acc   = {result.acc:.4f}")
    print(f"analytic acc    = {predicted:.4f} {analytic_note}")
    print(f"messages        = {result.messages}")
    if result.measured > 0:
        lat = result.metrics.latency_stats(skip=warmup)
        print(f"latency mean/p95 = {lat['mean']:.2f} / "
              f"{lat['p95']:.2f}")
    if (config.faults is not None or config.partitions is not None
            or config.reconfig is not None
            or config.quorum_weights is not None
            or config.hedge is not None
            or config.cache is not None):
        # one unified banner: fault plan, partition plan (detector +
        # degraded-mode policy), resolved retry policy, reconfiguration
        # plan, vote weights, failover, monitor.
        print("robustness:")
        for line in config.describe_robustness().splitlines():
            print(f"  {line}")
        if result.measured > 0:
            breakdown = system.metrics.average_cost_breakdown(skip=warmup)
            parts = (f"{breakdown['protocol']:.4f} protocol"
                     f" + {breakdown['reliability']:.4f} reliability")
            if system.spec.quorum_based:
                parts += f" (+ {breakdown['quorum']:.4f} quorum)"
            if config.hedge is not None:
                parts += f" (+ {breakdown['hedge']:.4f} hedge)"
            if config.cache is not None:
                parts += f" (+ {breakdown['cache']:.4f} cache)"
            if system.reconfig is not None:
                parts += f" (+ {breakdown['reconfig']:.4f} reconfig)"
            if system.recovery is not None:
                parts += f" (+ {breakdown['recovery']:.4f} recovery)"
            if system.detector is not None:
                parts += f" (+ {breakdown['detector']:.4f} detector)"
            print(f"acc breakdown   = {parts}")
        if system.detector is not None:
            counts = system.detector.state_counts()
            print(f"detector states = {counts['healthy']} healthy / "
                  f"{counts['demoted']} demoted / "
                  f"{counts['suspected']} suspected")
            part = system.metrics.partition
            if part.demotions or part.restorations:
                print(f"demotions       = {part.demotions} "
                      f"({part.restorations} restored)")
        if config.hedge is not None:
            print(f"hedges launched = {stats.hedges_launched}")
        if config.cache is not None:
            cstats = system.metrics.cache
            print(f"cache hits/misses = {cstats.hits}/{cstats.misses} "
                  f"({cstats.capacity_misses} capacity misses)")
            print(f"evictions       = {cstats.evictions} "
                  f"({cstats.writebacks} write-backs)")
        print(f"retransmissions = {stats.retransmissions}")
        print(f"acks            = {stats.acks}")
        print(f"drops           = {stats.drops}")
        print(f"dups suppressed = {stats.duplicates_suppressed}")
        if system.spec.quorum_based:
            # quorum liveness counters, printed unconditionally: a zero
            # confirms no phase was ever starved (the interesting datum).
            print(f"dgrams abandoned = {stats.dgram_abandoned} "
                  f"(quorum re-selection owns liveness)")
            print(f"quorum re-selections = {stats.quorum_reselections}")
        elif stats.dgram_abandoned:
            print(f"dgrams abandoned = {stats.dgram_abandoned} "
                  f"(quorum re-selection owns liveness)")
        part_stats = system.metrics.partition
        if part_stats.suppressed_violations:
            print(f"suppressed violations = "
                  f"{part_stats.suppressed_violations} "
                  f"(retries toward quarantined nodes)")
        if stats.crashes:
            print(f"crashes/recoveries = {stats.crashes}/"
                  f"{stats.recoveries}")
        if stats.delivery_failures:
            print(f"delivery failures  = {stats.delivery_failures} "
                  f"({result.incomplete_ops} ops incomplete)")
            for v in result.violations:
                if v.kind == "delivery":
                    print(f"  [delivery] {v.detail}")
        if config.partitions is not None:
            part = system.metrics.partition
            print(f"heartbeats      = {part.heartbeats} "
                  f"({part.suspicions} suspicions, "
                  f"{part.rejoins} rejoins)")
            print(f"partition time  = {part.partition_time:.1f}")
            if part.stale_reads_served:
                print(f"stale reads served = {part.stale_reads_served}")
            if part.sends_absorbed:
                print(f"sends absorbed  = {part.sends_absorbed}")
            if part.ops_stalled:
                print(f"ops stalled     = {part.ops_stalled}")
        if system.recovery is not None:
            rec = system.metrics.recovery
            print(f"epoch resets    = {rec.epoch_resets}"
                  + (f" ({rec.failovers} failovers)" if rec.failovers
                     else ""))
            print(f"ops lost/redriven = {rec.ops_lost}/{rec.ops_redriven}")
            print(f"resync cost     = {rec.resync_cost:.1f} "
                  f"({rec.resync_objects} objects)")
            print(f"quarantine time = {rec.quarantine_time:.1f}")
        if system.reconfig is not None:
            rc = system.metrics.reconfig
            members = ",".join(str(n)
                               for n in system.membership.committed)
            print(f"transitions     = {rc.transitions} "
                  f"({rc.commits} committed, {rc.aborts} aborted)")
            print(f"membership      = {{{members}}} "
                  f"(epoch {system.cluster.epoch}, "
                  f"joint time {rc.joint_time:.1f})")
            print(f"ops redriven    = {rc.ops_redriven} "
                  f"(epoch-boundary re-drives)")
            print(f"state transfer  = {rc.transfer_objects} objects, "
                  f"cost {rc.transfer_cost:.1f} "
                  f"({rc.transfer_retries} retries, "
                  f"{rc.transfers_failed} failed)")
    if args.capacity is not None:
        print(f"data-op cost    = {system.data_cost_rate(warmup):.4f}")
        evictions = sum(
            node.pool.evictions
            for node in system.nodes.values() if node.pool
        )
        print(f"pool evictions  = {evictions}")
    _export_trace(system.tracer, args.trace_out, args.trace_jsonl,
                  label=f"simulate {args.protocol}")
    if system.monitor is not None:
        consistency = [v for v in result.violations
                       if v.kind != "delivery"]
        if consistency:
            print(f"consistency VIOLATIONS = {len(consistency)}")
            for v in consistency:
                print(f"  [{v.kind}] obj {v.obj}: {v.detail}")
            return 1
        suffix = (f" ({system.monitor.inconclusive} inconclusive)"
                  if system.monitor.inconclusive else "")
        print(f"consistency     = ok{suffix}")
    return 0


def _cmd_trace(args: argparse.Namespace, deviation: Deviation,
               params: WorkloadParams) -> int:
    config = runconfig_from_args(args).with_(
        tracing=TraceConfig(sample_every=args.sample)
    )
    system = DSMSystem.from_config(args.protocol, params, config, M=args.M)
    workload = SyntheticWorkload(params, deviation, M=args.M)
    result = system.run_workload(workload, config)
    print(f"simulated acc   = {result.acc:.4f}")
    print(f"messages        = {result.messages}")
    _export_trace(system.tracer, args.out, args.jsonl,
                  label=f"trace {args.protocol}")
    return 0


def _cmd_profile(args: argparse.Namespace, deviation: Deviation,
                 params: WorkloadParams) -> int:
    config = runconfig_from_args(args)
    profiler = Profiler()
    system = DSMSystem.from_config(args.protocol, params, config,
                                   M=args.M, profiler=profiler)
    workload = SyntheticWorkload(params, deviation, M=args.M)
    result = system.run_workload(workload, config)
    print(f"simulated acc   = {result.acc:.4f}")
    print(f"events executed = {system.scheduler.executed}")
    print()
    print(profiler.format_table(top=args.top))
    return 0


def _cmd_sweep(args: argparse.Namespace, deviation: Deviation) -> int:
    base = workload_from_args(args)  # the point flags default to 0 here
    config = runconfig_from_args(args)
    spec = SweepSpec.cartesian(
        protocols=args.protocols,
        base=base,
        p_values=args.p_values,
        disturb_values=args.disturb_values,
        deviation=deviation,
        kind=args.kind,
        M=args.M,
        method=args.method,
        config=config.with_(seed=None),  # cells derive their own seeds
        seed=args.seed,
    )
    if not len(spec):
        print("error: the grid has no feasible cells", file=sys.stderr)
        return 2

    def progress(done: int, total: int, row: dict) -> None:
        tag = row["status"]
        detail = ""
        if tag == "ok" and row.get("discrepancy_pct") is not None:
            detail = f" disc={row['discrepancy_pct']:+.2f}%"
        elif tag == "failed":
            detail = f" ({row['error']})"
        print(f"[{done}/{total}] {row['protocol']} p={row['p']:g} "
              f"disturb={row['disturb']:g} {tag}{detail}",
              file=sys.stderr)

    runner = SweepRunner(
        spec,
        workers=args.workers,
        cache=None if args.no_cache else args.cache_dir,
        out_path=args.out,
        progress=None if args.quiet else progress,
    )
    result = runner.run()
    print(f"cells     = {result.total} "
          f"({result.computed} computed, {result.cached} cached, "
          f"{result.failed} failed)")
    if result.cache_stats is not None:
        print(f"cache     = {result.cache_stats.hits} hits / "
              f"{result.cache_stats.lookups} lookups "
              f"({100 * result.cache_stats.hit_rate:.0f}%)")
    if args.kind == "compare":
        print(f"max |disc| = {result.max_abs_discrepancy_pct():.2f}%")
    print(f"results   -> {result.out_path}")
    violations = sum(row.get("violations", 0) for row in result.rows
                     if row.get("status") == "ok")
    if violations:
        print(f"consistency VIOLATIONS = {violations}", file=sys.stderr)
        return 1
    return 1 if result.failed else 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .chaos import (ChaosOptions, load_repro, replay_repro, run_chaos,
                        violates, write_repros)

    if args.replay is not None:
        cell = load_repro(args.replay)
        print(f"replaying {args.replay}: {cell.protocol}")
        if cell.config is not None:
            if cell.config.faults is not None:
                print(f"  faults:     {cell.config.faults.describe()}")
            if cell.config.partitions is not None:
                print(f"  partitions: "
                      f"{cell.config.partitions.describe()}")
        row = replay_repro(args.replay, trace_out=args.trace_out,
                           trace_sample=args.trace_sample)
        if args.trace_out is not None:
            print(f"chrome trace -> {args.trace_out} "
                  f"(load in Perfetto or chrome://tracing)")
        if violates(row):
            kinds = ", ".join(row.get("violation_kinds", ())) or \
                row.get("error", "failed")
            print(f"reproduced: {kinds}")
            return 1
        print("did NOT reproduce (row is clean)")
        return 0

    options = ChaosOptions(
        base_seed=args.base_seed,
        seeds=args.seeds,
        protocols=tuple(args.protocols),
        N=args.N,
        M=args.M,
        ops=args.ops,
        mean_gap=args.mean_gap,
        shrink_budget=args.shrink_budget,
        workers=args.workers,
        slow_windows=args.slow_windows,
        bounded_caches=args.bounded_caches,
    )

    def progress(done: int, total: int, row: dict) -> None:
        flag = " VIOLATION" if violates(row) else ""
        print(f"[{done}/{total}] {row['protocol']} "
              f"seed={row['seed']}{flag}", file=sys.stderr)

    def shrink_progress(finding) -> None:
        print(f"shrinking {finding.protocol} "
              f"fuzz_seed={finding.fuzz_seed}: "
              f"{finding.fault_windows} window(s) left after "
              f"{finding.shrink_runs} run(s)", file=sys.stderr)

    report = run_chaos(
        options,
        out_path=args.out,
        progress=None if args.quiet else progress,
        shrink_progress=None if args.quiet else shrink_progress,
    )
    print(report.summary())
    if report.ok:
        return 0
    paths = write_repros(report, args.repro_dir)
    for finding, path in zip(report.findings, paths):
        print()
        print(finding.describe())
        print(f"  repro:      {path}")
    return 1


def _scenario_progress(done: int, total: int, row: dict) -> None:
    tag = row["status"]
    detail = ""
    if tag == "ok" and row.get("discrepancy_pct") is not None:
        detail = f" disc={row['discrepancy_pct']:+.2f}%"
    elif tag == "failed":
        detail = f" ({row['error']})"
    print(f"[{done}/{total}] {row['protocol']} p={row['p']:g} "
          f"disturb={row['disturb']:g} {tag}{detail}", file=sys.stderr)


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .scenarios import (ScenarioCatalog, compare_to_baseline,
                            default_catalog_dir, load_scenario, run_scenario)

    catalog = None
    if args.catalog is not None:
        catalog = ScenarioCatalog(args.catalog)

    if args.scenarios_command == "list":
        if catalog is None:
            root = default_catalog_dir()
            if root is None:
                print("error: no scenario catalog found (set "
                      "REPRO_SCENARIOS, create ./scenarios, or pass "
                      "--catalog)", file=sys.stderr)
                return 2
            catalog = ScenarioCatalog(root)
        print(f"catalog: {catalog.root}")
        shown = 0
        for scenario in catalog.load_all():
            if args.tag is not None and args.tag not in scenario.tags:
                continue
            shown += 1
            cells = len(scenario.to_spec())
            tags = f" [{', '.join(scenario.tags)}]" if scenario.tags else ""
            title = scenario.title or scenario.description
            print(f"  {scenario.name:18s} {cells:4d} cells  "
                  f"{scenario.kind:8s}{tags}  {title}")
        if not shown:
            print("  (no scenarios" +
                  (f" tagged {args.tag!r})" if args.tag else ")"))
        return 0

    if args.scenarios_command == "report":
        from .scenarios import collect_families, render_report
        paths = list(args.paths)
        if not paths:
            root = (catalog.root if catalog is not None
                    else default_catalog_dir())
            if root is None:
                print("error: no scenario catalog found (set "
                      "REPRO_SCENARIOS, create ./scenarios, pass "
                      "--catalog, or name rows files)", file=sys.stderr)
                return 2
            from pathlib import Path
            paths = sorted((Path(root) / "baselines").glob("*.jsonl"))
            if not paths:
                print(f"error: no baseline rows under {root}/baselines",
                      file=sys.stderr)
                return 2
        try:
            report = render_report(collect_families(paths))
        except (FileNotFoundError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if args.out is not None:
            from pathlib import Path
            Path(args.out).write_text(report, encoding="utf-8")
            print(f"report    -> {args.out}")
        else:
            print(report, end="")
        return 0

    if args.scenarios_command == "show":
        scenario = load_scenario(args.name, catalog=catalog)
        if args.as_json:
            import json as _json
            print(_json.dumps(scenario.to_dict(), indent=2, sort_keys=True))
        else:
            print(scenario.describe())
        return 0

    # run / compare share the execution path
    scenario = load_scenario(args.name, catalog=catalog)
    out_path = args.out
    if args.scenarios_command == "run" and out_path is None:
        out_path = f"scenario-{scenario.name}.jsonl"
    result = run_scenario(
        scenario,
        cells=args.cells,
        workers=args.workers,
        cache=None if args.no_cache else args.cache_dir,
        out_path=out_path,
        progress=None if args.quiet else _scenario_progress,
    )
    print(f"scenario  = {scenario.name}")
    print(f"cells     = {result.total} "
          f"({result.computed} computed, {result.cached} cached, "
          f"{result.failed} failed)")
    if result.cache_stats is not None:
        print(f"cache     = {result.cache_stats.hits} hits / "
              f"{result.cache_stats.lookups} lookups "
              f"({100 * result.cache_stats.hit_rate:.0f}%)")
    if scenario.kind == "compare":
        print(f"max |disc| = {result.max_abs_discrepancy_pct():.2f}%")
    if args.scenarios_command == "compare":
        baseline = args.baseline
        if baseline is None:
            root = (catalog.root if catalog is not None
                    else default_catalog_dir())
            if root is None:
                print("error: no catalog to locate the baseline in; pass "
                      "--baseline", file=sys.stderr)
                return 2
            from pathlib import Path
            baseline = Path(root) / "baselines" / f"{scenario.name}.jsonl"
        diff = compare_to_baseline(result, baseline)
        print(f"baseline  = {baseline}")
        print(f"compare   = {diff.summary()}")
        if not diff.identical:
            for line in diff.missing_in_baseline[:3]:
                print(f"  not in baseline: {line}", file=sys.stderr)
            for line in diff.missing_in_run[:3]:
                print(f"  not reproduced:  {line}", file=sys.stderr)
            return 1
        return 0
    print(f"results   -> {result.out_path}")
    return 1 if result.failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    deviation = _DEVIATIONS[getattr(args, "deviation", "read")]
    try:
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if getattr(args, "protocol", None) is not None:
            # resolve early for a uniform "unknown protocol" error.
            from .protocols.registry import get_protocol
            get_protocol(args.protocol)
        if args.command == "sweep":
            for name in args.protocols:
                from .protocols.registry import get_protocol
                get_protocol(name)
            return _cmd_sweep(args, deviation)
        params = workload_from_args(args)
        if args.command == "acc":
            value = analytical_acc(args.protocol, params, deviation,
                                   method=args.method)
            print(f"acc({args.protocol}, {deviation.value}) = {value:.4f}")
        elif args.command == "rank":
            print(f"{'protocol':20s} {'acc':>12}")
            for name, acc in rank_protocols(params, deviation,
                                            ALL_PROTOCOLS):
                print(f"{name:20s} {acc:12.4f}")
        elif args.command == "simulate":
            return _cmd_simulate(args, deviation, params)
        elif args.command == "trace":
            return _cmd_trace(args, deviation, params)
        elif args.command == "profile":
            return _cmd_profile(args, deviation, params)
        elif args.command == "place":
            client, home, saving = placement_advantage(
                args.protocol, params, deviation
            )
            print(f"client placement acc = {client:.4f}")
            print(f"home placement acc   = {home:.4f}")
            print(f"saving               = {saving:.4f}"
                  + ("  (placement-indifferent)" if abs(saving) < 1e-9
                     else ""))
        elif args.command == "validate":
            config = runconfig_from_args(args)
            cell = compare_cell(args.protocol, params, deviation, M=args.M,
                                config=config)
            print(f"analytic  = {cell.acc_analytic:.4f}")
            print(f"simulated = {cell.acc_sim:.4f}")
            print(f"discrepancy = {cell.discrepancy_pct:.2f}%")
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
