"""Figure 6 reproduction: characteristic acc surfaces, write disturbance.

Same four panels as Figure 5 (N=50, a=10, P=30, S=5000 / S=100 for the
Write-Through-V panel), but the ``a`` disturbing clients issue *writes*
with per-client probability ``xi``.  Under write disturbance every
protocol's cost grows with ``xi`` (more writers, more invalidations/
updates), which the benchmark asserts alongside regenerating the series.
"""

import numpy as np
import pytest

from repro.core import Deviation, WorkloadParams, figure_surfaces, markov_acc

from .conftest import emit

DEV = Deviation.WRITE


def run_panels():
    return figure_surfaces(DEV, p_points=11, disturb_points=11)


def format_panels(panels):
    lines = [
        "Figure 6 (reproduced): acc surfaces, write disturbance, "
        "N=50 a=10 P=30 (S=5000; panel b S=100)",
    ]
    for key, surfaces in sorted(panels.items()):
        for surf in surfaces:
            lines.append(f"\npanel ({key}) {surf.protocol}: "
                         "rows p, cols xi")
            for i in range(0, 11, 2):
                row = surf.acc[i, ::2]
                cells = "".join(
                    "      --." if np.isnan(v) else f"{v:10.1f}" for v in row
                )
                lines.append(f"  p={surf.p_values[i]:4.2f} {cells}")
    return "\n".join(lines)


def test_figure6_surfaces(benchmark, results_dir):
    panels = benchmark.pedantic(run_panels, rounds=1, iterations=1)
    emit(results_dir, "figure6_surfaces.txt", format_panels(panels))
    for key, surfaces in panels.items():
        for surf in surfaces:
            feasible = ~np.isnan(surf.acc)
            assert np.nanmin(surf.acc) >= -1e-9
            # cost is monotone in xi at every fixed p (more writers hurt)
            for i in range(surf.acc.shape[0]):
                vals = surf.acc[i, :][feasible[i, :]]
                assert (np.diff(vals) >= -1e-6).all(), (key, surf.protocol)
    # with xi = 0 Figure 6 degenerates to the ideal-workload edge
    by_name = {s.protocol: s for s in panels["a"]}
    for proto in ("write_once", "synapse", "illinois", "berkeley"):
        col0 = by_name[proto].acc[:, 0]
        assert np.allclose(col0[~np.isnan(col0)], 0.0)


def test_figure6_protocol_ordering_under_heavy_write_sharing(results_dir):
    """With several writers the update protocols lose their Figure 5
    advantage: every write broadcasts parameters; the invalidation
    protocols serialize through ownership instead."""
    base = WorkloadParams(N=50, p=0.0, a=10, S=5000.0, P=30.0)
    rows = []
    for p, xi in [(0.1, 0.05), (0.3, 0.05), (0.1, 0.08)]:
        w = base.with_(p=p, xi=xi)
        dragon = markov_acc("dragon", w, DEV)
        wt = markov_acc("write_through", w, DEV)
        rows.append((p, xi, dragon, wt))
        # Dragon pays N(P+1) per write: with this much write traffic it
        # exceeds plain Write-Through's (S+2)-miss economy only when the
        # write mass is large; assert the crossover direction:
        assert dragon == pytest.approx((p + 10 * xi) * 50 * 31.0)
    text = "\n".join(
        f"p={p:4.2f} xi={xi:4.2f}  dragon={d:10.1f}  write_through={w:10.1f}"
        for p, xi, d, w in rows
    )
    emit(results_dir, "figure6_orderings.txt", text)
