"""Performance microbenchmarks of the two engines themselves.

Not a paper artifact — these track the throughput of the substrate so
regressions in the simulator's hot path (event loop, FIFO fabric, queue
pumping) and the analytic solver (chain enumeration + dense stationary
solve) are visible in the pytest-benchmark history.
"""


from repro.core import Deviation, WorkloadParams, markov_acc
from repro.core.acc import _markov_cached
from repro.sim import DSMSystem, RunConfig
from repro.workloads import read_disturbance_workload

PARAMS = WorkloadParams(N=8, p=0.3, a=6, sigma=0.1, S=100.0, P=30.0)


def test_simulator_throughput(benchmark):
    """Operations per second through the full message-passing stack."""
    workload = read_disturbance_workload(PARAMS, M=4)

    def run():
        system = DSMSystem("berkeley", N=PARAMS.N, M=4, S=PARAMS.S,
                           P=PARAMS.P)
        return system.run_workload(
            workload, RunConfig(ops=3000, warmup=500, seed=1,
                                mean_gap=10.0))

    result = benchmark(run)
    assert result.measured == 2500


def test_markov_solver_speed(benchmark):
    """One exact chain evaluation (largest per-protocol state space)."""
    big = WorkloadParams(N=50, p=0.2, a=10, sigma=0.05, S=5000.0, P=30.0)

    def run():
        _markov_cached.cache_clear()
        return markov_acc("write_once", big, Deviation.READ)

    acc = benchmark(run)
    assert acc > 0


def test_closed_form_grid_speed(benchmark):
    """Vectorized closed-form surface: the cheap path surfaces use."""
    import numpy as np
    from repro.core.closed_forms import acc_write_through_rd

    p = np.linspace(0, 0.9, 200)[:, None]
    sigma = np.linspace(0, 0.009, 200)[None, :]

    def run():
        return acc_write_through_rd(p, sigma, 10, 5000.0, 30.0, 50)

    grid = benchmark(run)
    assert grid.shape == (200, 200)
