"""Table 6 reproduction: steady-state ``acc`` per protocol, read disturbance.

The paper's Table 6 tabulates the closed-form average communication cost
per operation for all eight protocols under the read-disturbance deviation.
The table is unreadable in the available scan, so this benchmark
regenerates it from our reconstruction: the derived closed forms where they
exist, and the exact Markov evaluation for every protocol (the two agree to
machine precision wherever both exist — asserted here).

Regenerates: one row per protocol over a representative ``(p, sigma)``
grid with the Figure 5 parameterization (``N=50, a=10, P=30, S=5000``).
"""

import pytest

from repro.core import (
    ALL_PROTOCOLS,
    Deviation,
    WorkloadParams,
    analytical_acc,
    has_closed_form,
)

from .conftest import emit

GRID = [(0.1, 0.02), (0.3, 0.02), (0.6, 0.02), (0.1, 0.06), (0.3, 0.06)]
BASE = WorkloadParams(N=50, p=0.0, a=10, S=5000.0, P=30.0)


def build_table():
    """Compute the Table 6 values (Markov, cross-checked vs closed forms)."""
    rows = []
    for proto in ALL_PROTOCOLS:
        cells = []
        for p, sigma in GRID:
            w = BASE.with_(p=p, sigma=sigma)
            acc_markov = analytical_acc(proto, w, Deviation.READ,
                                        method="markov")
            if has_closed_form(proto, Deviation.READ):
                acc_closed = analytical_acc(proto, w, Deviation.READ,
                                            method="closed_form")
                assert acc_closed == pytest.approx(acc_markov, rel=1e-9)
            cells.append(acc_markov)
        rows.append((proto, cells))
    return rows


def format_table(rows):
    header = f"{'protocol':18s}" + "".join(
        f"  p={p:.1f},s={s:.2f}" for p, s in GRID
    ) + "  closed-form"
    lines = [
        "Table 6 (reproduced): acc per operation, read disturbance, "
        "N=50 a=10 P=30 S=5000",
        header,
    ]
    for proto, cells in rows:
        cf = "yes" if has_closed_form(proto, Deviation.READ) else "markov-only"
        lines.append(
            f"{proto:18s}" + "".join(f"  {c:12.1f}" for c in cells)
            + f"  {cf}"
        )
    return "\n".join(lines)


def test_table6_read_disturbance(benchmark, results_dir):
    rows = benchmark(build_table)
    text = format_table(rows)
    emit(results_dir, "table6.txt", text)
    by_name = dict(rows)
    # sanity anchors from Section 5.1 on every regenerated grid point
    for i, (p, sigma) in enumerate(GRID):
        assert by_name["berkeley"][i] <= by_name["synapse"][i] + 1e-9
        assert by_name["illinois"][i] <= by_name["synapse"][i] + 1e-9
        assert by_name["dragon"][i] == pytest.approx(p * 50 * 31.0)
        assert by_name["firefly"][i] == pytest.approx(p * (50 * 31.0 + 1.0))
