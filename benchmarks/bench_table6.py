"""Table 6 reproduction: steady-state ``acc`` per protocol, read disturbance.

The paper's Table 6 tabulates the closed-form average communication cost
per operation for all eight protocols under the read-disturbance deviation.
The table is unreadable in the available scan, so this benchmark
regenerates it from our reconstruction: the exact Markov evaluation for
every protocol, cross-checked against the derived closed forms where they
exist (the two agree to machine precision — asserted here).

The grid runs through the sweep engine (:mod:`repro.exp`) as pure
``analytic`` cells: one sweep per evaluation method, fanned out over a
worker pool, with the Markov sweep's JSONL rows persisted as the table's
machine-readable artifact.

Regenerates: one row per protocol over a representative ``(p, sigma)``
grid with the Figure 5 parameterization (``N=50, a=10, P=30, S=5000``).
"""

import os

import pytest

from repro.core import (
    ALL_PROTOCOLS,
    Deviation,
    WorkloadParams,
    has_closed_form,
)
from repro.exp import SweepCell, SweepSpec, run_sweep
from repro.exp.runner import row_line

from .conftest import emit

GRID = [(0.1, 0.02), (0.3, 0.02), (0.6, 0.02), (0.1, 0.06), (0.3, 0.06)]
BASE = WorkloadParams(N=50, p=0.0, a=10, S=5000.0, P=30.0)
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "2"))


def build_spec(method: str, protocols) -> SweepSpec:
    """The Table 6 grid as analytic sweep cells for one method."""
    return SweepSpec.explicit(
        SweepCell(
            protocol=proto,
            params=BASE.with_(p=p, sigma=sigma),
            deviation=Deviation.READ,
            kind="analytic",
            method=method,
        )
        for proto in protocols
        for p, sigma in GRID
    )


def build_table():
    """Compute the Table 6 values (Markov, cross-checked vs closed forms)."""
    markov = run_sweep(build_spec("markov", ALL_PROTOCOLS), workers=WORKERS)
    assert markov.failed == 0
    closed_protos = [p for p in ALL_PROTOCOLS
                     if has_closed_form(p, Deviation.READ)]
    closed = run_sweep(build_spec("closed_form", closed_protos),
                       workers=WORKERS)
    assert closed.failed == 0

    def by_cell(result):
        return {(r["protocol"], r["p"], r["disturb"]): r["acc_analytic"]
                for r in result.rows}

    acc_markov, acc_closed = by_cell(markov), by_cell(closed)
    for key, value in acc_closed.items():
        assert value == pytest.approx(acc_markov[key], rel=1e-9), key
    rows = [
        (proto, [acc_markov[(proto, p, sigma)] for p, sigma in GRID])
        for proto in ALL_PROTOCOLS
    ]
    return rows, markov


def format_table(rows):
    header = f"{'protocol':18s}" + "".join(
        f"  p={p:.1f},s={s:.2f}" for p, s in GRID
    ) + "  closed-form"
    lines = [
        "Table 6 (reproduced): acc per operation, read disturbance, "
        "N=50 a=10 P=30 S=5000",
        header,
    ]
    for proto, cells in rows:
        cf = "yes" if has_closed_form(proto, Deviation.READ) else "markov-only"
        lines.append(
            f"{proto:18s}" + "".join(f"  {c:12.1f}" for c in cells)
            + f"  {cf}"
        )
    return "\n".join(lines)


def test_table6_read_disturbance(benchmark, results_dir):
    rows, markov = benchmark(build_table)
    text = format_table(rows)
    emit(results_dir, "table6.txt", text)
    (results_dir / "table6.jsonl").write_text(
        "\n".join(row_line(r) for r in markov.rows) + "\n"
    )
    by_name = dict(rows)
    # sanity anchors from Section 5.1 on every regenerated grid point
    for i, (p, sigma) in enumerate(GRID):
        assert by_name["berkeley"][i] <= by_name["synapse"][i] + 1e-9
        assert by_name["illinois"][i] <= by_name["synapse"][i] + 1e-9
        assert by_name["dragon"][i] == pytest.approx(p * 50 * 31.0)
        assert by_name["firefly"][i] == pytest.approx(p * (50 * 31.0 + 1.0))
