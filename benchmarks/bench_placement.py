"""Activity-center placement benchmark (the tr5/tr6 calculus applied).

Where should the hot writer live relative to the object's home?  The
paper's own trace set answers for Write-Through (sequencer writes cost
``N`` — trace tr6 — instead of ``P + N``); this benchmark generalizes the
question to every protocol: the saving from placing the activity center at
the home node, as a function of the write share.

Expected shape (asserted): the fixed-home protocols save the write-relay
traffic (Write-Through saves ``p·P`` plus all its read misses; Firefly
saves its ACK token); the migrating-owner protocols save ~nothing
(ownership follows the writer anyway) — which is precisely Section 5.1's
"an activity center becomes the sequencer" insight, now quantified.
"""

import numpy as np
import pytest

from repro.core.parameters import Deviation, WorkloadParams
from repro.core.placement import placement_advantage

from .conftest import emit

PROTOS = ["write_through", "write_through_v", "synapse", "illinois",
          "write_once", "berkeley", "dragon", "firefly"]
BASE = WorkloadParams(N=20, p=0.0, a=4, sigma=0.05, S=400.0, P=30.0)


def run_sweep():
    rows = []
    for p in np.linspace(0.05, 0.7, 8):
        w = BASE.with_(p=float(p))
        rows.append((float(p), {
            proto: placement_advantage(proto, w, Deviation.READ)
            for proto in PROTOS
        }))
    return rows


def test_placement_study(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["home-vs-client activity-center placement: saving in acc "
             "(positive = home placement cheaper)",
             f"{'p':>6}" + "".join(f"{p:>18}" for p in PROTOS)]
    for p, per in rows:
        lines.append(f"{p:6.2f}" + "".join(
            f"{per[proto][2]:18.2f}" for proto in PROTOS
        ))
    emit(results_dir, "placement_study.txt", "\n".join(lines))

    for p, per in rows:
        # home placement is never worse, for any protocol
        for proto in PROTOS:
            assert per[proto][2] >= -1e-9, proto
        # the migrating-owner protocols are placement-indifferent
        assert per["berkeley"][2] == pytest.approx(0.0, abs=1e-9)
        assert per["dragon"][2] == pytest.approx(0.0, abs=1e-9)
        # Write-Through's saving includes the relayed parameters (p*P)
        assert per["write_through"][2] >= p * BASE.P - 1e-9
        # Firefly saves exactly its per-write ACK token
        assert per["firefly"][2] == pytest.approx(p, rel=1e-9)
