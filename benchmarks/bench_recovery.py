"""Crash-recovery benchmark: ``acc`` vs crash count for every protocol.

Not a paper artifact — the paper's nodes never lose state — but the
question the recovery subsystem (:mod:`repro.sim.recovery`) exists to
answer: what does ``acc`` cost when nodes suffer amnesia crashes and must
resynchronize, and the sequencer itself can fail over?  The study sweeps
all registered protocols over an increasing number of amnesia crash
windows (the heaviest schedule crashes the sequencer, exercising standby
election) with the consistency monitor attached.

Expectations encoded as assertions: every cell completes with zero
consistency violations, the recovery share is zero without crashes and
positive with them, and the sequencer-crash column records exactly one
failover.
"""

import math
import os

import pytest

from repro.core.parameters import WorkloadParams
from repro.exp import SweepCell, SweepSpec, run_sweep
from repro.protocols.registry import EXTENSION_PROTOCOLS, PROTOCOLS
from repro.sim import CrashWindow, FaultPlan, RunConfig

from .conftest import emit

PARAMS = WorkloadParams(N=4, p=0.3, a=3, sigma=0.15, S=100.0, P=30.0)
ALL_PROTOCOLS = list(PROTOCOLS) + list(EXTENSION_PROTOCOLS)
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "2"))

#: crash schedules of increasing severity; the last one includes the
#: sequencer (node 5 for N=4), so failover fires there and only there.
SCHEDULES = (
    ("none", ()),
    ("one client", (CrashWindow(2, 300.0, 450.0, semantics="amnesia"),)),
    ("two clients", (CrashWindow(2, 300.0, 450.0, semantics="amnesia"),
                     CrashWindow(3, 700.0, 850.0, semantics="amnesia"))),
    ("clients+seq", (CrashWindow(2, 300.0, 450.0, semantics="amnesia"),
                     CrashWindow(3, 700.0, 850.0, semantics="amnesia"),
                     CrashWindow(5, 1100.0, 1250.0, semantics="amnesia"))),
)


def build_spec() -> SweepSpec:
    cells = []
    for protocol in ALL_PROTOCOLS:
        for _label, crashes in SCHEDULES:
            faults = FaultPlan(seed=11, crashes=crashes) if crashes else None
            cells.append(SweepCell(
                protocol=protocol, params=PARAMS, kind="sim", M=2,
                config=RunConfig(ops=2000, warmup=300, seed=21,
                                 faults=faults,
                                 failover=faults is not None,
                                 monitor=True),
            ))
    return SweepSpec.explicit(cells)


def run_study():
    result = run_sweep(build_spec(), workers=WORKERS)
    assert result.failed == 0, [r for r in result.rows
                                if r["status"] == "failed"]
    table = {}
    it = iter(result.rows)
    for protocol in ALL_PROTOCOLS:
        for label, _crashes in SCHEDULES:
            table[(protocol, label)] = next(it)
    return table


def test_acc_vs_crash_rate(benchmark, results_dir):
    table = benchmark.pedantic(run_study, rounds=1, iterations=1)
    lines = [
        "acc under amnesia crashes (monitor on; last column: failover)",
        f"{'protocol':20} " + " ".join(
            f"{label:>12}" for label, _ in SCHEDULES
        ),
    ]
    for protocol in ALL_PROTOCOLS:
        cells = [table[(protocol, label)] for label, _ in SCHEDULES]
        lines.append(
            f"{protocol:20} " + " ".join(
                f"{c['acc_sim']:12.2f}" for c in cells
            )
        )
    lines.append("")
    lines.append("recovery share per operation (same grid)")
    for protocol in ALL_PROTOCOLS:
        cells = [table[(protocol, label)] for label, _ in SCHEDULES]
        lines.append(
            f"{protocol:20} " + " ".join(
                f"{c.get('acc_recovery_share', 0.0):12.3f}" for c in cells
            )
        )
    emit(results_dir, "recovery_acc_vs_crashes.txt", "\n".join(lines))

    for (protocol, label), cell in table.items():
        assert math.isfinite(cell["acc_sim"]), (protocol, label)
        assert cell["violations"] == 0, (protocol, label, cell)
        if label == "none":
            assert "acc_recovery_share" not in cell
            assert cell["incomplete_ops"] == 0
        else:
            assert cell["acc_recovery_share"] > 0.0, (protocol, label)
            assert cell["epoch_resets"] >= 2, (protocol, label)
            # lost submissions (node dead at issue time) are the only
            # legal incompleteness
            assert cell["incomplete_ops"] == cell["ops_lost"]
        expected_failovers = 1 if label == "clients+seq" else 0
        assert cell.get("failovers", 0) == expected_failovers, (
            protocol, label, cell
        )
