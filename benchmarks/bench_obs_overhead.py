"""Observability overhead benchmark: what does tracing cost?

Runs the bench_engine workload (berkeley, N=8, M=4) three times —
tracing disabled, tracing at ``sample_every=1`` (every span) and at
``sample_every=100`` — and reports wall-clock per mode, the overhead of
each traced mode relative to disabled, and a *normalized* runtime that
divides by a pure-Python calibration loop so numbers are comparable
across machines of different speeds.

Runnable both as a script (CI's perf-smoke job) and under pytest::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --out benchmarks/results/obs_overhead.jsonl \
        --baseline benchmarks/baselines/obs_overhead.json --check

``--check`` compares the tracing-disabled normalized runtime against the
committed baseline and fails (exit 1) on a regression beyond the
baseline's tolerance — the guard that keeps the zero-overhead-when-
disabled promise honest.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

from repro.core import WorkloadParams
from repro.obs import TraceConfig
from repro.sim import DSMSystem, RunConfig
from repro.workloads import read_disturbance_workload

PARAMS = WorkloadParams(N=8, p=0.3, a=6, sigma=0.1, S=100.0, P=30.0)

#: default regression tolerance when the baseline file does not set one
DEFAULT_TOLERANCE = 0.25


def calibrate(iterations: int = 2_000_000) -> float:
    """Seconds for a fixed pure-Python busy loop (machine-speed probe)."""
    best = float("inf")
    for _ in range(3):
        acc = 0
        start = perf_counter()
        for i in range(iterations):
            acc += i & 7
        best = min(best, perf_counter() - start)
    return best


def run_mode(tracing, ops: int, repeats: int) -> dict:
    """Best-of-``repeats`` wall-clock for one tracing mode."""
    workload = read_disturbance_workload(PARAMS, M=4)
    config = RunConfig(ops=ops, warmup=ops // 6, seed=1, mean_gap=10.0,
                       tracing=tracing)
    best = float("inf")
    events = spans = 0
    for _ in range(repeats):
        system = DSMSystem("berkeley", N=PARAMS.N, M=4, S=PARAMS.S,
                           P=PARAMS.P, tracing=tracing)
        start = perf_counter()
        result = system.run_workload(workload, config)
        best = min(best, perf_counter() - start)
        events = system.scheduler.executed
        if result.tracer is not None:
            spans = len(result.tracer.spans)
    return {"seconds": best, "events_executed": events, "spans": spans}


def run_benchmark(ops: int, repeats: int) -> list:
    """One row per mode, overheads relative to the disabled mode."""
    unit = calibrate()
    modes = [
        ("disabled", None),
        ("sample_every=1", TraceConfig(sample_every=1)),
        ("sample_every=100", TraceConfig(sample_every=100)),
    ]
    rows = []
    base_seconds = None
    for name, tracing in modes:
        row = {"mode": name, "ops": ops, "repeats": repeats,
               "calibration_s": unit}
        row.update(run_mode(tracing, ops, repeats))
        row["normalized"] = row["seconds"] / unit
        if base_seconds is None:
            base_seconds = row["seconds"]
            row["overhead_pct"] = 0.0
        else:
            row["overhead_pct"] = (
                100.0 * (row["seconds"] - base_seconds) / base_seconds
            )
        rows.append(row)
    return rows


def check_baseline(rows: list, baseline_path: Path) -> int:
    """Compare the disabled-mode normalized runtime to the baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    expected_ops = baseline.get("ops")
    if expected_ops is not None and rows[0]["ops"] != expected_ops:
        print(f"error: baseline was recorded at ops={expected_ops}, "
              f"this run used ops={rows[0]['ops']} — normalized "
              f"runtimes are only comparable at the same ops",
              file=sys.stderr)
        return 2
    limit = baseline["disabled_normalized"]
    tolerance = baseline.get("tolerance", DEFAULT_TOLERANCE)
    measured = rows[0]["normalized"]
    ceiling = limit * (1.0 + tolerance)
    verdict = "ok" if measured <= ceiling else "REGRESSION"
    print(f"perf check: disabled normalized {measured:.3f} vs baseline "
          f"{limit:.3f} (+{100 * tolerance:.0f}% ceiling {ceiling:.3f}) "
          f"-> {verdict}")
    return 0 if measured <= ceiling else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=3000,
                        help="operations per run")
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per mode (best-of)")
    parser.add_argument("--out", default=None,
                        help="JSONL output path for the result rows")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON for --check")
    parser.add_argument("--check", action="store_true",
                        help="fail on regression vs --baseline")
    args = parser.parse_args(argv)

    rows = run_benchmark(args.ops, args.repeats)
    for row in rows:
        print(f"{row['mode']:18s} {row['seconds'] * 1e3:9.2f} ms "
              f"(normalized {row['normalized']:.3f}, "
              f"overhead {row['overhead_pct']:+.1f}%, "
              f"{row['spans']} spans)")
    if args.out is not None:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write(json.dumps(row, sort_keys=True) + "\n")
        print(f"results -> {out}")
    if args.check:
        if args.baseline is None:
            print("error: --check requires --baseline", file=sys.stderr)
            return 2
        return check_baseline(rows, Path(args.baseline))
    return 0


def test_tracing_overhead_bounded():
    """Full tracing on this workload stays under a generous ceiling."""
    rows = run_benchmark(ops=800, repeats=3)
    by_mode = {row["mode"]: row for row in rows}
    # sampled tracing must not cost more than full tracing (plus noise)
    assert (by_mode["sample_every=100"]["seconds"]
            <= by_mode["sample_every=1"]["seconds"] * 1.25)
    # full tracing is allowed real cost, but not a blow-up
    assert by_mode["sample_every=1"]["overhead_pct"] < 150.0


if __name__ == "__main__":
    sys.exit(main())
