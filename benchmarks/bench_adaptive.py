"""Adaptive protocol selection (paper Section 6 outlook) vs fixed protocols.

The paper closes by proposing "a classifier for the development of adaptive
data replication coherence protocols with self-tuning capability based on
run-time information".  This benchmark runs the implemented estimator +
classifier + switching runtime over a phase-changing computation and
compares its total cost per operation against every fixed protocol.
"""


from repro.adaptive import AdaptiveRuntime
from repro.core import ALL_PROTOCOLS, WorkloadParams
from repro.workloads import (
    read_disturbance_workload,
    write_disturbance_workload,
)

from .conftest import emit

N, S, P = 4, 200.0, 30.0


def phases():
    read_heavy = WorkloadParams(N=N, p=0.1, a=3, sigma=0.25, S=S, P=P)
    write_heavy = WorkloadParams(N=N, p=0.5, a=3, xi=0.15, S=S, P=P)
    return [
        (read_disturbance_workload(read_heavy), 1600),
        (write_disturbance_workload(write_heavy), 1600),
        (read_disturbance_workload(read_heavy), 1600),
    ]


def run_adaptive():
    runtime = AdaptiveRuntime(N=N, M=1, S=S, P=P,
                              initial_protocol="write_through")
    return runtime.run_phases(phases(), epochs_per_phase=4, seed=0)


def test_adaptive_vs_fixed(benchmark, results_dir):
    adaptive = benchmark.pedantic(run_adaptive, rounds=1, iterations=1)
    runtime = AdaptiveRuntime(N=N, M=1, S=S, P=P)
    fixed = {
        name: runtime.run_fixed(name, phases(), epochs_per_phase=4,
                                seed=0).overall_acc
        for name in ALL_PROTOCOLS
    }
    lines = [
        "Adaptive self-tuning vs fixed protocols (phase-changing workload)",
        f"adaptive: acc={adaptive.overall_acc:8.2f} "
        f"switches={adaptive.switches} "
        f"sequence={'->'.join(dict.fromkeys(adaptive.protocol_sequence()))}",
    ]
    for name, acc in sorted(fixed.items(), key=lambda kv: kv[1]):
        lines.append(f"fixed {name:18s} acc={acc:8.2f}")
    emit(results_dir, "adaptive_vs_fixed.txt", "\n".join(lines))

    best = min(fixed.values())
    worst = max(fixed.values())
    median = sorted(fixed.values())[len(fixed) // 2]
    # the adaptive runtime must beat the median fixed choice and come
    # within 60% of the (oracle) best fixed protocol despite switching
    # overheads and estimation warm-up
    assert adaptive.overall_acc < median
    assert adaptive.overall_acc < worst
    assert adaptive.overall_acc < best * 1.6
    assert adaptive.switches >= 2  # it reacted to the phase changes
