"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one evaluation artifact of the paper (a table
or a figure's data) and times the computation with pytest-benchmark.  The
regenerated artifact is printed and also written under
``benchmarks/results/`` so it survives output capturing.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where regenerated tables/series are persisted."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print an artifact and persist it to ``benchmarks/results/<name>``."""
    print(f"\n===== {name} =====\n{text}\n")
    (results_dir / name).write_text(text + "\n")
