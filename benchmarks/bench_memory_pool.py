"""Free-memory-pool benchmark: capacity vs cost (paper Section 6 outlook).

"We consider its modifications in order to include other types of
operations (eject operation ...) and the influence of some distributed
system parameters, such as the size of the free memory pool."

Two views of the question:

* **simulation** — clients with a finite LRU replica pool run a multi-object
  workload; as the pool shrinks below the working set, evictions force
  write-backs and re-fetch misses and the cost per data operation climbs
  (the classic capacity-miss curve);
* **analysis** — the eject-extended Markov chains sweep the stationary
  eviction pressure; the analytic Write-Through closed form with ejects is
  cross-checked against the chain.
"""


from repro.core.ejection import ejecting_markov_acc
from repro.core.parameters import Deviation, WorkloadParams
from repro.sim import DSMSystem, RunConfig
from repro.workloads import read_disturbance_workload

from .conftest import emit

PARAMS = WorkloadParams(N=4, p=0.25, a=3, sigma=0.1, S=100.0, P=30.0)
M = 8


def run_capacity_sweep():
    rows = []
    for capacity in (1, 2, 4, 6, 8):
        system = DSMSystem("write_through", N=PARAMS.N, M=M, S=PARAMS.S,
                           P=PARAMS.P, capacity=capacity)
        workload = read_disturbance_workload(PARAMS, M=M)
        system.run_workload(
            workload, RunConfig(ops=4000, warmup=800, seed=3,
                                mean_gap=10.0))
        system.check_coherence()
        evictions = sum(n.pool.evictions for n in system.nodes.values()
                        if n.pool)
        rows.append((capacity, system.data_cost_rate(800), evictions))
    return rows


def test_capacity_miss_curve(benchmark, results_dir):
    rows = benchmark.pedantic(run_capacity_sweep, rounds=1, iterations=1)
    lines = ["replica-pool capacity sweep (write_through, M=8 objects)",
             f"{'capacity':>9} {'cost/data-op':>14} {'evictions':>10}"]
    for cap, rate, ev in rows:
        lines.append(f"{cap:9d} {rate:14.3f} {ev:10d}")
    emit(results_dir, "memory_pool_capacity.txt", "\n".join(lines))
    # the capacity-miss curve: shrinking the pool can only cost more
    rates = [rate for _c, rate, _e in rows]
    assert rates[0] >= rates[-1]
    assert rates[0] > rates[-1] * 1.05  # thrashing is actually visible
    # a pool covering the whole working set evicts nothing
    assert rows[-1][2] == 0


def run_pressure_sweep():
    rows = []
    for e in (0.0, 0.02, 0.04, 0.06, 0.08):
        per_proto = {}
        for proto in ("write_through", "synapse", "berkeley", "dragon"):
            acc = ejecting_markov_acc(proto, PARAMS, Deviation.READ,
                                      eject_ac=e, eject_dist=e)
            per_proto[proto] = acc / (1.0 - e - PARAMS.a * e)
        rows.append((e, per_proto))
    return rows


def test_analytic_eviction_pressure(benchmark, results_dir):
    rows = benchmark.pedantic(run_pressure_sweep, rounds=1, iterations=1)
    protos = list(rows[0][1])
    lines = ["analytic eviction-pressure sweep (cost per data op)",
             f"{'e':>6} " + "".join(f"{p:>16}" for p in protos)]
    for e, accs in rows:
        lines.append(f"{e:6.2f} "
                     + "".join(f"{accs[p]:16.2f}" for p in protos))
    emit(results_dir, "memory_pool_pressure.txt", "\n".join(lines))
    for proto in protos:
        series = [accs[proto] for _e, accs in rows]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), proto
    # dirty-copy protocols pay write-backs on eviction: under pressure
    # Synapse's eject bill exceeds Write-Through's (whose ejects are free)
    base_gap = rows[0][1]["synapse"] - rows[0][1]["write_through"]
    hi_gap = rows[-1][1]["synapse"] - rows[-1][1]["write_through"]
    assert hi_gap > base_gap
