"""Figure 5 reproduction: characteristic acc surfaces, read disturbance.

Panels (paper parameterization N=50, a=10, P=30):

* (a) Write-Once, Synapse, Illinois, Berkeley at S=5000;
* (b) Write-Through-V at S=100;
* (c) Dragon, Firefly at S=5000;
* (d) Dragon vs Berkeley minimum-acc region split at S=5000.

The benchmark regenerates every surface over a (p, sigma) grid, prints
characteristic slices (the series a plot would show), renders panel (d)'s
winner map, and asserts the shape properties the paper reads off the
figures.
"""

import numpy as np

from repro.core import (
    Deviation,
    WorkloadParams,
    figure_surfaces,
    min_acc_region_map,
)

from .conftest import emit

DEV = Deviation.READ
P_POINTS = 13
D_POINTS = 13


def run_panels():
    return figure_surfaces(DEV, p_points=P_POINTS, disturb_points=D_POINTS)


def format_surfaces(panels):
    lines = [
        f"Figure 5 (reproduced): acc surfaces, {DEV.value}, "
        "N=50 a=10 P=30 (S=5000; panel b S=100)",
    ]
    for key, surfaces in sorted(panels.items()):
        for surf in surfaces:
            lines.append(f"\npanel ({key}) {surf.protocol}:")
            header = "  p\\sigma " + "".join(
                f"{s:9.3f}" for s in surf.disturb_values[::3]
            )
            lines.append(header)
            for i in range(0, len(surf.p_values), 3):
                row = surf.acc[i, ::3]
                cells = "".join(
                    "      --." if np.isnan(v) else f"{v:9.1f}" for v in row
                )
                lines.append(f"  {surf.p_values[i]:7.2f} {cells}")
    return "\n".join(lines)


def test_figure5_surfaces(benchmark, results_dir):
    panels = benchmark.pedantic(run_panels, rounds=1, iterations=1)
    emit(results_dir, "figure5_surfaces.txt", format_surfaces(panels))

    # shape assertions the paper reads off Figure 5:
    for key, surfaces in panels.items():
        for surf in surfaces:
            feasible = ~np.isnan(surf.acc)
            # p = 0 edge is free for every protocol
            assert np.allclose(surf.acc[0, :][feasible[0, :]], 0.0)
    # panel (a): Berkeley below Synapse/Illinois/Write-Once pointwise
    by_name = {s.protocol: s for s in panels["a"]}
    b = by_name["berkeley"].acc
    for other in ("synapse", "illinois", "write_once"):
        o = by_name[other].acc
        mask = ~np.isnan(b) & ~np.isnan(o)
        assert np.all(b[mask] <= o[mask] + 1e-9), other
    # panel (c): Dragon/Firefly surfaces are flat in sigma (reads free)
    for surf in panels["c"]:
        for i in range(surf.acc.shape[0]):
            row = surf.acc[i, :]
            vals = row[~np.isnan(row)]
            if vals.size > 1:
                assert np.allclose(vals, vals[0])


def test_figure5d_region_map(benchmark, results_dir):
    """Panel (d): the Dragon/Berkeley minimum-acc split at S=5000."""
    base = WorkloadParams(N=50, p=0.0, a=10, S=5000.0, P=30.0)

    def run():
        return min_acc_region_map(
            base, DEV, protocols=("dragon", "berkeley"),
            p_values=np.linspace(0, 1, 21),
            disturb_values=np.linspace(0, 0.1, 21),
        )

    region = benchmark.pedantic(run, rounds=1, iterations=1)
    share = region.share()
    lines = ["Figure 5d (reproduced): Dragon vs Berkeley winner map",
             f"feasible-region share: {share}"]
    for i in range(0, 21, 2):
        row = "".join(
            {-1: ".", 0: "D", 1: "B"}[int(region.winner[i, j])]
            for j in range(0, 21, 2)
        )
        lines.append(f"p={region.p_values[i]:4.2f}  {row}")
    emit(results_dir, "figure5d_regions.txt", "\n".join(lines))
    # both regions exist at S=5000 (NP = 1500 < S + 2 = 5002)
    assert share["dragon"] > 0.0
    assert share["berkeley"] > 0.0
    # Berkeley wins the write-heavy edge, Dragon the read-share edge
    assert region.winner_at(0.9, 0.0) == "berkeley"
    assert region.winner_at(0.05, 0.095) == "dragon"
