"""Figure 5 reproduction: characteristic acc surfaces, read disturbance.

Panels (paper parameterization N=50, a=10, P=30):

* (a) Write-Once, Synapse, Illinois, Berkeley at S=5000;
* (b) Write-Through-V at S=100;
* (c) Dragon, Firefly at S=5000;
* (d) Dragon vs Berkeley minimum-acc region split at S=5000.

The surface panels run through the sweep engine (:mod:`repro.exp`): each
panel expands to a cartesian grid of pure ``analytic`` cells fanned out
over a worker pool, and the rows are reassembled into
:class:`~repro.core.surfaces.Surface` objects (infeasible grid points stay
NaN, the paper's blank region).  The benchmark prints characteristic
slices (the series a plot would show), renders panel (d)'s winner map, and
asserts the shape properties the paper reads off the figures.
"""

import os

import numpy as np

from repro.core import (
    FIGURE_PANELS,
    Deviation,
    Surface,
    WorkloadParams,
    min_acc_region_map,
)
from repro.exp import SweepSpec, run_sweep

from .conftest import emit

DEV = Deviation.READ
P_POINTS = 13
D_POINTS = 13
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "2"))


def surfaces_from_sweep(p_points: int = P_POINTS,
                        d_points: int = D_POINTS) -> dict:
    """Regenerate the Figure 5 panels as analytic sweeps.

    Returns ``{panel: [Surface, ...]}`` exactly like
    :func:`repro.core.figure_surfaces`, but evaluated cell-by-cell through
    the engine (the cartesian expansion skips infeasible points, so the
    reconstruction starts from an all-NaN grid).
    """
    p_vals = np.linspace(0.0, 1.0, p_points)
    d_vals = np.linspace(0.0, 0.1, d_points)
    p_index = {float(p): i for i, p in enumerate(p_vals)}
    d_index = {float(d): j for j, d in enumerate(d_vals)}
    panels = {}
    for key, (protos, S) in FIGURE_PANELS.items():
        base = WorkloadParams(N=50, p=0.0, a=10, S=S, P=30.0)
        spec = SweepSpec.cartesian(
            protos, base, [float(p) for p in p_vals],
            [float(d) for d in d_vals], deviation=DEV, kind="analytic",
        )
        result = run_sweep(spec, workers=WORKERS)
        assert result.failed == 0
        grids = {proto: np.full((p_vals.size, d_vals.size), np.nan)
                 for proto in protos}
        for row in result.rows:
            value = row["acc_analytic"]
            grids[row["protocol"]][
                p_index[row["p"]], d_index[row["disturb"]]
            ] = np.nan if value is None else value
        panels[key] = [
            Surface(proto, DEV, base, p_vals, d_vals, grids[proto])
            for proto in protos
        ]
    return panels


def format_surfaces(panels):
    lines = [
        f"Figure 5 (reproduced): acc surfaces, {DEV.value}, "
        "N=50 a=10 P=30 (S=5000; panel b S=100)",
    ]
    for key, surfaces in sorted(panels.items()):
        for surf in surfaces:
            lines.append(f"\npanel ({key}) {surf.protocol}:")
            header = "  p\\sigma " + "".join(
                f"{s:9.3f}" for s in surf.disturb_values[::3]
            )
            lines.append(header)
            for i in range(0, len(surf.p_values), 3):
                row = surf.acc[i, ::3]
                cells = "".join(
                    "      --." if np.isnan(v) else f"{v:9.1f}" for v in row
                )
                lines.append(f"  {surf.p_values[i]:7.2f} {cells}")
    return "\n".join(lines)


def test_figure5_surfaces(benchmark, results_dir):
    panels = benchmark.pedantic(surfaces_from_sweep, rounds=1, iterations=1)
    emit(results_dir, "figure5_surfaces.txt", format_surfaces(panels))

    # shape assertions the paper reads off Figure 5:
    for key, surfaces in panels.items():
        for surf in surfaces:
            feasible = ~np.isnan(surf.acc)
            # p = 0 edge is free for every protocol
            assert np.allclose(surf.acc[0, :][feasible[0, :]], 0.0)
            # the infeasible wedge p + 10 sigma > 1 stays blank
            pp, dd = np.meshgrid(surf.p_values, surf.disturb_values,
                                 indexing="ij")
            assert np.all(np.isnan(surf.acc[pp + 10 * dd > 1.0 + 1e-9]))
    # panel (a): Berkeley below Synapse/Illinois/Write-Once pointwise
    by_name = {s.protocol: s for s in panels["a"]}
    b = by_name["berkeley"].acc
    for other in ("synapse", "illinois", "write_once"):
        o = by_name[other].acc
        mask = ~np.isnan(b) & ~np.isnan(o)
        assert np.all(b[mask] <= o[mask] + 1e-9), other
    # panel (c): Dragon/Firefly surfaces are flat in sigma (reads free)
    for surf in panels["c"]:
        for i in range(surf.acc.shape[0]):
            row = surf.acc[i, :]
            vals = row[~np.isnan(row)]
            if vals.size > 1:
                assert np.allclose(vals, vals[0])


def test_figure5d_region_map(benchmark, results_dir):
    """Panel (d): the Dragon/Berkeley minimum-acc split at S=5000."""
    base = WorkloadParams(N=50, p=0.0, a=10, S=5000.0, P=30.0)

    def run():
        return min_acc_region_map(
            base, DEV, protocols=("dragon", "berkeley"),
            p_values=np.linspace(0, 1, 21),
            disturb_values=np.linspace(0, 0.1, 21),
        )

    region = benchmark.pedantic(run, rounds=1, iterations=1)
    share = region.share()
    lines = ["Figure 5d (reproduced): Dragon vs Berkeley winner map",
             f"feasible-region share: {share}"]
    for i in range(0, 21, 2):
        row = "".join(
            {-1: ".", 0: "D", 1: "B"}[int(region.winner[i, j])]
            for j in range(0, 21, 2)
        )
        lines.append(f"p={region.p_values[i]:4.2f}  {row}")
    emit(results_dir, "figure5d_regions.txt", "\n".join(lines))
    # both regions exist at S=5000 (NP = 1500 < S + 2 = 5002)
    assert share["dragon"] > 0.0
    assert share["berkeley"] > 0.0
    # Berkeley wins the write-heavy edge, Dragon the read-share edge
    assert region.winner_at(0.9, 0.0) == "berkeley"
    assert region.winner_at(0.05, 0.095) == "dragon"
