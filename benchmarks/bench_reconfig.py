"""Reconfiguration benchmark: acc and availability across membership
transitions.

Not a paper artifact — the paper's replica set is fixed for the lifetime
of a run — but the study the online-reconfiguration subsystem
(:mod:`repro.sim.reconfig`) exists to answer: what does changing the
replica set *without stopping the world* cost?  Two parts:

* **acc across transition scenarios** — SC-ABD under no change, a join,
  a leave, a join+leave chain, and a join+leave chain overlapping a
  durable crash.  Each membership change runs as a joint-quorum
  transition (phases intersect majorities of both the old and the new
  set) with versioned state transfer for the joiner.  The ``reconfig``
  share prices announcements, transfer and commit sync — all small —
  while any *lasting* ``acc`` shift is the honest cost of the final
  membership itself (a six-member set simply has wider majorities than a
  five-member one).  Monitor on everywhere; every cell must
  finish with zero violations, zero incomplete operations, and every
  transition committed (no aborts) except under the crash, where an
  abort is legitimate but a violation never is.

* **availability during a fault-free transition** — the fraction of
  operations issued inside the transition window that complete within
  it.  A joint transition never blocks clients (in-flight operations are
  re-driven across the epoch boundary exactly once), so availability is
  exactly 1.0 — the whole point of *online* reconfiguration.

The default-ops (2000) rows are committed at
``benchmarks/baselines/reconfig_acc.jsonl`` and
``benchmarks/baselines/reconfig_availability.jsonl``; CI re-runs the
study on a reduced budget (``REPRO_RECONFIG_OPS``) and uploads the fresh
artifacts.
"""

import json
import math
import os

from repro.core.parameters import WorkloadParams
from repro.exp import SweepCell, SweepSpec, run_sweep
from repro.sim import (
    CrashWindow,
    DSMSystem,
    FaultPlan,
    MembershipChange,
    ReconfigPlan,
    RunConfig,
)
from repro.workloads import read_disturbance_workload

from .conftest import emit

PARAMS = WorkloadParams(N=4, p=0.3, a=3, sigma=0.15, S=100.0, P=30.0)
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "2"))
#: operations per sweep cell; the CI smoke run shrinks this via env
OPS = int(os.environ.get("REPRO_RECONFIG_OPS", "2000"))

JOIN_AT, LEAVE_AT = 1500.0, 3000.0
JOINER = PARAMS.N + 2  # first non-member node index

#: the transition scenarios of the acc grid, in row order
SCENARIOS = ("none", "join", "leave", "join+leave", "join+leave+crash")

#: availability is scored inside this window around the first transition
AVAIL_WINDOW = (JOIN_AT, JOIN_AT + 1000.0)
#: ops issued closer than this to the window end are not scored (they
#: could not finish in time even on a fault-free static fabric)
AVAIL_MARGIN = 100.0


def _plan(scenario: str) -> ReconfigPlan:
    changes = {
        "none": (),
        "join": (MembershipChange(at=JOIN_AT, joins=(JOINER,)),),
        "leave": (MembershipChange(at=LEAVE_AT, leaves=(2,)),),
        "join+leave": (
            MembershipChange(at=JOIN_AT, joins=(JOINER,)),
            MembershipChange(at=LEAVE_AT, leaves=(2,)),
        ),
        "join+leave+crash": (
            MembershipChange(at=JOIN_AT, joins=(JOINER,)),
            MembershipChange(at=LEAVE_AT, leaves=(2,)),
        ),
    }[scenario]
    return ReconfigPlan(seed=13, changes=changes)


def _faults(scenario: str):
    if scenario != "join+leave+crash":
        return None
    # node 4 (a quorum member, but neither the joiner nor the leaver)
    # is down across the first transition: state transfer must route
    # around it and the joint quorums must absorb the loss.
    return FaultPlan(seed=17, crashes=[
        CrashWindow(4, JOIN_AT - 200.0, JOIN_AT + 800.0, "durable"),
    ])


def _config(scenario: str) -> RunConfig:
    return RunConfig(ops=OPS, warmup=OPS // 8, seed=21,
                     reconfig=_plan(scenario),
                     faults=_faults(scenario), monitor=True)


def build_spec() -> SweepSpec:
    return SweepSpec.explicit([
        SweepCell(protocol="sc_abd", params=PARAMS, kind="sim", M=2,
                  config=_config(scenario))
        for scenario in SCENARIOS
    ])


def run_grid(out_path=None):
    result = run_sweep(build_spec(), workers=WORKERS, out_path=out_path)
    assert result.failed == 0, [r for r in result.rows
                                if r["status"] == "failed"]
    return dict(zip(SCENARIOS, result.rows))


def test_acc_across_transitions(benchmark, results_dir):
    table = benchmark.pedantic(run_grid,
                               args=(results_dir / "reconfig_acc.jsonl",),
                               rounds=1, iterations=1)
    lines = [
        "SC-ABD acc across online membership transitions "
        f"(N=4, joins at t={JOIN_AT:g}, leaves at t={LEAVE_AT:g}; "
        "monitor on)",
        f"{'scenario':18} {'acc':>9} {'reconfig':>9} {'transfer':>9} "
        f"{'commits':>8} {'redriven':>9}",
    ]
    for scenario in SCENARIOS:
        row = table[scenario]
        lines.append(
            f"{scenario:18} {row['acc_sim']:9.2f} "
            f"{row.get('acc_reconfig_share', 0.0):9.4f} "
            f"{row.get('transfer_cost', 0.0):9.1f} "
            f"{row.get('reconfig_commits', 0):8d} "
            f"{row.get('reconfig_ops_redriven', 0):9d}"
        )
    emit(results_dir, "reconfig_acc_vs_scenario.txt", "\n".join(lines))

    for scenario, row in table.items():
        assert math.isfinite(row["acc_sim"]), scenario
        assert row["violations"] == 0, (scenario, row)
        assert row["incomplete_ops"] == 0, (scenario, row)

    # pay-for-what-you-use: a no-change plan *is* no plan — the config
    # canonicalizes identically, so the cell (and its cache key and its
    # row) is byte-identical to a run that never heard of reconfiguration.
    with_none = RunConfig(ops=OPS, warmup=OPS // 8, seed=21, monitor=True,
                          reconfig=ReconfigPlan.none())
    without = RunConfig(ops=OPS, warmup=OPS // 8, seed=21, monitor=True)
    assert with_none.to_dict() == without.to_dict()
    assert "reconfig" not in table["none"]
    assert "acc_reconfig_share" not in table["none"]

    # fault-free transitions all commit, never abort, and re-drive the
    # operations in flight at each epoch boundary at most once each.
    for scenario, commits in (("join", 1), ("leave", 1), ("join+leave", 2)):
        row = table[scenario]
        assert row["reconfig_transitions"] == commits, (scenario, row)
        assert row["reconfig_commits"] == commits, (scenario, row)
        assert row["reconfig_aborts"] == 0, (scenario, row)
        assert row["final_epoch"] == commits, (scenario, row)
        assert row["acc_reconfig_share"] > 0.0, (scenario, row)

    # a joiner always pays versioned catch-up; a pure leave pays only
    # the commit-time new-quorum sync, and only for members that were
    # actually behind when the transition committed (possibly none).
    assert table["join"]["transfer_cost"] > 0.0
    assert table["join"]["transfer_objects"] >= 2
    assert table["join"]["transfer_cost"] >= table["leave"]["transfer_cost"]

    # under the overlapping crash the run must stay consistent and the
    # schedule must resolve every transition one way or the other —
    # committed, or cleanly rolled back.
    crash_row = table["join+leave+crash"]
    assert crash_row["reconfig_transitions"] == 2, crash_row
    assert (crash_row["reconfig_commits"]
            + crash_row["reconfig_aborts"]) == 2, crash_row

    # the join scenario *ends* with six members, so its steady state
    # genuinely pays wider quorums — acc rises; the leave and join+leave
    # scenarios end at four and five members and stay within 10% of the
    # static run: the transition machinery itself is cheap.
    base = table["none"]["acc_sim"]
    assert table["join"]["acc_sim"] > base, (table["join"]["acc_sim"], base)
    for scenario in ("leave", "join+leave"):
        assert abs(table[scenario]["acc_sim"] - base) < 0.10 * base, (
            scenario, table[scenario]["acc_sim"], base)


def measure_availability(scenario):
    """Run one transition scenario and score the fraction of operations
    issued inside the transition window that complete within it."""
    plan = _plan(scenario)
    config = RunConfig(ops=max(400, OPS // 2), warmup=0, seed=7,
                       reconfig=plan, monitor=True)
    system = DSMSystem("sc_abd", N=PARAMS.N, M=2, monitor=True,
                       reconfig=plan.replay())
    result = system.run_workload(
        read_disturbance_workload(PARAMS, M=2), config)
    assert result.incomplete_ops == 0, (scenario, result.incomplete_ops)
    assert not result.violations, (scenario, result.violations)

    start, end = AVAIL_WINDOW
    window = [r for r in system.metrics.records()
              if start <= r.issue_time <= end - AVAIL_MARGIN]
    assert window, scenario
    served = [r for r in window if r.complete_time < end]
    rc = system.metrics.reconfig
    return {
        "scenario": scenario,
        "acc": system.metrics.average_cost(),
        "window_ops": len(window),
        "served": len(served),
        "availability": len(served) / len(window),
        "transitions": rc.transitions,
        "commits": rc.commits,
        "ops_redriven": rc.ops_redriven,
        "violations": len(result.violations),
    }


def run_availability():
    return [measure_availability(s) for s in ("none", "join", "join+leave")]


def test_availability_during_transition(benchmark, results_dir):
    rows = benchmark.pedantic(run_availability, rounds=1, iterations=1)
    emit(results_dir, "reconfig_availability.jsonl",
         "\n".join(json.dumps(row) for row in rows))
    lines = [
        "operations served inside the transition window "
        f"[{AVAIL_WINDOW[0]:g}, {AVAIL_WINDOW[1]:g}] (monitor on)",
        f"{'scenario':12} {'acc':>10} {'avail':>8} {'redriven':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:12} {row['acc']:10.2f} "
            f"{row['availability']:8.3f} {row['ops_redriven']:9d}"
        )
    emit(results_dir, "reconfig_availability.txt", "\n".join(lines))

    for row in rows:
        # online means online: a fault-free membership transition stalls
        # no client — every in-window operation completes in-window.
        assert row["availability"] == 1.0, row
        assert row["violations"] == 0, row
    by_scenario = {row["scenario"]: row for row in rows}
    assert by_scenario["none"]["transitions"] == 0
    assert by_scenario["join"]["commits"] == 1
    assert by_scenario["join+leave"]["commits"] == 2
