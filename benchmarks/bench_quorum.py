"""Quorum benchmark: SC-ABD ``acc`` vs availability against the stars.

Not a paper artifact — the paper's eight protocols all serialize through
the sequencer — but the study the quorum family
(:mod:`repro.protocols.sc_abd`) exists to answer: what does sequencer-free
availability cost?  Two parts:

* **acc under the ``bench_partitions`` fault grid** — the client 2 <->
  sequencer cut, swept over partition duration x detector probe interval,
  now including ``sc_abd``.  The cut is *free* for the quorum family
  (node 5 is outside every read/write quorum of the active clients):
  ``acc`` stays flat, the ``quorum`` re-selection share stays zero, and
  no detector traffic is spent, while every star pays detector overhead
  that grows with probe cadence.  The flat line costs ~3x the star
  ``acc`` fault-free — that multiple *is* the price of availability.

* **availability under a minority partition** — {4, 5} (including the
  sequencer) severed from the majority {1, 2, 3}.  Availability is the
  fraction of operations issued during the partition that also complete
  during it.  SC-ABD serves *every* majority-side operation (the
  stranded node 4 correctly waits for the heal: no majority, no
  service), while the stars serve only local cache hits because every
  miss stalls behind the unreachable sequencer.

Expectations encoded as assertions: zero consistency violations and zero
incomplete operations in every cell, quorum acc flat and re-selection
free across the sequencer-cut grid, majority-side availability exactly
1.0 for SC-ABD and far below it for every star protocol.
"""

import json
import math
import os

from repro.core.closed_forms import acc_sc_abd_rd
from repro.core.parameters import WorkloadParams
from repro.exp import SweepCell, SweepSpec, run_sweep
from repro.sim import DSMSystem, PartitionPlan, RunConfig
from repro.sim.partition import cut, isolate
from repro.workloads import read_disturbance_workload

from .conftest import emit

PARAMS = WorkloadParams(N=4, p=0.3, a=3, sigma=0.15, S=100.0, P=30.0)
SEQUENCER = PARAMS.N + 1
STARS = ("write_through", "berkeley", "dragon")
PROTOCOLS = STARS + ("sc_abd",)
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "2"))
#: operations per sweep cell; the CI smoke run shrinks this via env
OPS = int(os.environ.get("REPRO_QUORUM_OPS", "2000"))

# --- part 1: the bench_partitions fault grid, plus sc_abd -----------------
CUT_START = 2000.0
DURATIONS = (0.0, 1500.0, 4000.0)
INTERVALS = (20.0, 60.0)

# --- part 2: minority partition stranding the sequencer -------------------
AVAIL_START, AVAIL_HEAL = 2000.0, 6000.0
#: ops issued closer than this to the heal are not scored (they could
#: not finish in time even on a fault-free fabric)
AVAIL_MARGIN = 200.0
MAJORITY = (1, 2, 3)


def build_spec() -> SweepSpec:
    cells = []
    for protocol in PROTOCOLS:
        for duration in DURATIONS:
            for interval in INTERVALS:
                if duration > 0:
                    plan = PartitionPlan(
                        seed=11,
                        links=cut(2, SEQUENCER, CUT_START,
                                  CUT_START + duration),
                        heartbeat_interval=interval,
                        suspect_after=3,
                    )
                else:
                    plan = None
                cells.append(SweepCell(
                    protocol=protocol, params=PARAMS, kind="sim", M=2,
                    config=RunConfig(ops=OPS, warmup=OPS // 8, seed=21,
                                     partitions=plan, monitor=True),
                ))
    return SweepSpec.explicit(cells)


def run_grid(out_path=None):
    result = run_sweep(build_spec(), workers=WORKERS, out_path=out_path)
    assert result.failed == 0, [r for r in result.rows
                                if r["status"] == "failed"]
    table = {}
    it = iter(result.rows)
    for protocol in PROTOCOLS:
        for duration in DURATIONS:
            for interval in INTERVALS:
                table[(protocol, duration, interval)] = next(it)
    return table


def test_acc_under_sequencer_cut(benchmark, results_dir):
    out_path = results_dir / "quorum_acc.jsonl"
    table = benchmark.pedantic(run_grid, args=(out_path,),
                               rounds=1, iterations=1)
    columns = [(d, i) for d in DURATIONS for i in INTERVALS]
    lines = [
        "acc under the client<->sequencer cut, quorum family included "
        "(duration x heartbeat interval; monitor on)",
        f"{'protocol':16} " + " ".join(
            f"{f'{d:g}/{i:g}':>12}" for d, i in columns
        ),
    ]
    for protocol in PROTOCOLS:
        lines.append(
            f"{protocol:16} " + " ".join(
                f"{table[(protocol, d, i)]['acc_sim']:12.2f}"
                for d, i in columns
            )
        )
    emit(results_dir, "quorum_acc_vs_duration.txt", "\n".join(lines))

    for (protocol, duration, interval), cell in table.items():
        key = (protocol, duration, interval)
        assert math.isfinite(cell["acc_sim"]), key
        assert cell["violations"] == 0, (key, cell)
        assert cell["incomplete_ops"] == 0, (key, cell)
        if protocol == "sc_abd":
            # node 5 is outside the active clients' quorums: the cut
            # triggers no re-selection and no detector machinery runs.
            assert cell.get("acc_quorum_share", 0.0) == 0.0, key
            assert cell.get("acc_detector_share", 0.0) == 0.0, key
            assert cell.get("heartbeats", 0) == 0, key
        elif duration > 0:
            assert cell["acc_detector_share"] > 0.0, key
            assert cell["heartbeats"] > 0, key

    # fault-free quorum acc matches the closed form
    analytic = acc_sc_abd_rd(PARAMS.p, PARAMS.sigma, PARAMS.a,
                             PARAMS.S, PARAMS.P, PARAMS.N)
    fault_free = table[("sc_abd", 0.0, INTERVALS[0])]["acc_sim"]
    assert abs(fault_free - analytic) / analytic < 0.04, (
        fault_free, analytic)

    # ... and stays flat across every partitioned cell: the reliability
    # layer's ack overhead is the only delta, re-selection never fires.
    partitioned = [table[("sc_abd", d, i)]["acc_sim"]
                   for d in DURATIONS[1:] for i in INTERVALS]
    assert max(partitioned) - min(partitioned) < 0.02 * analytic, partitioned


def _minority_plan() -> PartitionPlan:
    links = (isolate(4, list(MAJORITY), AVAIL_START, AVAIL_HEAL)
             + isolate(SEQUENCER, list(MAJORITY), AVAIL_START, AVAIL_HEAL))
    return PartitionPlan(seed=11, links=links, heartbeat_interval=20.0,
                         suspect_after=3)


def measure_availability(protocol):
    """Run the workload across the minority partition and score the
    fraction of in-window operations served before the heal."""
    system = DSMSystem(protocol, N=PARAMS.N, M=2, monitor=True,
                       partitions=_minority_plan())
    config = RunConfig(ops=max(400, OPS // 2), warmup=0, seed=7,
                       partitions=_minority_plan(), monitor=True)
    result = system.run_workload(
        read_disturbance_workload(PARAMS, M=2), config)
    assert result.incomplete_ops == 0, (protocol, result.incomplete_ops)
    assert not result.violations, (protocol, result.violations)

    window = [r for r in system.metrics.records()
              if AVAIL_START <= r.issue_time <= AVAIL_HEAL - AVAIL_MARGIN]
    assert window, protocol
    majority = [r for r in window if r.node in MAJORITY]
    served = [r for r in window if r.complete_time < AVAIL_HEAL]
    served_majority = [r for r in majority if r.complete_time < AVAIL_HEAL]
    return {
        "protocol": protocol,
        "acc": system.metrics.average_cost(),
        "window_ops": len(window),
        "served": len(served),
        "availability": len(served) / len(window),
        "majority_ops": len(majority),
        "majority_served": len(served_majority),
        "majority_availability": len(served_majority) / len(majority),
        "violations": len(result.violations),
    }


def run_availability():
    return [measure_availability(protocol) for protocol in PROTOCOLS]


def test_availability_under_minority_partition(benchmark, results_dir):
    rows = benchmark.pedantic(run_availability, rounds=1, iterations=1)
    emit(results_dir, "quorum_availability.jsonl",
         "\n".join(json.dumps(row) for row in rows))
    lines = [
        "operations served during the minority partition "
        f"({{4, {SEQUENCER}}} severed from {{1, 2, 3}} for "
        f"{AVAIL_HEAL - AVAIL_START:g} time units; monitor on)",
        f"{'protocol':16} {'acc':>10} {'avail':>8} {'majority-avail':>15}",
    ]
    for row in rows:
        lines.append(
            f"{row['protocol']:16} {row['acc']:10.2f} "
            f"{row['availability']:8.3f} "
            f"{row['majority_availability']:15.3f}"
        )
    emit(results_dir, "quorum_availability.txt", "\n".join(lines))

    by_protocol = {row["protocol"]: row for row in rows}
    quorum = by_protocol["sc_abd"]
    # every majority-side operation is served during the partition; the
    # only waiting client is the one stranded with the sequencer.
    assert quorum["majority_availability"] == 1.0, quorum
    assert quorum["violations"] == 0
    for star in STARS:
        row = by_protocol[star]
        # a star protocol serves only local hits while the sequencer is
        # unreachable — every miss waits for the heal.
        assert row["majority_availability"] < 0.5, row
        assert quorum["availability"] > row["availability"], (quorum, row)
