"""Section 5.1 crossover lines: paper-literal vs model-empirical boundaries.

Regenerates the three boundary lines the paper reports for read
disturbance and compares them with the boundaries root-found from our
model:

* Write-Through-V vs Write-Through — reproduced **exactly** (the line is
  an algebraic consequence of the reconstruction);
* Synapse vs Write-Through-V — same structure (origin-anchored, slope
  linear in sigma, existence condition on P vs S+N); the slope constant
  depends on reconstruction details of Synapse's recall/retry costs;
* Dragon vs Berkeley — numerator and existence condition (NP vs S+2)
  reproduced; our slope denominator is N(P+1) where the scan reads P+N+2.
"""

import numpy as np
import pytest

from repro.core import WorkloadParams, compare_boundary

from .conftest import emit


def fmt(cmp, note=""):
    lines = [f"{cmp.proto_a} vs {cmp.proto_b} {note}",
             f"{'sigma':>8} {'paper p':>10} {'empirical p':>12}"]
    for s, pp, ep in zip(cmp.sigmas, cmp.paper_p, cmp.empirical_p):
        e = "none" if ep is None else f"{ep:.4f}"
        lines.append(f"{s:8.3f} {pp:10.4f} {e:>12}")
    return "\n".join(lines)


def test_wtv_vs_wt_line_exact(benchmark, results_dir):
    base = WorkloadParams(N=50, p=0.0, a=10, S=100.0, P=30.0)
    sigmas = np.linspace(0.0, 0.08, 9)

    def run():
        return compare_boundary("wtv_vs_wt", base, sigmas)

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "crossover_wtv_vs_wt.txt", fmt(cmp, "(S=100)"))
    assert cmp.max_abs_deviation() < 1e-6  # exact reproduction


def test_synapse_vs_wtv_structure(benchmark, results_dir):
    base = WorkloadParams(N=50, p=0.0, a=10, S=100.0, P=30.0)
    sigmas = [0.005, 0.01, 0.015, 0.02]

    def run():
        return compare_boundary("synapse_vs_wtv", base, sigmas)

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "crossover_synapse_vs_wtv.txt", fmt(cmp, "(S=100)"))
    found = [(s, e) for s, e in zip(cmp.sigmas, cmp.empirical_p)
             if e is not None]
    assert len(found) >= 3
    # boundary is origin-anchored and grows with sigma (paper's structure);
    # our reconstruction's boundary is near-linear but not exactly so
    crossings = [e for _s, e in found]
    assert all(b > a for a, b in zip(crossings, crossings[1:]))
    slopes = [e / s for s, e in found]
    assert max(slopes) / min(slopes) < 1.5
    # the paper's line is exactly linear through the origin
    paper_slopes = [pp / s for s, pp in zip(cmp.sigmas, cmp.paper_p) if s]
    assert max(paper_slopes) / min(paper_slopes) == pytest.approx(1.0,
                                                                  abs=1e-9)


def test_dragon_vs_berkeley_structure(benchmark, results_dir):
    base = WorkloadParams(N=50, p=0.0, a=1, S=5000.0, P=30.0)
    sigmas = [0.05, 0.1, 0.15, 0.2]

    def run():
        return compare_boundary("dragon_vs_berkeley", base, sigmas)

    cmp = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "crossover_dragon_vs_berkeley.txt",
         fmt(cmp, "(a=1, S=5000)"))
    found = [(s, e) for s, e in zip(cmp.sigmas, cmp.empirical_p)
             if e is not None]
    assert len(found) >= 3
    slopes = [e / s for s, e in found]
    assert max(slopes) / min(slopes) == pytest.approx(1.0, abs=0.1)
    # our model's slope is (S+2-NP)/(N(P+1)) — check it quantitatively
    expected = (5000.0 + 2.0 - 50 * 30.0) / (50 * 31.0)
    assert np.mean(slopes) == pytest.approx(expected, rel=0.05)


def test_dragon_vs_berkeley_no_crossover_when_NP_large(results_dir):
    """'For Np > S+2 the Berkeley protocol incurs acc lower than Dragon.'"""
    base = WorkloadParams(N=50, p=0.0, a=1, S=100.0, P=30.0)
    cmp = compare_boundary("dragon_vs_berkeley", base, [0.1, 0.3, 0.6])
    emit(results_dir, "crossover_dragon_vs_berkeley_NP_large.txt",
         fmt(cmp, "(a=1, S=100: Berkeley dominates)"))
    assert all(e is None for e in cmp.empirical_p)
