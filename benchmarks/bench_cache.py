"""Partial-replication benchmark: acc vs bounded replica-cache capacity.

The paper prices *full replication* — every client holds every object,
so ``acc`` never pays a capacity miss.  This study bounds each client to
``C`` resident copies (:mod:`repro.sim.cache`) and charts steady-state
acc against ``C`` for each protocol family x eviction policy, next to
the closed-form ``acc(C)`` model (:mod:`repro.core.cache_model`), on two
workloads:

* **hot-set grid**: read-mostly hot-set workload (4 of 16 objects carry
  90% of the mass) across Write-Through (invalidation), Firefly
  (update) and SC-ABD (quorum), capacities 2/4/8 under all three
  eviction policies.  Expectations encoded as assertions: the model
  tracks the simulator within 10% on every LRU row, acc(C) decreases in
  C for the star protocols, and SC-ABD — whose quorum replicas are
  load-bearing, making the cache a pure overlay — is *exactly* flat in
  both capacity and policy.
* **win grid**: the write-heavy uniform workload where partial
  replication *beats* full replication for Firefly.  A bounded cache
  ejects copies, the ``EJ`` departure notice drops them from the
  sequencer's update fan-out, and when the per-write multicast saved
  (``P + 1`` per departed copy) outweighs refetches (``S + 2``) and
  carried-copy ACKs (``+S``), total acc lands *below* the paper's
  full-replication floor — the crossover this subsystem exists to
  demonstrate.  Asserted: every bounded capacity beats ``C = inf``, in
  the simulator and in the closed form.

The default-ops (2000) rows are committed byte-for-byte at
``benchmarks/baselines/cache_acc.jsonl``; CI re-runs the full study and
diffs the fresh rows against the baseline (``cache-bench-smoke``).
Rows are emitted in cell order — completion order varies with worker
scheduling, so the results file is rebuilt from ``result.rows`` rather
than streamed.
"""

import math
import os
from pathlib import Path

from repro.core.acc import analytical_acc
from repro.core.cache_model import cache_acc
from repro.core.parameters import WorkloadParams
from repro.exp import SweepCell, SweepSpec, row_line, run_sweep
from repro.sim import CacheConfig, RunConfig

from .conftest import emit

#: read-mostly hot-set workload: 4 of 16 objects carry 90% of accesses
PARAMS_HOT = WorkloadParams(N=4, p=0.3, a=3, sigma=0.15, S=100.0, P=30.0,
                            hot_set=4, hot_fraction=0.9)
#: write-heavy uniform workload where the Firefly fan-out savings
#: (p * a * (P+1) per unit miss) outweigh refetch + carried-copy costs
PARAMS_WIN = WorkloadParams(N=4, p=0.8, a=3, sigma=0.05, S=50.0, P=30.0)
M = 16
WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "2"))
#: operations per sweep cell; committed baseline uses the default
OPS = int(os.environ.get("REPRO_CACHE_OPS", "2000"))
DEFAULT_OPS = 2000
BASELINE = Path(__file__).parent / "baselines" / "cache_acc.jsonl"

PROTOCOLS = ("write_through", "firefly", "sc_abd")
CAPACITIES = (2, 4, 8)
POLICIES = ("lru", "clock", "cost_aware")
#: capacities charted for the Firefly win study (None = full replication)
WIN_CAPACITIES = (None, 2, 4, 8)


def _config(capacity, policy) -> RunConfig:
    cache = (CacheConfig(capacity=capacity, policy=policy, seed=7)
             if capacity is not None else None)
    return RunConfig(ops=OPS, warmup=OPS // 8, seed=21, monitor=True,
                     cache=cache)


def build_spec() -> SweepSpec:
    hot = [
        SweepCell(protocol=protocol, params=PARAMS_HOT, kind="sim", M=M,
                  config=_config(capacity, policy))
        for protocol in PROTOCOLS
        for capacity, policy in (
            [(None, "lru")]
            + [(c, pol) for c in CAPACITIES for pol in POLICIES]
        )
    ]
    win = [
        SweepCell(protocol="firefly", params=PARAMS_WIN, kind="sim", M=M,
                  config=_config(capacity, "lru"))
        for capacity in WIN_CAPACITIES
    ]
    return SweepSpec.explicit(hot + win)


def run_grid(out_path=None):
    result = run_sweep(build_spec(), workers=WORKERS)
    assert result.failed == 0, [r for r in result.rows
                                if r["status"] == "failed"]
    if out_path is not None:
        # cell order, not completion order: byte-stable across workers.
        out_path.write_text(
            "".join(row_line(row) + "\n" for row in result.rows)
        )
    it = iter(result.rows)
    hot = {}
    for protocol in PROTOCOLS:
        hot[(protocol, None, "lru")] = next(it)
        for capacity in CAPACITIES:
            for policy in POLICIES:
                hot[(protocol, capacity, policy)] = next(it)
    win = {capacity: next(it) for capacity in WIN_CAPACITIES}
    return hot, win


def _model(params, capacity, protocol="firefly"):
    if capacity is None:
        return analytical_acc(protocol, params)
    return cache_acc(protocol, params, M=M, capacity=capacity)


def test_cache_acc_vs_capacity(benchmark, results_dir):
    out_path = results_dir / "cache_acc.jsonl"
    hot, win = benchmark.pedantic(run_grid, args=(out_path,),
                                  rounds=1, iterations=1)

    lines = [
        "acc vs bounded replica-cache capacity, hot-set workload "
        f"(M={M}, hot 4@90%, p={PARAMS_HOT.p:g}); monitor on",
        f"{'protocol':>15} {'C':>4} {'policy':>10} {'acc':>9} "
        f"{'model':>9} {'err%':>6} {'hits':>6} {'capmiss':>7} "
        f"{'evict':>6} {'wb':>4} {'cache-share':>12}",
    ]
    for (protocol, capacity, policy), row in hot.items():
        cap = "inf" if capacity is None else str(capacity)
        model = (_model(PARAMS_HOT, capacity, protocol)
                 if policy == "lru" else float("nan"))
        err = (abs(model - row["acc_sim"]) / row["acc_sim"] * 100.0
               if policy == "lru" else float("nan"))
        lines.append(
            f"{protocol:>15} {cap:>4} {policy:>10} {row['acc_sim']:9.2f} "
            f"{model:9.2f} {err:6.2f} {row.get('cache_hits', 0):6d} "
            f"{row.get('capacity_misses', 0):7d} "
            f"{row.get('cache_evictions', 0):6d} "
            f"{row.get('cache_writebacks', 0):4d} "
            f"{row.get('acc_cache_share', 0.0):12.4f}"
        )
    lines.append("")
    lines.append(
        "firefly win study: write-heavy uniform workload "
        f"(p={PARAMS_WIN.p:g}, S={PARAMS_WIN.S:g}): departed copies "
        "leave the update fan-out, so bounded caches beat full "
        "replication",
    )
    lines.append(f"{'C':>4} {'acc':>9} {'model':>9} {'vs-full':>8}")
    full_acc = win[None]["acc_sim"]
    for capacity, row in win.items():
        cap = "inf" if capacity is None else str(capacity)
        lines.append(
            f"{cap:>4} {row['acc_sim']:9.2f} "
            f"{_model(PARAMS_WIN, capacity):9.2f} "
            f"{row['acc_sim'] - full_acc:+8.2f}"
        )
    emit(results_dir, "cache_acc_vs_capacity.txt", "\n".join(lines))

    for key, row in {**hot, **{("firefly-win", c, "lru"): r
                               for c, r in win.items()}}.items():
        assert row["violations"] == 0, (key, row)
        assert math.isfinite(row["acc_sim"]), (key, row)

    # the closed-form model must track the simulator within 10% on
    # every LRU row (including the full-replication C=inf endpoints).
    for (protocol, capacity, policy), row in hot.items():
        if policy != "lru":
            continue
        model = _model(PARAMS_HOT, capacity, protocol)
        err = abs(model - row["acc_sim"]) / row["acc_sim"]
        assert err <= 0.10, (protocol, capacity, model, row["acc_sim"])
    for capacity, row in win.items():
        model = _model(PARAMS_WIN, capacity)
        err = abs(model - row["acc_sim"]) / row["acc_sim"]
        assert err <= 0.10, (capacity, model, row["acc_sim"])

    for protocol in ("write_through", "firefly"):
        # more capacity, fewer capacity misses, cheaper: acc decreases
        # in C for the star protocols on the read-mostly workload.
        accs = [hot[(protocol, c, "lru")]["acc_sim"] for c in CAPACITIES]
        assert accs == sorted(accs, reverse=True), (protocol, accs)
        assert hot[(protocol, None, "lru")]["acc_sim"] < accs[-1], (
            protocol, accs)
        for capacity in CAPACITIES:
            for policy in POLICIES:
                row = hot[(protocol, capacity, policy)]
                assert row["cache_evictions"] > 0, (protocol, row)
                assert row["capacity_misses"] > 0, (protocol, row)
                assert row["acc_cache_share"] > 0.0, (protocol, row)
                # write-through drops clean copies, firefly sends EJ
                # notices: neither family ever flushes on eviction.
                assert row["cache_writebacks"] == 0, (protocol, row)

    # SC-ABD's quorum replicas are load-bearing: the cache is overlay
    # bookkeeping, so acc is *exactly* flat in capacity and policy.
    sc_full = hot[("sc_abd", None, "lru")]["acc_sim"]
    for capacity in CAPACITIES:
        for policy in POLICIES:
            row = hot[("sc_abd", capacity, policy)]
            assert row["acc_sim"] == sc_full, (capacity, policy, row)
            assert row["cache_evictions"] > 0, (capacity, policy, row)

    # the win: every bounded capacity undercuts full replication, in
    # the simulator and in the closed form.
    for capacity in WIN_CAPACITIES[1:]:
        row = win[capacity]
        assert row["acc_sim"] < full_acc, (capacity, row["acc_sim"],
                                           full_acc)
        assert _model(PARAMS_WIN, capacity) < _model(PARAMS_WIN, None), (
            capacity)

    # at the default budget the study must reproduce the committed
    # baseline byte-for-byte (rows are emitted in cell order, so this
    # holds for any worker count).
    if OPS == DEFAULT_OPS and BASELINE.exists():
        assert out_path.read_text() == BASELINE.read_text(), (
            f"{out_path} diverged from committed {BASELINE}")
