"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation isolates one reconstruction decision and quantifies its
effect on the steady-state cost, using the analytic model (exact) so the
ablation measures design, not sampling noise:

* **two-phase Write-Through-V write (+2 tokens)** — the cost of keeping
  the writer's copy valid, vs Write-Through's fire-and-forget write;
* **Synapse retry vs Illinois direct service (+2 tokens per remote-dirty
  miss and data-less upgrades)** — decomposing why Illinois dominates;
* **ownership migration (Berkeley) vs fixed home (Illinois)** — the value
  of moving the serialization point to the activity center;
* **invalidate vs update families across the read/write-share spectrum**;
* **sensitivity to the S and P cost parameters** around the Figure 5
  operating point.
"""

import numpy as np
import pytest

from repro.core import Deviation, WorkloadParams, analytical_acc

from .conftest import emit

BASE = WorkloadParams(N=50, p=0.2, a=10, sigma=0.03, S=5000.0, P=30.0)


def sweep(protocols, field, values, base=BASE, deviation=Deviation.READ):
    rows = []
    for v in values:
        w = base.with_(**{field: v})
        rows.append((v, {p: analytical_acc(p, w, deviation)
                         for p in protocols}))
    return rows


def fmt(rows, protocols, field):
    lines = [f"{field:>10} " + "".join(f"{p:>18}" for p in protocols)]
    for v, accs in rows:
        lines.append(f"{v:10.3f} "
                     + "".join(f"{accs[p]:18.1f}" for p in protocols))
    return "\n".join(lines)


def test_ablation_two_phase_wtv_write(benchmark, results_dir):
    """WT vs WTV: the +2-token blocking write buys read-after-write hits."""
    protos = ["write_through", "write_through_v"]

    def run():
        # sigma small enough that the whole p sweep stays feasible
        return sweep(protos, "p", np.linspace(0.05, 0.95, 10),
                     base=BASE.with_(S=100.0, sigma=0.004))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "ablation_two_phase_write.txt",
         fmt(rows, protos, "p"))
    # WTV wins while read-after-write misses outweigh 2 tokens per write;
    # WT wins in the write-heavy extreme (Section 5.1's line).
    assert rows[0][1]["write_through_v"] < rows[0][1]["write_through"]
    assert rows[-1][1]["write_through"] < rows[-1][1]["write_through_v"]


def test_ablation_synapse_vs_illinois_decomposition(benchmark, results_dir):
    """Quantify the two Illinois improvements over Synapse."""
    protos = ["synapse", "illinois"]

    def run():
        return sweep(protos, "sigma", np.linspace(0.0, 0.07, 8))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    gap = [(v, accs["synapse"] - accs["illinois"]) for v, accs in rows]
    emit(results_dir, "ablation_synapse_vs_illinois.txt",
         fmt(rows, protos, "sigma")
         + "\n\nSynapse-minus-Illinois gap:\n"
         + "\n".join(f"sigma={v:.3f}: {g:12.1f}" for v, g in gap))
    assert all(g >= -1e-9 for _v, g in gap)
    assert gap[-1][1] > gap[0][1]  # the gap grows with disturbance


def test_ablation_ownership_migration(benchmark, results_dir):
    """Berkeley (migrating owner) vs Illinois (fixed home): the benefit of
    letting the activity center serialize its own writes."""
    protos = ["berkeley", "illinois"]

    def run():
        return sweep(protos, "p", np.linspace(0.05, 0.6, 8))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "ablation_ownership_migration.txt",
         fmt(rows, protos, "p"))
    for _v, accs in rows:
        assert accs["berkeley"] <= accs["illinois"] + 1e-9


def test_ablation_invalidate_vs_update(benchmark, results_dir):
    """Family comparison across the write-share spectrum (read dist.)."""
    protos = ["berkeley", "dragon"]

    def run():
        return sweep(protos, "p", np.linspace(0.01, 0.8, 9),
                     base=BASE.with_(sigma=0.02))

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "ablation_invalidate_vs_update.txt",
         fmt(rows, protos, "p"))
    # update wins at the read-mostly end, invalidate at the write-heavy end
    assert rows[0][1]["dragon"] < rows[0][1]["berkeley"]
    assert rows[-1][1]["berkeley"] < rows[-1][1]["dragon"]


def test_ablation_broadcast_vs_directory(benchmark, results_dir):
    """Broadcast vs copyset-multicast invalidation as the system scales.

    Write-Through pays ``P + N`` per write regardless of who holds copies;
    the directory variant pays ``P + 1 + |copyset|``, which depends only on
    the sharers (``a``), so its cost is flat in ``N``."""
    protos = ["write_through", "write_through_dir"]

    def run():
        rows = []
        for n in (5, 10, 20, 40, 80):
            # small copies so the invalidation fan-out dominates
            w = WorkloadParams(N=n, p=0.2, a=3, sigma=0.05,
                               S=100.0, P=BASE.P)
            rows.append((n, {p: analytical_acc(p, w, Deviation.READ)
                             for p in protos}))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, "ablation_broadcast_vs_directory.txt",
         fmt(rows, protos, "N"))
    for _n, accs in rows:
        assert accs["write_through_dir"] <= accs["write_through"] + 1e-9
    # broadcast grows linearly in N; the directory stays flat
    wt = [accs["write_through"] for _n, accs in rows]
    dr = [accs["write_through_dir"] for _n, accs in rows]
    assert wt[-1] - wt[0] > 10.0
    assert abs(dr[-1] - dr[0]) < 1.0


@pytest.mark.parametrize("field,values", [
    ("S", [10.0, 100.0, 1000.0, 5000.0, 20000.0]),
    ("P", [1.0, 10.0, 30.0, 100.0, 300.0]),
])
def test_ablation_cost_parameter_sensitivity(field, values, benchmark,
                                             results_dir):
    protos = ["write_through", "berkeley", "dragon"]

    def run():
        return sweep(protos, field, values)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(results_dir, f"ablation_sensitivity_{field}.txt",
         fmt(rows, protos, field))
    for proto in protos:
        series = [accs[proto] for _v, accs in rows]
        # acc is non-decreasing in either cost parameter
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), proto
    if field == "S":
        # Dragon never moves whole copies: flat in S
        dragon = [accs["dragon"] for _v, accs in rows]
        assert np.allclose(dragon, dragon[0])
    else:
        # Write-Through's miss term is flat in P only through p*(P+N)
        wt = [accs["write_through"] for _v, accs in rows]
        diffs = np.diff(wt) / np.diff(np.asarray(values, dtype=float))
        assert np.allclose(diffs, BASE.p, atol=1e-6)
